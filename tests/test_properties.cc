// Property-style parameterized sweeps over the wire formats and core
// invariants (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include "capture/anonymizer.h"
#include "core/analyzer.h"
#include "net/build.h"
#include "proto/rtp.h"
#include "sim/wire.h"
#include "util/rng.h"
#include "util/serial.h"
#include "zoom/classify.h"

namespace zpm {
namespace {

// ---------------------------------------------------------------------------
// Property: every randomly generated RTP header round-trips exactly.
// ---------------------------------------------------------------------------

class RtpRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtpRoundTripProperty, SerializeParseIsIdentity) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    proto::RtpHeader h;
    h.payload_type = static_cast<std::uint8_t>(rng.uniform_int(0, 127));
    h.marker = rng.chance(0.5);
    h.padding = false;
    h.sequence = static_cast<std::uint16_t>(rng.next_u32());
    h.timestamp = rng.next_u32();
    h.ssrc = rng.next_u32();
    auto csrc_count = rng.uniform_int(0, 15);
    for (int c = 0; c < csrc_count; ++c) h.csrcs.push_back(rng.next_u32());
    h.csrc_count = static_cast<std::uint8_t>(h.csrcs.size());
    if (rng.chance(0.3)) {
      h.extension = true;
      h.extension_profile = static_cast<std::uint16_t>(rng.next_u32());
      auto words = rng.uniform_int(0, 4);
      h.extension_data.assign(static_cast<std::size_t>(words) * 4, 0xee);
    }
    util::ByteWriter w;
    h.serialize(w);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(rng.uniform_int(0, 64)),
                                      0x5a);
    w.bytes(payload);
    auto parsed = proto::parse_rtp_packet(w.view());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->header.payload_type, h.payload_type);
    EXPECT_EQ(parsed->header.marker, h.marker);
    EXPECT_EQ(parsed->header.sequence, h.sequence);
    EXPECT_EQ(parsed->header.timestamp, h.timestamp);
    EXPECT_EQ(parsed->header.ssrc, h.ssrc);
    EXPECT_EQ(parsed->header.csrcs, h.csrcs);
    EXPECT_EQ(parsed->payload.size(), payload.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Property: dissect() never misparses and never crashes on any media
// packet the simulator can produce, for every media kind.
// ---------------------------------------------------------------------------

struct DissectCase {
  zoom::MediaEncapType type;
  std::uint8_t pt;
};

class DissectProperty
    : public ::testing::TestWithParam<std::tuple<DissectCase, std::uint64_t>> {};

TEST_P(DissectProperty, EveryGeneratedPacketDissects) {
  auto [c, seed] = GetParam();
  util::Rng rng(seed);
  for (int i = 0; i < 100; ++i) {
    sim::MediaPacketSpec spec;
    spec.encap_type = c.type;
    spec.payload_type = c.pt;
    spec.ssrc = rng.next_u32();
    spec.rtp_seq = static_cast<std::uint16_t>(rng.next_u32());
    spec.rtp_timestamp = rng.next_u32();
    spec.marker = rng.chance(0.5);
    spec.frame_sequence = static_cast<std::uint16_t>(rng.next_u32());
    spec.packets_in_frame = static_cast<std::uint8_t>(rng.uniform_int(1, 30));
    spec.payload_bytes = static_cast<std::size_t>(rng.uniform_int(2, 1400));
    auto inner = sim::build_media_payload(spec, rng);

    // P2P form.
    auto zp = zoom::dissect(inner, zoom::Transport::P2P);
    ASSERT_TRUE(zp);
    EXPECT_EQ(zp->category, zoom::PacketCategory::Media);
    EXPECT_EQ(zp->rtp->ssrc, spec.ssrc);
    EXPECT_EQ(zp->rtp->sequence, spec.rtp_seq);
    EXPECT_EQ(zp->rtp->timestamp, spec.rtp_timestamp);
    EXPECT_EQ(zp->rtp->payload_type, c.pt);

    // Server form.
    auto wrapped = sim::wrap_sfu(inner, static_cast<std::uint16_t>(i), rng.chance(0.5));
    auto zps = zoom::dissect(wrapped, zoom::Transport::ServerBased);
    ASSERT_TRUE(zps);
    EXPECT_EQ(zps->category, zoom::PacketCategory::Media);
    ASSERT_TRUE(zps->sfu);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, DissectProperty,
    ::testing::Combine(
        ::testing::Values(DissectCase{zoom::MediaEncapType::Video, zoom::pt::kVideoMain},
                          DissectCase{zoom::MediaEncapType::Video, zoom::pt::kFec},
                          DissectCase{zoom::MediaEncapType::Audio, zoom::pt::kAudioSpeaking},
                          DissectCase{zoom::MediaEncapType::Audio, zoom::pt::kAudioSilent},
                          DissectCase{zoom::MediaEncapType::Audio, zoom::pt::kAudioUnknownMode},
                          DissectCase{zoom::MediaEncapType::ScreenShare,
                                      zoom::pt::kScreenShareMain}),
        ::testing::Values(7, 77)));

// ---------------------------------------------------------------------------
// Property: dissect() is robust to arbitrary truncation — never crashes,
// never reads out of bounds (exercised under ASan in debug builds).
// ---------------------------------------------------------------------------

class TruncationProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationProperty, TruncatedPacketsNeverCrash) {
  util::Rng rng(99);
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Video;
  spec.payload_type = zoom::pt::kVideoMain;
  spec.packets_in_frame = 3;
  spec.payload_bytes = 200;
  auto inner = sim::build_media_payload(spec, rng);
  auto wrapped = sim::wrap_sfu(inner, 1, false);
  std::size_t cut = std::min(GetParam(), wrapped.size());
  std::vector<std::uint8_t> truncated(wrapped.begin(),
                                      wrapped.begin() + static_cast<std::ptrdiff_t>(cut));
  // Must either parse or cleanly return nullopt/unknown — never UB.
  auto zp = zoom::dissect(truncated, zoom::Transport::ServerBased);
  if (cut < 8) EXPECT_FALSE(zp);
  auto zp2 = zoom::dissect(truncated, zoom::Transport::P2P);
  (void)zp2;
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationProperty,
                         ::testing::Range<std::size_t>(0, 60, 3));

// ---------------------------------------------------------------------------
// Property: serial arithmetic is antisymmetric and wrap-consistent.
// ---------------------------------------------------------------------------

class SerialProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialProperty, AntisymmetryAndShiftInvariance) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<std::uint16_t>(rng.next_u32());
    auto b = static_cast<std::uint16_t>(rng.next_u32());
    auto d = util::serial_diff(a, b);
    if (d != std::numeric_limits<std::int16_t>::min()) {
      EXPECT_EQ(util::serial_diff(b, a), -d);
    }
    // Shift invariance: diff(a+k, b+k) == diff(a, b).
    auto k = static_cast<std::uint16_t>(rng.next_u32());
    EXPECT_EQ(util::serial_diff(static_cast<std::uint16_t>(a + k),
                                static_cast<std::uint16_t>(b + k)),
              d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialProperty, ::testing::Values(3, 14, 159));

// ---------------------------------------------------------------------------
// Property: the anonymizer is a prefix-preserving bijection sample-wise.
// ---------------------------------------------------------------------------

class AnonymizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnonymizerProperty, PrefixPreservationExact) {
  capture::PrefixPreservingAnonymizer anon(GetParam());
  util::Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 500; ++i) {
    std::uint32_t a = rng.next_u32();
    std::uint32_t b = rng.next_u32();
    // Force a shared prefix of random length.
    int shared = static_cast<int>(rng.uniform_int(0, 32));
    if (shared > 0) {
      std::uint32_t mask = shared >= 32 ? 0xffffffffu : ~((1u << (32 - shared)) - 1);
      b = (a & mask) | (b & ~mask);
    }
    auto ea = anon.anonymize(net::Ipv4Addr(a)).value();
    auto eb = anon.anonymize(net::Ipv4Addr(b)).value();
    // Common-prefix length must be preserved exactly.
    auto cpl = [](std::uint32_t x, std::uint32_t y) {
      for (int bit = 0; bit < 32; ++bit)
        if (((x ^ y) >> (31 - bit)) & 1) return bit;
      return 32;
    };
    EXPECT_EQ(cpl(ea, eb), cpl(a, b)) << std::hex << a << " " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, AnonymizerProperty,
                         ::testing::Values(0x1111, 0x2222, 0xdeadbeef));

// ---------------------------------------------------------------------------
// Property: UDP frame build/decode is lossless for any payload size.
// ---------------------------------------------------------------------------

class FrameBuildProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameBuildProperty, BuildDecodeIdentity) {
  util::Rng rng(GetParam() * 31 + 1);
  std::vector<std::uint8_t> payload(GetParam());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
  auto src = net::Ipv4Addr(rng.next_u32());
  auto dst = net::Ipv4Addr(rng.next_u32());
  auto sport = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  auto dport = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  auto pkt = net::build_udp(util::Timestamp::from_seconds(1), src, sport, dst, dport,
                            payload);
  auto view = net::decode_packet(pkt);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->ip.src, src);
  EXPECT_EQ(view->ip.dst, dst);
  EXPECT_EQ(view->udp.src_port, sport);
  EXPECT_EQ(view->udp.dst_port, dport);
  ASSERT_EQ(view->l4_payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), view->l4_payload.begin()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrameBuildProperty,
                         ::testing::Values(0, 1, 7, 40, 256, 1150, 1472));


// ---------------------------------------------------------------------------
// Property: random byte mutations of valid Zoom packets never crash the
// dissector and never corrupt memory (failure injection / fuzz-lite).
// ---------------------------------------------------------------------------

class MutationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationProperty, MutatedPacketsNeverCrash) {
  util::Rng rng(GetParam());
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Video;
  spec.payload_type = zoom::pt::kVideoMain;
  spec.packets_in_frame = 3;
  spec.payload_bytes = 300;
  auto inner = sim::build_media_payload(spec, rng);
  auto wrapped = sim::wrap_sfu(inner, 1, false);
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = wrapped;
    int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    // Must return cleanly — any parse outcome is acceptable, UB is not.
    auto zp1 = zoom::dissect(mutated, zoom::Transport::ServerBased);
    auto zp2 = zoom::dissect(mutated, zoom::Transport::P2P);
    auto zp3 = zoom::dissect_stun(mutated);
    (void)zp1;
    (void)zp2;
    (void)zp3;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Property: the analyzer survives arbitrary mutated frames end to end.
// ---------------------------------------------------------------------------

class AnalyzerFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerFuzzProperty, MutatedFramesNeverCrashAnalyzer) {
  util::Rng rng(GetParam());
  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Audio;
  spec.payload_type = zoom::pt::kAudioSpeaking;
  spec.payload_bytes = 80;
  for (int i = 0; i < 300; ++i) {
    auto inner = sim::build_media_payload(spec, rng);
    auto wrapped = sim::wrap_sfu(inner, static_cast<std::uint16_t>(i), false);
    auto pkt = net::build_udp(util::Timestamp::from_seconds(i * 0.02),
                              net::Ipv4Addr(10, 8, 0, 1), 40000,
                              net::Ipv4Addr(170, 114, 0, 10), 8801, wrapped);
    // Mutate anywhere in the frame, including L2/L3 headers.
    int flips = static_cast<int>(rng.uniform_int(0, 6));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pkt.data.size()) - 1));
      pkt.data[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    analyzer.offer(pkt);
    // Occasional truncation.
    if (rng.chance(0.1)) {
      auto cut = pkt;
      cut.data.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pkt.data.size()))));
      analyzer.offer(cut);
    }
  }
  analyzer.finish();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerFuzzProperty, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace zpm
