// The metric-journal/query contract: codecs round-trip and reject
// corruption, the footer index selects exactly the window's records
// (and a journal that lost its index scans to the same answer), window
// boundaries are exact, corrupt/truncated journals are skipped *and
// accounted*, and the headline exactness property — a windowed query
// over journals is bit-identical to a monolithic recompute, whether
// the journals came from a serial run, a 4-shard run, a crashed-and-
// restarted daemon, or several per-site daemons merged.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "analysis/daemon.h"
#include "analysis/recompute.h"
#include "net/live_source.h"
#include "net/pcap.h"
#include "net/trace_source.h"
#include "query/query.h"
#include "sim/meeting.h"
#include "util/crc32.h"
#include "util/fsio.h"

namespace zpm::query {
namespace {

namespace fs = std::filesystem;

std::vector<net::RawPacket> sim_meeting(std::uint32_t seed,
                                        std::int64_t start_seconds) {
  sim::MeetingConfig mc;
  mc.seed = seed;
  mc.start = util::Timestamp::from_seconds(static_cast<double>(start_seconds));
  mc.duration = util::Duration::seconds(20);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 1, 20);
  b.ip = net::Ipv4Addr(10, 8, 2, 31);
  c.ip = net::Ipv4Addr(98, 0, 0, 3);
  c.on_campus = false;
  mc.participants = {a, b, c};
  sim::MeetingSim sim(mc);
  std::vector<net::RawPacket> out;
  while (auto pkt = sim.next_packet()) out.push_back(std::move(*pkt));
  EXPECT_GT(out.size(), 2000u);
  return out;
}

/// Site A: seed 31 at t=1.7e9 s. Site B: seed 47, 1000 s later — far
/// beyond any epoch span, so a merged run must rotate at the seam.
const std::vector<net::RawPacket>& site_a_packets() {
  static const auto packets = sim_meeting(31, 1'700'000'000);
  return packets;
}
const std::vector<net::RawPacket>& site_b_packets() {
  static const auto packets = sim_meeting(47, 1'700'001'000);
  return packets;
}

std::vector<net::RawPacketView> views_of(
    const std::vector<net::RawPacket>& pkts) {
  std::vector<net::RawPacketView> views;
  views.reserve(pkts.size());
  for (const auto& p : pkts)
    views.push_back(net::RawPacketView{p.ts, p.data, p.orig_len});
  return views;
}

analysis::EpochEngineConfig engine_config(std::size_t shards = 1) {
  analysis::EpochEngineConfig config;
  config.shards = shards;
  config.limits.max_packets = 900;
  // Span limit far above one trace's 20 s extent: rotations inside a
  // trace are packet-count-driven (identical solo vs merged), and only
  // the 1000 s inter-site seam triggers a span rotation.
  config.limits.max_span = util::Duration::seconds(120.0);
  config.collect_journal = true;
  return config;
}

/// Runs `packets` through a fresh engine; returns one slice set per
/// completed epoch (flush included).
std::vector<EpochSliceSet> run_slices(const analysis::EpochEngineConfig& config,
                                      const std::vector<net::RawPacketView>& views) {
  analysis::EpochEngine engine(config);
  std::vector<analysis::EpochReport> completed;
  std::vector<EpochSliceSet> sets;
  engine.offer(views, pipeline::BatchLifetime::Pinned, completed, &sets);
  EXPECT_EQ(sets.size(), completed.size());
  EpochSliceSet last;
  if (engine.flush(&last)) sets.push_back(std::move(last));
  EXPECT_GE(sets.size(), 3u);
  return sets;
}

fs::path state_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::to_string(::getpid()) + "_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string write_journal(const fs::path& path,
                          const std::vector<EpochSliceSet>& sets,
                          const std::string& site, bool finalize) {
  JournalWriter writer;
  std::string error;
  EXPECT_TRUE(writer.open(path.string(), site, sets.empty() ? 1u
                              : sets.front().front().shard_count, &error))
      << error;
  for (const auto& set : sets)
    for (const auto& slice : set)
      EXPECT_TRUE(writer.append(slice, &error)) << error;
  if (finalize) {
    EXPECT_TRUE(writer.finalize(&error)) << error;
  } else {
    writer.abandon();
  }
  return path.string();
}

std::vector<std::uint8_t> encode_result(const QueryResult& result) {
  util::ByteWriter w;
  encode_query_result(result, w);
  return w.take();
}

QueryResult query_journals(const QueryRequest& request,
                           const std::vector<std::string>& paths,
                           const std::vector<std::string>& sites) {
  std::vector<std::unique_ptr<JournalReader>> owned;
  std::vector<JournalReader*> readers;
  std::vector<std::uint32_t> site_of;
  std::vector<std::string> site_names;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto reader = std::make_unique<JournalReader>();
    std::string error;
    EXPECT_TRUE(reader->open(paths[i], &error)) << paths[i] << ": " << error;
    std::uint32_t idx = 0;
    for (; idx < site_names.size(); ++idx)
      if (site_names[idx] == sites[i]) break;
    if (idx == site_names.size()) site_names.push_back(sites[i]);
    site_of.push_back(idx);
    readers.push_back(reader.get());
    owned.push_back(std::move(reader));
  }
  QueryResult result;
  std::string error;
  EXPECT_TRUE(run_query(request, readers, site_of, site_names, result, &error))
      << error;
  return result;
}

// ---------------------------------------------------------------------------
// Request / manifest codecs

TEST(QueryRequest, CodecIsAFixpoint) {
  QueryRequest req;
  req.from_us = -5;
  req.to_us = 123456789;
  req.metric = QueryMetric::SfuRtt;
  req.group = QueryGroupBy::Meeting;
  req.has_meeting = true;
  req.meeting_key = 0xdeadbeefULL;
  const std::string text = format_query_request(req);
  QueryRequest back;
  ASSERT_TRUE(parse_query_request(text, back));
  EXPECT_EQ(back, req);
  EXPECT_EQ(format_query_request(back), text);

  QueryRequest defaults;
  ASSERT_TRUE(parse_query_request(format_query_request(QueryRequest{}),
                                  defaults));
  EXPECT_EQ(defaults, QueryRequest{});
}

TEST(QueryRequest, RejectsMalformed) {
  QueryRequest out;
  EXPECT_FALSE(parse_query_request("from=abc", out));
  EXPECT_FALSE(parse_query_request("metric=tcp", out));
  EXPECT_FALSE(parse_query_request("group=", out));
  EXPECT_FALSE(parse_query_request("unknown=1", out));
  EXPECT_FALSE(parse_query_request("from", out));
  EXPECT_FALSE(parse_query_request("from=9;to=3", out));  // empty window
  EXPECT_FALSE(parse_query_request("meeting=-1", out));
  EXPECT_TRUE(parse_query_request("", out));  // all defaults
}

TEST(Manifest, CodecIsAFixpointAndLastPathWins) {
  Manifest m;
  m.entries.push_back({"journal-a-000000000000.zpmj", "a", 100, 200, 3, 3});
  m.entries.push_back({"journal-b-000000000000.zpmj", "b", 300, 400, 2, 8});
  const std::string text = format_manifest(m);
  Manifest back;
  ASSERT_TRUE(parse_manifest(text, back));
  EXPECT_EQ(back, m);
  EXPECT_EQ(format_manifest(back), text);

  // Unknown lines are ignored; a re-listed path replaces in place (a
  // restarted daemon re-announces its live segment every rotation).
  const std::string evolved = "zpm-manifest v1\nfuture-key x y z\n"
                              "journal j.zpmj site=s first_us=1 last_us=2 "
                              "epochs=1 records=1\n"
                              "journal j.zpmj site=s first_us=1 last_us=9 "
                              "epochs=4 records=4\n";
  ASSERT_TRUE(parse_manifest(evolved, back));
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries[0].last_us, 9);
  EXPECT_EQ(back.entries[0].records, 4u);

  EXPECT_FALSE(parse_manifest("not a manifest\n", back));
}

// ---------------------------------------------------------------------------
// Journal files

TEST(Journal, IndexedRoundtripPreservesEveryRecord) {
  const auto dir = state_dir("q_roundtrip");
  const auto sets = run_slices(engine_config(), views_of(site_a_packets()));
  const auto path = write_journal(dir / "j.zpmj", sets, "lab", true);

  JournalReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path, &error)) << error;
  EXPECT_TRUE(reader.scan_stats().used_index);
  EXPECT_EQ(reader.scan_stats().corrupt_records, 0u);
  EXPECT_EQ(reader.site(), "lab");
  ASSERT_EQ(reader.records().size(), sets.size());  // 1 shard => 1 rec/epoch

  EpochSlice slice;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ASSERT_TRUE(reader.read(i, slice));
    EXPECT_EQ(slice, sets[i][0]);
  }
  // Shard-0 records carry the encoded epoch report.
  ASSERT_TRUE(reader.read(0, slice));
  EXPECT_FALSE(slice.report.empty());
  util::ByteReader r(slice.report);
  analysis::EpochReport rep;
  EXPECT_TRUE(analysis::decode_epoch_report(r, rep));
  EXPECT_EQ(rep.seq, 0u);
  EXPECT_EQ(rep.packets, slice.packets);
}

TEST(Journal, ScanFallbackMatchesIndexedSelection) {
  const auto dir = state_dir("q_scan");
  const auto sets = run_slices(engine_config(), views_of(site_a_packets()));
  const auto indexed = write_journal(dir / "indexed.zpmj", sets, "lab", true);
  const auto crashed = write_journal(dir / "crashed.zpmj", sets, "lab", false);

  JournalReader a, b;
  std::string error;
  ASSERT_TRUE(a.open(indexed, &error)) << error;
  ASSERT_TRUE(b.open(crashed, &error)) << error;
  EXPECT_TRUE(a.scan_stats().used_index);
  EXPECT_FALSE(b.scan_stats().used_index);
  EXPECT_EQ(b.scan_stats().corrupt_records, 0u);
  EXPECT_EQ(b.scan_stats().skipped_bytes, 0u);
  ASSERT_EQ(a.records().size(), b.records().size());

  const std::int64_t from = a.records()[1].first_us;
  const std::int64_t to = a.records()[1].last_us;
  EXPECT_EQ(a.select(from, to), b.select(from, to));
  EpochSlice sa, sb;
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    ASSERT_TRUE(a.read(i, sa));
    ASSERT_TRUE(b.read(i, sb));
    EXPECT_EQ(sa, sb);
  }
}

TEST(Journal, SelectIsWindowExact) {
  const auto dir = state_dir("q_window");
  const auto sets = run_slices(engine_config(), views_of(site_a_packets()));
  const auto path = write_journal(dir / "j.zpmj", sets, "lab", true);
  JournalReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path, &error)) << error;
  const auto& recs = reader.records();
  ASSERT_GE(recs.size(), 3u);

  // Exactly epoch k: the window [first_us, last_us] of record k must
  // select k, and k alone when neighbors don't touch the boundary.
  const std::size_t k = 1;
  auto [begin, end] = reader.select(recs[k].first_us, recs[k].last_us);
  EXPECT_LE(begin, k);
  EXPECT_GT(end, k);
  for (std::size_t i = begin; i < end; ++i) {
    EXPECT_LE(recs[i].first_us, recs[k].last_us);
    EXPECT_GE(recs[i].last_us, recs[k].first_us);
  }
  // One µs past the end of the last record: nothing.
  const auto after = reader.select(recs.back().last_us + 1,
                                   recs.back().last_us + 1'000'000);
  EXPECT_EQ(after.first, after.second);
  // One µs before the first record: nothing.
  const auto before = reader.select(recs.front().first_us - 1'000'000,
                                    recs.front().first_us - 1);
  EXPECT_EQ(before.first, before.second);
  // Boundary µs inclusive on both edges.
  const auto last_edge = reader.select(recs.back().last_us, recs.back().last_us);
  EXPECT_GT(last_edge.second, last_edge.first);
  // Everything.
  const auto all = reader.select(std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(all.first, 0u);
  EXPECT_EQ(all.second, recs.size());
}

TEST(Journal, CorruptAndTruncatedRecordsAreSkippedAndAccounted) {
  const auto dir = state_dir("q_corrupt");
  const auto sets = run_slices(engine_config(), views_of(site_a_packets()));

  // Flip one payload byte mid-file in an *indexed* journal: the index
  // still loads, select works, and only the poisoned record fails its
  // CRC at read() time.
  {
    const auto path = write_journal(dir / "flip.zpmj", sets, "lab", true);
    JournalReader probe;
    std::string error;
    ASSERT_TRUE(probe.open(path, &error)) << error;
    const auto victim = probe.records()[1];
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(victim.offset + victim.frame_len / 2),
               SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);

    JournalReader reader;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_TRUE(reader.scan_stats().used_index);
    EpochSlice slice;
    EXPECT_TRUE(reader.read(0, slice));
    EXPECT_FALSE(reader.read(1, slice));  // poisoned
    EXPECT_TRUE(reader.read(2, slice));

    // And through run_query: counted, not fatal.
    JournalReader* readers[] = {&reader};
    const std::uint32_t site_of[] = {0};
    const std::vector<std::string> names{"lab"};
    QueryResult result;
    ASSERT_TRUE(run_query(QueryRequest{}, readers, site_of, names, result,
                          &error));
    EXPECT_EQ(result.records_corrupt, 1u);
    EXPECT_EQ(result.records_read, reader.records().size() - 1);
  }

  // Truncate an unindexed journal mid-record: the torn tail is skipped
  // and accounted; every complete record before it still reads.
  {
    const auto path = write_journal(dir / "torn.zpmj", sets, "lab", false);
    const auto size = fs::file_size(path);
    fs::resize_file(path, size - 11);

    JournalReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_FALSE(reader.scan_stats().used_index);
    EXPECT_EQ(reader.scan_stats().corrupt_records, 1u);
    EXPECT_GT(reader.scan_stats().skipped_bytes, 0u);
    std::size_t total_records = 0;
    for (const auto& set : sets) total_records += set.size();
    ASSERT_EQ(reader.records().size(), total_records - 1);
    EpochSlice slice;
    for (std::size_t i = 0; i < reader.records().size(); ++i)
      EXPECT_TRUE(reader.read(i, slice));
  }

  // Garbage between records (simulated splice damage): resync finds the
  // next marker; the bad run counts once.
  {
    const auto path = write_journal(dir / "splice.zpmj", sets, "lab", false);
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);  // inside record 0's payload
    for (int i = 0; i < 8; ++i) std::fputc(0xff, f);
    std::fclose(f);
    JournalReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_FALSE(reader.scan_stats().used_index);
    EXPECT_GE(reader.scan_stats().corrupt_records, 1u);
    EXPECT_GT(reader.scan_stats().skipped_bytes, 0u);
    std::size_t total_records = 0;
    for (const auto& set : sets) total_records += set.size();
    EXPECT_EQ(reader.records().size(), total_records - 1);
  }
}

// A hostile trailer or index can be CRC-valid (both checksums cover
// attacker-controlled bytes), so the only defence against u64 offsets
// chosen to wrap `a + b` containment checks is wrap-proof bounds math.
// Each tampered image below passed the old additive checks (offset +
// len ≡ limit mod 2^64) and must now be rejected, dropping the reader
// to the scan fallback — never an out-of-range subspan.
TEST(Journal, WrappingTrailerAndIndexOffsetsAreRejected) {
  const auto dir = state_dir("q_wrap");
  const auto sets = run_slices(engine_config(), views_of(site_a_packets()));
  const auto path = write_journal(dir / "wrap.zpmj", sets, "lab", true);
  std::vector<std::uint8_t> bytes;
  bool missing = false;
  ASSERT_TRUE(util::read_file_all(path, bytes, missing));
  std::size_t total_records = 0;
  for (const auto& set : sets) total_records += set.size();

  const auto store64 = [](std::uint8_t* p, std::uint64_t v) {
    for (int i = 7; i >= 0; --i) {
      p[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  };
  const auto store32 = [](std::uint8_t* p, std::uint32_t v) {
    for (int i = 3; i >= 0; --i) {
      p[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  };
  const auto load64 = [](const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
    return v;
  };
  constexpr std::size_t kTrailerLen = 24;
  constexpr std::size_t kFrameOverhead = 17;

  // Trailer with index_offset = body_end - huge_len (mod 2^64): the sum
  // lands exactly on body_end, so an additive equality check passes
  // while the offset itself points far past EOF.
  {
    auto img = bytes;
    std::uint8_t* trailer = img.data() + img.size() - kTrailerLen;
    const std::uint64_t body_end = img.size() - kTrailerLen;
    const std::uint64_t frame_len = std::uint64_t{1} << 63;
    store64(trailer, body_end - frame_len);  // wraps
    store64(trailer + 8, frame_len);
    store32(trailer + 16, util::crc32(std::span(trailer, 16)));
    JournalReader reader;
    std::string error;
    ASSERT_TRUE(reader.open_bytes(img, &error)) << error;
    EXPECT_FALSE(reader.scan_stats().used_index);
    EXPECT_EQ(reader.records().size(), total_records);
    EpochSlice slice;
    for (std::size_t i = 0; i < reader.records().size(); ++i)
      EXPECT_TRUE(reader.read(i, slice));
  }

  // Valid trailer, but the first index entry claims offset + frame_len
  // ≡ 0 (mod 2^64); the payload CRC is recomputed so the frame itself
  // checks out.
  {
    auto img = bytes;
    const std::uint8_t* trailer = img.data() + img.size() - kTrailerLen;
    const std::uint64_t index_offset = load64(trailer);
    std::uint8_t* frame = img.data() + index_offset;
    std::uint8_t* payload = frame + kFrameOverhead;
    const std::uint64_t payload_len = load64(frame + 5);
    ASSERT_GE(payload_len, 4u + 52u);  // record count + one entry
    std::uint8_t* entry = payload + 4;  // seq@0 shard@8 offset@12 len@20
    store64(entry + 12, std::uint64_t{0} - index_offset);
    store64(entry + 20, index_offset);
    store32(frame + 13, util::crc32(std::span(payload, payload_len)));
    JournalReader reader;
    std::string error;
    ASSERT_TRUE(reader.open_bytes(img, &error)) << error;
    EXPECT_FALSE(reader.scan_stats().used_index);
    EXPECT_EQ(reader.records().size(), total_records);
  }
}

// ---------------------------------------------------------------------------
// Exactness: journal query == monolithic recompute

std::vector<QueryRequest> probe_requests(std::int64_t from, std::int64_t to) {
  std::vector<QueryRequest> reqs;
  for (const auto metric : {QueryMetric::Rtt, QueryMetric::Jitter,
                            QueryMetric::Bitrate, QueryMetric::SfuRtt}) {
    for (const auto group : {QueryGroupBy::All, QueryGroupBy::Meeting}) {
      QueryRequest r;
      r.from_us = from;
      r.to_us = to;
      r.metric = metric;
      r.group = group;
      reqs.push_back(r);
    }
  }
  return reqs;
}

TEST(QueryExactness, JournalEqualsRecomputeSerialAndSharded) {
  const auto dir = state_dir("q_exact");
  const auto views = views_of(site_a_packets());
  const auto serial_sets = run_slices(engine_config(1), views);
  const auto shard_sets = run_slices(engine_config(4), views);
  const auto serial_path =
      write_journal(dir / "serial.zpmj", serial_sets, "lab", true);
  const auto shard_path =
      write_journal(dir / "shard4.zpmj", shard_sets, "lab", true);

  // Window: epochs 1..2 only (mid-trace), plus the full range.
  const std::int64_t mid_from = serial_sets[1][0].first_us;
  const std::int64_t mid_to = serial_sets[2][0].last_us;
  for (const std::pair<std::int64_t, std::int64_t>& window :
       {std::pair<std::int64_t, std::int64_t>{mid_from, mid_to},
        {std::numeric_limits<std::int64_t>::min(),
         std::numeric_limits<std::int64_t>::max()}}) {
    for (const auto& req : probe_requests(window.first, window.second)) {
      QueryResult reference;
      analysis::recompute_query_result(req, views, engine_config(1), "lab",
                                       reference);
      const auto ref_bytes = encode_result(reference);
      EXPECT_FALSE(reference.groups.empty()) << format_query_request(req);

      const auto from_serial = query_journals(req, {serial_path}, {"lab"});
      const auto from_shards = query_journals(req, {shard_path}, {"lab"});
      EXPECT_EQ(encode_result(from_serial), ref_bytes)
          << format_query_request(req);
      EXPECT_EQ(encode_result(from_shards), ref_bytes)
          << "4-shard journal diverged: " << format_query_request(req);
    }
  }
}

TEST(QueryExactness, MeetingFilterMatchesUnfilteredGroup) {
  const auto dir = state_dir("q_filter");
  const auto views = views_of(site_a_packets());
  const auto sets = run_slices(engine_config(1), views);
  const auto path = write_journal(dir / "j.zpmj", sets, "lab", true);

  QueryRequest all;
  all.group = QueryGroupBy::Meeting;
  const auto grouped = query_journals(all, {path}, {"lab"});
  ASSERT_FALSE(grouped.groups.empty());

  for (const auto& g : grouped.groups) {
    QueryRequest one = all;
    one.has_meeting = true;
    one.meeting_key = g.key;
    const auto filtered = query_journals(one, {path}, {"lab"});
    ASSERT_EQ(filtered.groups.size(), 1u) << g.key;
    // The filtered group must carry the identical aggregate.
    EXPECT_EQ(filtered.groups[0], g);
    // Dictionary pruning must not read more records than the group
    // appears in.
    EXPECT_LE(filtered.records_read, grouped.records_read);
  }
}

TEST(QueryExactness, MultiSiteMergeEqualsMonolithicRecompute) {
  const auto dir = state_dir("q_multisite");
  const auto views_a = views_of(site_a_packets());
  const auto views_b = views_of(site_b_packets());

  // Per-site journals, produced independently.
  const auto sets_a = run_slices(engine_config(1), views_a);
  const auto sets_b = run_slices(engine_config(1), views_b);
  const auto path_a = write_journal(dir / "a.zpmj", sets_a, "site-a", true);
  const auto path_b = write_journal(dir / "b.zpmj", sets_b, "site-b", true);

  // The monolithic reference: both traces through ONE engine. The
  // 1000 s seam exceeds max_span, so the merged run rotates exactly at
  // the site boundary and every epoch's content matches a solo run's.
  std::vector<net::RawPacket> merged = site_a_packets();
  merged.insert(merged.end(), site_b_packets().begin(),
                site_b_packets().end());
  const auto merged_views = views_of(merged);

  const std::int64_t b_from = sets_b[0][0].first_us;
  const std::int64_t b_to = sets_b[1][0].last_us;
  for (const std::pair<std::int64_t, std::int64_t>& window :
       {std::pair<std::int64_t, std::int64_t>{
            std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max()},
        {b_from, b_to}}) {  // window inside site B only
    for (const auto& req : probe_requests(window.first, window.second)) {
      QueryResult reference;
      analysis::recompute_query_result(req, merged_views, engine_config(1),
                                       "merged", reference);
      const auto merged_result = query_journals(req, {path_a, path_b},
                                                {"site-a", "site-b"});
      EXPECT_EQ(encode_result(merged_result), encode_result(reference))
          << format_query_request(req);
    }
  }
}

// ---------------------------------------------------------------------------
// Daemon integration

const std::string& site_a_trace() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/query_site_a." +
                          std::to_string(::getpid()) + ".pcap";
    net::PcapWriter writer(p);
    for (const auto& pkt : site_a_packets()) writer.write(pkt);
    EXPECT_TRUE(writer.ok());
    return p;
  }();
  return path;
}

analysis::DaemonConfig daemon_config(const fs::path& dir,
                                     std::size_t shards = 1) {
  analysis::DaemonConfig config;
  config.engine = engine_config(shards);
  config.snapshot_path = (dir / "snapshot.bin").string();
  config.report_dir = dir.string();
  config.site = "lab";
  config.watchdog = util::Duration::micros(0);
  config.verbose = false;
  return config;
}

net::ReplayLiveSource replay_site_a() {
  net::ReplayLiveSourceConfig cfg;
  cfg.path = site_a_trace();
  cfg.loops = 1;
  return net::ReplayLiveSource(cfg);
}

QueryResult query_manifest_dir(const QueryRequest& req, const fs::path& dir) {
  Manifest manifest;
  std::string error;
  EXPECT_TRUE(load_manifest(dir.string(), manifest, &error)) << error;
  EXPECT_FALSE(manifest.entries.empty());
  QueryResult result;
  std::size_t skipped = 0;
  EXPECT_TRUE(run_query_on_manifest(req, manifest, dir.string(), result,
                                    &skipped, &error))
      << error;
  EXPECT_EQ(skipped, 0u);
  return result;
}

TEST(DaemonJournal, ManifestListsSealedSegmentAndQueriesMatchRecompute) {
  const auto dir = state_dir("q_daemon");
  analysis::MonitorDaemon daemon(daemon_config(dir));
  auto source = replay_site_a();
  ASSERT_TRUE(source.ok()) << source.error();
  ASSERT_EQ(daemon.run(source), 0);
  EXPECT_GT(daemon.stats().journal_records_written, 0u);

  Manifest manifest;
  std::string error;
  ASSERT_TRUE(load_manifest(dir.string(), manifest, &error)) << error;
  ASSERT_EQ(manifest.entries.size(), 1u);
  EXPECT_EQ(manifest.entries[0].site, "lab");
  EXPECT_EQ(manifest.entries[0].records,
            daemon.stats().journal_records_written);
  EXPECT_EQ(manifest.entries[0].epochs, daemon.stats().epochs_rotated);
  EXPECT_LT(manifest.entries[0].first_us, manifest.entries[0].last_us);

  // The daemon's sealed journal answers exactly like a recompute.
  const auto views = views_of(site_a_packets());
  for (const auto& req : probe_requests(
           std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max())) {
    QueryResult reference;
    analysis::recompute_query_result(req, views, engine_config(1), "lab",
                                     reference);
    EXPECT_EQ(encode_result(query_manifest_dir(req, dir)),
              encode_result(reference))
        << format_query_request(req);
  }
}

TEST(DaemonJournal, CrashAndRestartSegmentsQueryIdenticallyToOneRun) {
  // Uninterrupted run -> one sealed segment.
  const auto clean_dir = state_dir("q_clean");
  {
    analysis::MonitorDaemon daemon(daemon_config(clean_dir));
    auto source = replay_site_a();
    ASSERT_TRUE(source.ok());
    ASSERT_EQ(daemon.run(source), 0);
  }
  // Crash after 2 epochs (no finalize — the segment keeps no index),
  // then restart to completion -> two segments, one MANIFEST.
  const auto crash_dir = state_dir("q_crash");
  {
    auto config = daemon_config(crash_dir);
    config.halt_after_epochs = 2;
    analysis::MonitorDaemon daemon(config);
    auto source = replay_site_a();
    ASSERT_TRUE(source.ok());
    ASSERT_EQ(daemon.run(source), 0);
  }
  {
    analysis::MonitorDaemon daemon(daemon_config(crash_dir));
    auto source = replay_site_a();
    ASSERT_TRUE(source.ok());
    ASSERT_EQ(daemon.run(source), 0);
    EXPECT_EQ(daemon.restore_status(), analysis::RestoreStatus::Ok);
  }
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(load_manifest(crash_dir.string(), manifest, &error)) << error;
  ASSERT_EQ(manifest.entries.size(), 2u);  // crashed + resumed segments

  // The crashed segment reads via scan fallback; the resumed one via
  // its index — and together they answer exactly like the clean run.
  for (const auto& req : probe_requests(
           std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max())) {
    EXPECT_EQ(encode_result(query_manifest_dir(req, crash_dir)),
              encode_result(query_manifest_dir(req, clean_dir)))
        << format_query_request(req);
  }
}

// ---------------------------------------------------------------------------
// CDF helpers

TEST(QueryCdf, QuantileUpperBounds) {
  capture::OffloadHistogram h;
  EXPECT_EQ(histogram_quantile_upper(h, 0.5), 0u);
  for (int i = 0; i < 90; ++i) h.add(3);     // bucket 1: [2,4)
  for (int i = 0; i < 10; ++i) h.add(1000);  // bucket 9: [512,1024)
  EXPECT_EQ(histogram_quantile_upper(h, 0.50), 4u);
  EXPECT_EQ(histogram_quantile_upper(h, 0.90), 4u);
  EXPECT_EQ(histogram_quantile_upper(h, 0.99), 1024u);
}

}  // namespace
}  // namespace zpm::query
