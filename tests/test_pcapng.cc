// pcapng reading and capture-format sniffing.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/build.h"
#include "net/pcapng.h"

namespace zpm::net {
namespace {

/// Little-endian pcapng block writer for test fixtures.
class NgBuilder {
 public:
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<char>(v));
    buf_.push_back(static_cast<char>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    for (auto x : b) buf_.push_back(static_cast<char>(x));
  }
  void pad4() {
    while (buf_.size() % 4 != 0) buf_.push_back(0);
  }

  void shb() {
    u32(0x0a0d0d0a);
    u32(28);
    u32(0x1a2b3c4d);
    u16(1);  // major
    u16(0);  // minor
    u32(0xffffffff);  // section length (unknown)
    u32(0xffffffff);
    u32(28);
  }

  void idb(std::uint16_t link_type, std::optional<std::uint8_t> tsresol = {}) {
    std::uint32_t len = tsresol ? 20u + 8u + 4u : 20u;
    u32(0x00000001);
    u32(len);
    u16(link_type);
    u16(0);           // reserved
    u32(65535);       // snaplen
    if (tsresol) {
      u16(9);  // if_tsresol
      u16(1);
      buf_.push_back(static_cast<char>(*tsresol));
      buf_.push_back(0);
      buf_.push_back(0);
      buf_.push_back(0);
      u16(0);  // opt_endofopt
      u16(0);
    }
    u32(len);
  }

  void epb(std::uint32_t iface, std::uint64_t ts_ticks,
           const std::vector<std::uint8_t>& frame) {
    std::uint32_t padded = (static_cast<std::uint32_t>(frame.size()) + 3u) & ~3u;
    std::uint32_t len = 32 + padded;
    u32(0x00000006);
    u32(len);
    u32(iface);
    u32(static_cast<std::uint32_t>(ts_ticks >> 32));
    u32(static_cast<std::uint32_t>(ts_ticks));
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(static_cast<std::uint32_t>(frame.size()));
    bytes(frame);
    pad4();
    u32(len);
  }

  void unknown_block() {
    u32(0x0bad0bad);
    u32(16);
    u32(0xdeadbeef);
    u32(16);
  }

  [[nodiscard]] std::string str() const { return buf_; }

 private:
  std::string buf_;
};

std::vector<std::uint8_t> sample_frame(std::uint8_t fill) {
  std::vector<std::uint8_t> payload(21, fill);
  auto pkt = build_udp(util::Timestamp::from_seconds(0), Ipv4Addr(1, 1, 1, 1), 10,
                       Ipv4Addr(2, 2, 2, 2), 20, payload);
  return pkt.data;
}

TEST(PcapNg, ReadsEnhancedPacketsWithMicrosecondDefault) {
  NgBuilder b;
  b.shb();
  b.idb(1);  // Ethernet, default 1 µs resolution
  b.epb(0, 1'650'000'123'456ull, sample_frame(0xaa));
  b.epb(0, 1'650'000'223'456ull, sample_frame(0xbb));
  std::istringstream in(b.str());
  PcapNgReader reader(in);
  auto p1 = reader.next();
  ASSERT_TRUE(p1);
  EXPECT_EQ(p1->ts.us(), 1'650'000'123'456);
  EXPECT_EQ(p1->data, sample_frame(0xaa));
  auto p2 = reader.next();
  ASSERT_TRUE(p2);
  EXPECT_EQ(p2->ts.us(), 1'650'000'223'456);
  EXPECT_FALSE(reader.next());
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.packets_read(), 2u);
}

TEST(PcapNg, HonoursTsResolOption) {
  NgBuilder b;
  b.shb();
  b.idb(1, std::uint8_t{9});  // 10^-9: nanosecond ticks
  b.epb(0, 2'000'000'000ull, sample_frame(0x11));  // 2 s in ns
  std::istringstream in(b.str());
  PcapNgReader reader(in);
  auto pkt = reader.next();
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->ts.us(), 2'000'000);
}

TEST(PcapNg, SkipsUnknownBlocksAndNonEthernetInterfaces) {
  NgBuilder b;
  b.shb();
  b.idb(1);
  b.idb(101);  // LINKTYPE_RAW: not Ethernet
  b.unknown_block();
  b.epb(1, 500, sample_frame(0x22));  // on the raw interface: skipped
  b.epb(0, 1000, sample_frame(0x33));
  std::istringstream in(b.str());
  PcapNgReader reader(in);
  auto pkt = reader.next();
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->data, sample_frame(0x33));
  EXPECT_FALSE(reader.next());
  EXPECT_TRUE(reader.ok());
}

TEST(PcapNg, RejectsNonPcapngStream) {
  std::istringstream in(std::string(64, 'x'));
  PcapNgReader reader(in);
  EXPECT_FALSE(reader.next());
  EXPECT_FALSE(reader.ok());
}

TEST(PcapNg, RejectsTruncatedBlock) {
  NgBuilder b;
  b.shb();
  b.idb(1);
  std::string data = b.str();
  NgBuilder e;
  e.epb(0, 1000, sample_frame(0x44));
  std::string epb = e.str();
  data += epb.substr(0, epb.size() - 6);
  std::istringstream in(data);
  PcapNgReader reader(in);
  EXPECT_FALSE(reader.next());
  EXPECT_FALSE(reader.ok());
}

TEST(OpenCapture, SniffsBothFormats) {
  // PID-unique: parallel ctest workers share /tmp.
  const std::string pid = std::to_string(::getpid());
  std::string ng_path = ::testing::TempDir() + "/zpm_test." + pid + ".pcapng";
  {
    NgBuilder b;
    b.shb();
    b.idb(1);
    b.epb(0, 1000, sample_frame(0x55));
    std::ofstream out(ng_path, std::ios::binary);
    out << b.str();
  }
  auto ng = open_capture(ng_path);
  ASSERT_NE(ng, nullptr);
  EXPECT_TRUE(ng->next().has_value());

  std::string pcap_path = ::testing::TempDir() + "/zpm_test." + pid + ".pcap";
  {
    PcapWriter writer(pcap_path);
    RawPacket pkt;
    pkt.ts = util::Timestamp::from_seconds(1);
    pkt.data = sample_frame(0x66);
    writer.write(pkt);
  }
  auto classic = open_capture(pcap_path);
  ASSERT_NE(classic, nullptr);
  auto pkt = classic->next();
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->data, sample_frame(0x66));

  std::string junk_path = ::testing::TempDir() + "/zpm_test." + pid + ".junk";
  {
    std::ofstream out(junk_path, std::ios::binary);
    out << "this is not a capture";
  }
  EXPECT_EQ(open_capture(junk_path), nullptr);
  EXPECT_EQ(open_capture("/nonexistent/x.pcap"), nullptr);

  std::remove(ng_path.c_str());
  std::remove(pcap_path.c_str());
  std::remove(junk_path.c_str());
}

}  // namespace
}  // namespace zpm::net
