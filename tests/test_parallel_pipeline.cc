// The determinism contract of the sharded pipeline: for any trace and
// any shard count, ParallelAnalyzer's merged result must be
// bit-identical to a single serial core::Analyzer over the same
// packets — counters, stream table (ids, metrics, per-second records),
// meetings and RTT samples alike.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/analyzer.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/campus.h"
#include "sim/meeting.h"

namespace zpm::pipeline {
namespace {

void expect_equivalent(const core::Analyzer& serial, const ParallelAnalyzer& par) {
  EXPECT_EQ(serial.counters(), par.counters());
  EXPECT_EQ(serial.zoom_flow_count(), par.zoom_flow_count());
  EXPECT_EQ(serial.streams().media_count(), par.media_count());

  // Health counters are part of the determinism contract too — only the
  // ring-spin backpressure gauge is timing-dependent (and always zero on
  // the serial path), so zero it before the bit-identity comparison.
  core::AnalyzerHealth sh = serial.health();
  core::AnalyzerHealth ph = par.health();
  EXPECT_EQ(sh.ring_wait_spins, 0u);
  sh.ring_wait_spins = 0;
  ph.ring_wait_spins = 0;
  EXPECT_EQ(sh, ph);

  const auto& ss = serial.streams().streams();
  const auto& ps = par.streams();
  ASSERT_EQ(ss.size(), ps.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    const core::StreamInfo& a = *ss[i];
    const core::StreamInfo& b = *ps[i];
    EXPECT_EQ(a.index, b.index) << "stream " << i;
    EXPECT_EQ(a.key.flow, b.key.flow) << "stream " << i;
    EXPECT_EQ(a.key.ssrc, b.key.ssrc) << "stream " << i;
    EXPECT_EQ(a.kind, b.kind) << "stream " << i;
    EXPECT_EQ(a.direction, b.direction) << "stream " << i;
    EXPECT_EQ(a.media_id, b.media_id) << "stream " << i;
    EXPECT_EQ(a.meeting_id, b.meeting_id) << "stream " << i;
    EXPECT_EQ(a.first_seen, b.first_seen) << "stream " << i;
    EXPECT_EQ(a.last_seen, b.last_seen) << "stream " << i;

    EXPECT_EQ(a.metrics->media_packets(), b.metrics->media_packets());
    EXPECT_EQ(a.metrics->media_payload_bytes(), b.metrics->media_payload_bytes());
    EXPECT_EQ(a.metrics->total_loss().gap_packets,
              b.metrics->total_loss().gap_packets);
    EXPECT_EQ(a.metrics->jitter_ms(), b.metrics->jitter_ms());
    // Bit-identical, not approximately equal: the replay feeds samples
    // in the exact serial order, so the double arithmetic matches.
    EXPECT_EQ(a.metrics->mean_latency_ms(), b.metrics->mean_latency_ms());

    const auto& asec = a.metrics->seconds();
    const auto& bsec = b.metrics->seconds();
    ASSERT_EQ(asec.size(), bsec.size()) << "stream " << i;
    for (std::size_t j = 0; j < asec.size(); ++j) {
      EXPECT_EQ(asec[j].bin_start, bsec[j].bin_start);
      EXPECT_EQ(asec[j].packets, bsec[j].packets);
      EXPECT_EQ(asec[j].media_bytes, bsec[j].media_bytes);
      EXPECT_EQ(asec[j].transport_bytes, bsec[j].transport_bytes);
      EXPECT_EQ(asec[j].frames_completed, bsec[j].frames_completed);
      EXPECT_EQ(asec[j].frame_rate_fps, bsec[j].frame_rate_fps);
      EXPECT_EQ(asec[j].jitter_ms, bsec[j].jitter_ms);
      EXPECT_EQ(asec[j].latency_ms, bsec[j].latency_ms)
          << "stream " << i << " second " << j;
      EXPECT_EQ(asec[j].duplicates, bsec[j].duplicates);
      EXPECT_EQ(asec[j].reordered, bsec[j].reordered);
    }
  }

  ASSERT_EQ(serial.meetings().meeting_count(), par.meetings().meeting_count());
  auto sm = serial.meetings().meetings();
  auto pm = par.meetings().meetings();
  ASSERT_EQ(sm.size(), pm.size());
  for (std::size_t i = 0; i < sm.size(); ++i) {
    EXPECT_EQ(sm[i]->id, pm[i]->id) << "meeting " << i;
    EXPECT_EQ(sm[i]->media_ids, pm[i]->media_ids) << "meeting " << i;
    EXPECT_EQ(sm[i]->client_ips, pm[i]->client_ips) << "meeting " << i;
    EXPECT_EQ(sm[i]->stream_count, pm[i]->stream_count) << "meeting " << i;
    EXPECT_EQ(sm[i]->first_seen, pm[i]->first_seen) << "meeting " << i;
    EXPECT_EQ(sm[i]->last_seen, pm[i]->last_seen) << "meeting " << i;
    EXPECT_EQ(sm[i]->saw_p2p, pm[i]->saw_p2p) << "meeting " << i;
    ASSERT_EQ(sm[i]->rtt_to_sfu.size(), pm[i]->rtt_to_sfu.size());
    for (std::size_t j = 0; j < sm[i]->rtt_to_sfu.size(); ++j) {
      EXPECT_EQ(sm[i]->rtt_to_sfu[j].when, pm[i]->rtt_to_sfu[j].when);
      EXPECT_EQ(sm[i]->rtt_to_sfu[j].rtt, pm[i]->rtt_to_sfu[j].rtt);
    }
  }

  const auto& sr = serial.sfu_rtt_samples();
  const auto& pr = par.sfu_rtt_samples();
  ASSERT_EQ(sr.size(), pr.size());
  for (std::size_t i = 0; i < sr.size(); ++i) {
    EXPECT_EQ(sr[i].when, pr[i].when);
    EXPECT_EQ(sr[i].rtt, pr[i].rtt);
  }

  const auto& st = serial.tcp_rtt();
  const auto& pt = par.tcp_rtt();
  ASSERT_EQ(st.size(), pt.size());
  for (const auto& [flow, est] : st) {
    auto it = pt.find(flow);
    ASSERT_NE(it, pt.end());
    EXPECT_EQ(est.server_rtt().size(), it->second.server_rtt().size());
    EXPECT_EQ(est.client_rtt().size(), it->second.client_rtt().size());
  }
}

void check_trace(const std::vector<net::RawPacket>& trace) {
  core::AnalyzerConfig cfg;
  core::Analyzer serial(cfg);
  for (const auto& pkt : trace) serial.offer(pkt);
  serial.finish();
  ASSERT_GT(serial.streams().size(), 0u) << "trace produced no streams";

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ParallelAnalyzerConfig par_cfg;
    par_cfg.analyzer = cfg;
    par_cfg.shards = shards;
    {
      ParallelAnalyzer par(par_cfg);
      for (const auto& pkt : trace) par.offer(pkt);
      par.finish();
      EXPECT_EQ(par.shard_count(), shards);
      expect_equivalent(serial, par);
    }

    // The batched zero-copy path must be bit-identical to per-packet
    // offer() in both lifetime modes. Pinned is legal here because
    // `trace` outlives finish(); Transient re-copies the batch, so the
    // same views exercise the block-building path.
    for (auto lifetime : {BatchLifetime::Pinned, BatchLifetime::Transient}) {
      SCOPED_TRACE(lifetime == BatchLifetime::Pinned ? "pinned" : "transient");
      ParallelAnalyzer par(par_cfg);
      constexpr std::size_t kBatch = 64;
      std::vector<net::RawPacketView> batch;
      batch.reserve(kBatch);
      for (std::size_t i = 0; i < trace.size(); i += kBatch) {
        batch.clear();
        for (std::size_t j = i; j < trace.size() && j < i + kBatch; ++j)
          batch.push_back(net::as_view(trace[j]));
        par.offer_batch(batch, lifetime);
      }
      par.finish();
      expect_equivalent(serial, par);
    }
  }
}

TEST(ParallelPipeline, MatchesSerialOnSfuMeeting) {
  sim::MeetingConfig mc;
  mc.seed = 1;
  mc.duration = util::Duration::seconds(45);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  b.send_screen_share = true;
  c.ip = net::Ipv4Addr(98, 0, 0, 3);  // off-campus participant
  c.on_campus = false;
  mc.participants = {a, b, c};
  check_trace(sim::run_meeting(mc));
}

TEST(ParallelPipeline, MatchesSerialOnP2pSwitch) {
  // Two-party meeting that switches to P2P mid-way: exercises the STUN
  // broadcast path (the P2P flow may hash to a different shard than the
  // STUN exchange's server flow).
  sim::MeetingConfig mc;
  mc.seed = 7;
  mc.duration = util::Duration::seconds(60);
  mc.p2p_switch_after = util::Duration::seconds(15);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 11);
  b.ip = net::Ipv4Addr(203, 0, 113, 9);
  b.on_campus = false;
  mc.participants = {a, b};
  check_trace(sim::run_meeting(mc));
}

TEST(ParallelPipeline, MatchesSerialOnCampusTrace) {
  // A small multi-meeting campus slice: concurrent meetings, background
  // noise, P2P switches — the cross-shard grouping stress case.
  sim::CampusConfig cc;
  cc.seed = 99;
  cc.duration = util::Duration::seconds(240);
  cc.meetings_per_peak_hour = 80.0;
  cc.background_ratio = 0.5;
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));
  check_trace(trace);
}

TEST(ParallelPipeline, MatchesSerialOnCorruptedCampusTrace) {
  // The same contract must hold on a hostile trace: truncation, bit
  // flips, drops/dups, capture cuts, timestamp regressions and injected
  // look-alikes all flow through both engines, and the health counters
  // (checked inside expect_equivalent) must match bit-for-bit as well.
  sim::CampusConfig cc;
  cc.seed = 99;
  cc.duration = util::Duration::seconds(240);
  cc.meetings_per_peak_hour = 80.0;
  cc.background_ratio = 0.5;
  cc.corruption = sim::CorruptorConfig::hostile(0xBAD);
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));
  check_trace(trace);
}

}  // namespace
}  // namespace zpm::pipeline
