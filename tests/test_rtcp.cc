// RTCP sender reports, SDES, compound packets, NTP conversion.
#include <gtest/gtest.h>

#include "proto/rtcp.h"

namespace zpm::proto {
namespace {

TEST(Ntp, UnixRoundTrip) {
  auto t = util::Timestamp::from_micros(1651752000'123456);
  auto ntp = NtpTimestamp::from_unix(t);
  auto back = ntp.to_unix();
  EXPECT_NEAR(static_cast<double>(back.us() - t.us()), 0.0, 2.0);  // sub-µs rounding
}

SenderReport sample_sr() {
  SenderReport sr;
  sr.sender_ssrc = 0x1234;
  sr.ntp = NtpTimestamp::from_unix(util::Timestamp::from_seconds(1000));
  sr.rtp_timestamp = 90000;
  sr.packet_count = 500;
  sr.octet_count = 123456;
  return sr;
}

TEST(Rtcp, SenderReportRoundTrip) {
  util::ByteWriter w;
  serialize_sender_report(w, sample_sr());
  auto packets = parse_rtcp_compound(w.view());
  ASSERT_EQ(packets.size(), 1u);
  const auto* sr = std::get_if<SenderReport>(&packets[0]);
  ASSERT_NE(sr, nullptr);
  EXPECT_EQ(sr->sender_ssrc, 0x1234u);
  EXPECT_EQ(sr->rtp_timestamp, 90000u);
  EXPECT_EQ(sr->packet_count, 500u);
  EXPECT_EQ(sr->octet_count, 123456u);
  EXPECT_TRUE(sr->reports.empty());
}

TEST(Rtcp, CompoundSrPlusSdes) {
  // Zoom's type-34 packets: SR followed by an (empty) SDES (§4.2.3).
  util::ByteWriter w;
  serialize_sender_report(w, sample_sr());
  serialize_empty_sdes(w, 0x1234);
  auto packets = parse_rtcp_compound(w.view());
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<SenderReport>(packets[0]));
  const auto* sdes = std::get_if<Sdes>(&packets[1]);
  ASSERT_NE(sdes, nullptr);
  ASSERT_EQ(sdes->chunks.size(), 1u);
  EXPECT_EQ(sdes->chunks[0].ssrc, 0x1234u);
  EXPECT_TRUE(sdes->chunks[0].items.empty());  // "always empty" SDES
}

TEST(Rtcp, SenderReportWithReportBlocks) {
  SenderReport sr = sample_sr();
  ReportBlock b;
  b.ssrc = 0x9999;
  b.fraction_lost = 12;
  b.cumulative_lost = -5;  // negative is legal (duplicates)
  b.highest_seq = 70000;
  b.jitter = 42;
  sr.reports.push_back(b);
  util::ByteWriter w;
  serialize_sender_report(w, sr);
  auto packets = parse_rtcp_compound(w.view());
  ASSERT_EQ(packets.size(), 1u);
  const auto& parsed = std::get<SenderReport>(packets[0]);
  ASSERT_EQ(parsed.reports.size(), 1u);
  EXPECT_EQ(parsed.reports[0].ssrc, 0x9999u);
  EXPECT_EQ(parsed.reports[0].fraction_lost, 12);
  EXPECT_EQ(parsed.reports[0].cumulative_lost, -5);  // 24-bit sign extension
  EXPECT_EQ(parsed.reports[0].highest_seq, 70000u);
}

TEST(Rtcp, RejectsWrongVersionAndUnknownPt) {
  util::ByteWriter w;
  serialize_sender_report(w, sample_sr());
  auto bytes = w.take();
  bytes[0] = static_cast<std::uint8_t>((bytes[0] & 0x3f) | (3 << 6));
  EXPECT_TRUE(parse_rtcp_compound(bytes).empty());

  util::ByteWriter w2;
  serialize_sender_report(w2, sample_sr());
  auto bytes2 = w2.take();
  bytes2[1] = 100;  // not an RTCP PT
  EXPECT_TRUE(parse_rtcp_compound(bytes2).empty());
}

TEST(Rtcp, RejectsTruncatedBody) {
  util::ByteWriter w;
  serialize_sender_report(w, sample_sr());
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);
  EXPECT_TRUE(parse_rtcp_compound(bytes).empty());
}

TEST(Rtcp, ByeRoundTrip) {
  // Hand-built BYE with two SSRCs.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>((2 << 6) | 2));
  w.u8(kRtcpBye);
  w.u16be(2);
  w.u32be(0xaaaa);
  w.u32be(0xbbbb);
  auto packets = parse_rtcp_compound(w.view());
  ASSERT_EQ(packets.size(), 1u);
  const auto* bye = std::get_if<Bye>(&packets[0]);
  ASSERT_NE(bye, nullptr);
  ASSERT_EQ(bye->ssrcs.size(), 2u);
  EXPECT_EQ(bye->ssrcs[1], 0xbbbbu);
}

TEST(Rtcp, LooksLikeRtcpProbe) {
  util::ByteWriter w;
  serialize_sender_report(w, sample_sr());
  EXPECT_TRUE(looks_like_rtcp(w.view()));
  auto bytes = w.take();
  bytes[1] = 98;  // RTP payload type range, not RTCP
  EXPECT_FALSE(looks_like_rtcp(bytes));
}

TEST(Rtcp, ReceiverReportRoundTrip) {
  // Zoom never sends RRs (§4.2.1), but the parser must handle them.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>((2 << 6) | 1));
  w.u8(kRtcpReceiverReport);
  w.u16be(1 + 6);
  w.u32be(0x7777);
  w.u32be(0x1111);           // block: ssrc
  w.u32be(0x05000010);       // fraction + cumulative
  w.u32be(1234);
  w.u32be(9);
  w.u32be(0);
  w.u32be(0);
  auto packets = parse_rtcp_compound(w.view());
  ASSERT_EQ(packets.size(), 1u);
  const auto* rr = std::get_if<ReceiverReport>(&packets[0]);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->sender_ssrc, 0x7777u);
  ASSERT_EQ(rr->reports.size(), 1u);
  EXPECT_EQ(rr->reports[0].fraction_lost, 5);
  EXPECT_EQ(rr->reports[0].cumulative_lost, 16);
}

}  // namespace
}  // namespace zpm::proto
