// Passive RTT estimation: RTP-copy matching and TCP seq/ack proxy (§5.3).
#include <gtest/gtest.h>

#include "metrics/latency.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

Timestamp at(double s) { return Timestamp::from_seconds(s); }

TEST(RtpCopyMatcher, MatchesForwardedCopy) {
  RtpCopyMatcher m;
  m.on_egress(at(1.000), 0x42, 100, 90000);
  auto sample = m.on_ingress(at(1.034), 0x42, 100, 90000);
  ASSERT_TRUE(sample);
  EXPECT_EQ(sample->rtt.ms(), 34.0);
  EXPECT_EQ(m.samples().size(), 1u);
  EXPECT_EQ(m.mean_rtt().ms(), 34.0);
}

TEST(RtpCopyMatcher, RequiresAllFourFeatures) {
  RtpCopyMatcher m;
  m.on_egress(at(1.0), 0x42, 100, 90000);
  // Wrong SSRC.
  EXPECT_FALSE(m.on_ingress(at(1.01), 0x43, 100, 90000));
  // Wrong sequence.
  EXPECT_FALSE(m.on_ingress(at(1.01), 0x42, 101, 90000));
  // Matching SSRC+seq but wrong RTP timestamp (SSRC collision across
  // meetings — §4.3.1 challenge 2).
  EXPECT_FALSE(m.on_ingress(at(1.01), 0x42, 100, 12345));
  // All four features match.
  EXPECT_TRUE(m.on_ingress(at(1.01), 0x42, 100, 90000));
}

TEST(RtpCopyMatcher, MatchConsumedOnce) {
  RtpCopyMatcher m;
  m.on_egress(at(1.0), 7, 5, 500);
  EXPECT_TRUE(m.on_ingress(at(1.02), 7, 5, 500));
  // The SFU fans out to several receivers, but we count one RTT sample
  // per egress record.
  EXPECT_FALSE(m.on_ingress(at(1.03), 7, 5, 500));
}

TEST(RtpCopyMatcher, WindowExpiry) {
  RtpCopyMatcher m(Duration::millis(500));
  m.on_egress(at(1.0), 7, 5, 500);
  EXPECT_FALSE(m.on_ingress(at(2.0), 7, 5, 500));  // too late
  EXPECT_EQ(m.pending(), 0u);
}

TEST(RtpCopyMatcher, SequenceWrapOverwritesStaleEntry) {
  RtpCopyMatcher m;
  m.on_egress(at(1.0), 7, 5, 100);
  m.on_egress(at(1.5), 7, 5, 200);  // same (ssrc,seq) after wrap, new ts
  auto s = m.on_ingress(at(1.52), 7, 5, 200);
  ASSERT_TRUE(s);
  EXPECT_NEAR(s->rtt.ms(), 20.0, 1e-9);
}

TEST(TcpRtt, ServerSideRttFromDataAck) {
  TcpRttEstimator est;
  net::TcpHeader data;
  data.seq = 1000;
  data.flags = net::kTcpAck | net::kTcpPsh;
  est.on_packet(at(1.000), data, 100, /*outbound=*/true);
  net::TcpHeader ack;
  ack.ack = 1100;
  ack.flags = net::kTcpAck;
  est.on_packet(at(1.040), ack, 0, /*outbound=*/false);
  ASSERT_EQ(est.server_rtt().size(), 1u);
  EXPECT_NEAR(est.server_rtt()[0].rtt.ms(), 40.0, 1e-9);
  EXPECT_TRUE(est.client_rtt().empty());
}

TEST(TcpRtt, ClientSideRttFromInboundData) {
  TcpRttEstimator est;
  net::TcpHeader data;
  data.seq = 5000;
  data.flags = net::kTcpAck;
  est.on_packet(at(2.000), data, 200, /*outbound=*/false);
  net::TcpHeader ack;
  ack.ack = 5200;
  ack.flags = net::kTcpAck;
  est.on_packet(at(2.006), ack, 0, /*outbound=*/true);
  ASSERT_EQ(est.client_rtt().size(), 1u);
  EXPECT_NEAR(est.client_rtt()[0].rtt.ms(), 6.0, 0.01);
}

TEST(TcpRtt, RetransmissionNotSampled) {
  // Karn's algorithm: an ack for a retransmitted segment is ambiguous.
  TcpRttEstimator est;
  net::TcpHeader data;
  data.seq = 1000;
  est.on_packet(at(1.0), data, 100, true);
  est.on_packet(at(1.3), data, 100, true);  // retransmission (same seq)
  net::TcpHeader ack;
  ack.ack = 1100;
  ack.flags = net::kTcpAck;
  est.on_packet(at(1.35), ack, 0, false);
  EXPECT_TRUE(est.server_rtt().empty());
}

TEST(TcpRtt, CumulativeAckSamplesNewestSegment) {
  TcpRttEstimator est;
  net::TcpHeader d1;
  d1.seq = 0;
  est.on_packet(at(1.00), d1, 100, true);
  net::TcpHeader d2;
  d2.seq = 100;
  est.on_packet(at(1.05), d2, 100, true);
  net::TcpHeader ack;
  ack.ack = 200;  // acks both
  ack.flags = net::kTcpAck;
  est.on_packet(at(1.08), ack, 0, false);
  ASSERT_EQ(est.server_rtt().size(), 1u);
  EXPECT_NEAR(est.server_rtt()[0].rtt.ms(), 30.0, 1e-9);  // newest segment
}

TEST(TcpRtt, SynConsumesSequenceNumber) {
  TcpRttEstimator est;
  net::TcpHeader syn;
  syn.seq = 999;
  syn.flags = net::kTcpSyn;
  est.on_packet(at(1.0), syn, 0, true);
  net::TcpHeader synack;
  synack.ack = 1000;  // acks the SYN
  synack.flags = net::kTcpSyn | net::kTcpAck;
  est.on_packet(at(1.025), synack, 0, false);
  ASSERT_EQ(est.server_rtt().size(), 1u);
  EXPECT_NEAR(est.server_rtt()[0].rtt.ms(), 25.0, 0.01);
}

TEST(TcpRtt, PureAcksProduceNoInflightState) {
  TcpRttEstimator est;
  net::TcpHeader ack;
  ack.ack = 1;
  ack.flags = net::kTcpAck;
  for (int i = 0; i < 10; ++i) est.on_packet(at(i), ack, 0, true);
  EXPECT_TRUE(est.server_rtt().empty());
  EXPECT_TRUE(est.client_rtt().empty());
}

}  // namespace
}  // namespace zpm::metrics
