// End-to-end daemon lifecycle: drain, crash recovery with byte-
// identical epoch reports (serial and sharded), the stalled-source
// watchdog, graceful shutdown from another thread, and SIGHUP config
// reload. The crash in these tests is halt_after_epochs — an in-
// process kill -9 at an epoch boundary (no final flush, no shutdown
// snapshot); the real-signal variant lives in the CI soak job.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/daemon.h"
#include "net/live_source.h"
#include "net/pcap.h"
#include "sim/meeting.h"

namespace zpm::analysis {
namespace {

namespace fs = std::filesystem;

/// A 20 s simulated meeting trace, written once.
const std::string& meeting_trace() {
  static const std::string path = [] {
    // PID-unique: parallel ctest workers share /tmp.
    const std::string p = ::testing::TempDir() + "/daemon_meeting." +
                          std::to_string(::getpid()) + ".pcap";
    sim::MeetingConfig mc;
    mc.seed = 31;
    mc.start = util::Timestamp::from_seconds(1'700'000'000);
    mc.duration = util::Duration::seconds(20);
    sim::ParticipantConfig a, b, c;
    a.ip = net::Ipv4Addr(10, 8, 1, 20);
    b.ip = net::Ipv4Addr(10, 8, 2, 31);
    c.ip = net::Ipv4Addr(98, 0, 0, 3);
    c.on_campus = false;
    mc.participants = {a, b, c};
    sim::MeetingSim sim(mc);
    net::PcapWriter writer(p);
    while (auto pkt = sim.next_packet()) writer.write(*pkt);
    EXPECT_TRUE(writer.ok());
    EXPECT_GT(writer.packets_written(), 2000u);
    return p;
  }();
  return path;
}

/// Fresh per-test state directory.
fs::path state_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::to_string(::getpid()) + "_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

DaemonConfig base_config(const fs::path& dir, std::uint64_t epoch_packets,
                         std::size_t shards = 1) {
  DaemonConfig config;
  config.engine.shards = shards;
  config.engine.limits.max_packets = epoch_packets;
  config.engine.limits.max_span = util::Duration::micros(0);
  config.snapshot_path = (dir / "snapshot.bin").string();
  config.report_dir = dir.string();
  config.watchdog = util::Duration::micros(0);  // tests enable explicitly
  config.verbose = false;
  return config;
}

std::vector<std::uint8_t> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Sorted epoch-NNNNNNNN.bin paths in `dir`.
std::vector<fs::path> epoch_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    if (name.starts_with("epoch-") && name.ends_with(".bin"))
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

net::ReplayLiveSource make_replay(std::uint64_t loops = 1) {
  net::ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.loops = loops;
  return net::ReplayLiveSource(cfg);
}

TEST(MonitorDaemon, DrainsTraceAndPersistsEverything) {
  const auto dir = state_dir("daemon_drain");
  MonitorDaemon daemon(base_config(dir, 900));
  auto source = make_replay();
  ASSERT_TRUE(source.ok()) << source.error();

  EXPECT_EQ(daemon.run(source), 0);
  EXPECT_EQ(daemon.restore_status(), RestoreStatus::Missing);
  EXPECT_GE(daemon.stats().epochs_rotated, 2u);
  EXPECT_EQ(daemon.stats().packets_processed, source.trace_packets());
  EXPECT_EQ(daemon.stats().epoch_files_written, daemon.stats().epochs_rotated);
  EXPECT_EQ(daemon.stats().snapshots_written, daemon.stats().epochs_rotated);

  // Every epoch file parses; sequence numbers are contiguous from 0 and
  // global packet indices tile the stream exactly.
  const auto files = epoch_files(dir);
  ASSERT_EQ(files.size(), daemon.stats().epochs_rotated);
  std::uint64_t expect_first = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    EpochReport rep;
    std::string error;
    ASSERT_TRUE(load_epoch_report(files[i].string(), rep, &error)) << error;
    EXPECT_EQ(rep.seq, i);
    EXPECT_EQ(rep.first_packet, expect_first);
    expect_first += rep.packets;
  }
  EXPECT_EQ(expect_first, source.trace_packets());

  // The final snapshot records the fully-consumed stream.
  SnapshotData snap;
  std::string error;
  ASSERT_EQ(load_snapshot(base_config(dir, 900).snapshot_path, snap, &error),
            RestoreStatus::Ok)
      << error;
  EXPECT_EQ(snap.packets_consumed, source.trace_packets());
  EXPECT_EQ(snap.next_epoch_seq, files.size());
  EXPECT_EQ(snap.cumulative_counters.total_packets, source.trace_packets());
}

/// Crash recovery byte-identity at a given shard count: run once
/// uninterrupted, then again with a simulated kill -9 after two epochs
/// plus a restart; every epoch file must match byte for byte.
void crash_recovery_roundtrip(const char* tag, std::size_t shards) {
  const auto clean_dir = state_dir((std::string("daemon_clean_") + tag).c_str());
  {
    MonitorDaemon daemon(base_config(clean_dir, 700, shards));
    auto source = make_replay();
    ASSERT_EQ(daemon.run(source), 0);
    ASSERT_GE(daemon.stats().epochs_rotated, 4u)
        << "trace too short for a meaningful interruption";
  }

  const auto crash_dir = state_dir((std::string("daemon_crash_") + tag).c_str());
  const std::uint64_t halt_after = 2;
  {
    auto config = base_config(crash_dir, 700, shards);
    config.halt_after_epochs = halt_after;
    MonitorDaemon halted(std::move(config));
    auto source = make_replay();
    ASSERT_EQ(halted.run(source), 0);
    EXPECT_EQ(halted.stats().epochs_rotated, halt_after);
  }
  // Lost work is bounded to the interrupted epoch: the snapshot resumes
  // exactly at the last completed boundary.
  {
    SnapshotData snap;
    std::string error;
    ASSERT_EQ(load_snapshot((crash_dir / "snapshot.bin").string(), snap, &error),
              RestoreStatus::Ok)
        << error;
    EXPECT_EQ(snap.next_epoch_seq, halt_after);
    EXPECT_EQ(snap.packets_consumed, halt_after * 700);
  }
  {
    MonitorDaemon daemon(base_config(crash_dir, 700, shards));
    auto source = make_replay();
    ASSERT_EQ(daemon.run(source), 0);
    EXPECT_EQ(daemon.restore_status(), RestoreStatus::Ok);
  }

  const auto clean = epoch_files(clean_dir);
  const auto crashed = epoch_files(crash_dir);
  ASSERT_EQ(clean.size(), crashed.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].filename(), crashed[i].filename());
    EXPECT_EQ(file_bytes(clean[i]), file_bytes(crashed[i]))
        << "epoch file " << clean[i].filename() << " differs after recovery";
  }
  EXPECT_EQ(file_bytes(clean_dir / "snapshot.bin"),
            file_bytes(crash_dir / "snapshot.bin"));
}

TEST(MonitorDaemon, CrashRecoveryIsByteIdenticalSerial) {
  crash_recovery_roundtrip("serial", 1);
}

TEST(MonitorDaemon, CrashRecoveryIsByteIdenticalSharded) {
  crash_recovery_roundtrip("sharded", 4);
}

TEST(MonitorDaemon, CorruptSnapshotFallsBackToFreshStart) {
  const auto dir = state_dir("daemon_corrupt");
  auto config = base_config(dir, 900);
  {
    std::ofstream out(config.snapshot_path, std::ios::binary);
    out << "not a snapshot at all";
  }
  MonitorDaemon daemon(std::move(config));
  auto source = make_replay();
  ASSERT_EQ(daemon.run(source), 0);
  EXPECT_EQ(daemon.restore_status(), RestoreStatus::Corrupt);
  // Fresh start: numbering begins at 0 and the whole stream is covered.
  EXPECT_EQ(daemon.cumulative().cumulative_counters.total_packets,
            source.trace_packets());
  const auto files = epoch_files(dir);
  ASSERT_FALSE(files.empty());
  EpochReport first;
  ASSERT_TRUE(load_epoch_report(files.front().string(), first, nullptr));
  EXPECT_EQ(first.seq, 0u);
}

TEST(MonitorDaemon, WatchdogReopensStalledSource) {
  const auto dir = state_dir("daemon_watchdog");
  auto config = base_config(dir, 900);
  config.watchdog = util::Duration::millis(50);
  config.idle_sleep = util::Duration::millis(1);
  config.backoff_initial = util::Duration::millis(10);
  MonitorDaemon daemon(std::move(config));

  net::ReplayLiveSourceConfig src_cfg;
  src_cfg.path = meeting_trace();
  src_cfg.stall_after_packets = 1000;
  net::ReplayLiveSource source(src_cfg);
  ASSERT_TRUE(source.ok());

  EXPECT_EQ(daemon.run(source), 0);
  // The stall was detected, health-accounted, and recovered from — and
  // no packet was lost to it.
  EXPECT_GE(daemon.stats().source_stalls, 1u);
  EXPECT_GE(source.reopen_count(), 1u);
  EXPECT_GE(daemon.cumulative().cumulative_health.source_stalls, 1u);
  EXPECT_EQ(daemon.stats().packets_processed, source.trace_packets());
}

TEST(MonitorDaemon, ShutdownRequestDrainsInfiniteSource) {
  const auto dir = state_dir("daemon_shutdown");
  auto config = base_config(dir, 900);
  MonitorDaemon daemon(std::move(config));
  auto source = make_replay(/*loops=*/0);  // endless
  ASSERT_TRUE(source.ok());

  int exit_code = -1;
  std::thread runner([&] { exit_code = daemon.run(source); });
  // Let it chew through at least one rotation, then ask for a drain —
  // the same path SIGTERM/SIGINT take.
  while (daemon.stats().epochs_rotated < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  daemon.request_shutdown();
  runner.join();

  EXPECT_EQ(exit_code, 0);
  // The drain flushed the partial epoch into the cumulative totals.
  EXPECT_EQ(daemon.cumulative().cumulative_counters.total_packets,
            daemon.stats().packets_processed);
  EXPECT_GT(daemon.stats().packets_processed, 0u);
}

TEST(MonitorDaemon, ReloadAppliesLimitsImmediately) {
  const auto dir = state_dir("daemon_reload");
  auto config = base_config(dir, 100'000'000);  // would never rotate
  config.config_path = (dir / "daemon.conf").string();
  {
    std::ofstream out(config.config_path);
    out << "# shrink epochs drastically\n";
    out << "epoch_packets = 800\n";
  }
  MonitorDaemon daemon(std::move(config));
  daemon.request_reload();  // pending before the first poll
  auto source = make_replay();
  ASSERT_EQ(daemon.run(source), 0);

  EXPECT_EQ(daemon.stats().config_reloads, 1u);
  EXPECT_GE(daemon.stats().epochs_rotated, 2u)
      << "reloaded 800-packet limit never took effect";
  EpochReport first;
  ASSERT_TRUE(
      load_epoch_report(epoch_files(dir).front().string(), first, nullptr));
  EXPECT_EQ(first.packets, 800u);
}

TEST(MonitorDaemon, FatalSourceErrorExitsNonzero) {
  const auto dir = state_dir("daemon_fatal");
  auto config = base_config(dir, 900);
  config.backoff_initial = util::Duration::millis(1);
  MonitorDaemon daemon(std::move(config));
  net::ReplayLiveSourceConfig src_cfg;
  src_cfg.path = (dir / "missing.pcap").string();
  net::ReplayLiveSource source(src_cfg);
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(daemon.run(source), 1);
}

}  // namespace
}  // namespace zpm::analysis
