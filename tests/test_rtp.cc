// RTP header parsing / serialization (RFC 3550).
#include <gtest/gtest.h>

#include "proto/rtp.h"

namespace zpm::proto {
namespace {

RtpHeader sample() {
  RtpHeader h;
  h.payload_type = 98;
  h.marker = true;
  h.sequence = 12345;
  h.timestamp = 0xdeadbeef;
  h.ssrc = 0x42;
  return h;
}

TEST(Rtp, RoundTripMinimal) {
  util::ByteWriter w;
  sample().serialize(w);
  EXPECT_EQ(w.size(), 12u);
  auto parsed = parse_rtp_packet(w.view());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.version, 2);
  EXPECT_EQ(parsed->header.payload_type, 98);
  EXPECT_TRUE(parsed->header.marker);
  EXPECT_EQ(parsed->header.sequence, 12345);
  EXPECT_EQ(parsed->header.timestamp, 0xdeadbeefu);
  EXPECT_EQ(parsed->header.ssrc, 0x42u);
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(Rtp, RoundTripWithCsrcsAndExtension) {
  RtpHeader h = sample();
  h.csrcs = {0x11111111, 0x22222222};
  h.extension = true;
  h.extension_profile = 0xbede;
  h.extension_data = {1, 2, 3, 4, 5};  // padded to 8 bytes (2 words)
  util::ByteWriter w;
  h.serialize(w);
  std::vector<std::uint8_t> payload = {0xaa, 0xbb};
  w.bytes(payload);
  auto parsed = parse_rtp_packet(w.view());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.csrc_count, 2);
  ASSERT_EQ(parsed->header.csrcs.size(), 2u);
  EXPECT_EQ(parsed->header.csrcs[1], 0x22222222u);
  EXPECT_TRUE(parsed->header.extension);
  EXPECT_EQ(parsed->header.extension_profile, 0xbede);
  EXPECT_EQ(parsed->header.extension_data.size(), 8u);  // word-padded
  EXPECT_EQ(parsed->header.header_length(), 12u + 8u + 4u + 8u);
  ASSERT_EQ(parsed->payload.size(), 2u);
  EXPECT_EQ(parsed->payload[0], 0xaa);
}

TEST(Rtp, RejectsWrongVersion) {
  util::ByteWriter w;
  sample().serialize(w);
  auto bytes = w.take();
  bytes[0] = static_cast<std::uint8_t>((bytes[0] & 0x3f) | (1 << 6));  // version 1
  EXPECT_FALSE(parse_rtp_packet(bytes));
}

TEST(Rtp, RejectsTruncated) {
  util::ByteWriter w;
  sample().serialize(w);
  auto bytes = w.take();
  bytes.resize(11);
  EXPECT_FALSE(parse_rtp_packet(bytes));
}

TEST(Rtp, RejectsTruncatedCsrcList) {
  util::ByteWriter w;
  RtpHeader h = sample();
  h.csrcs = {1, 2, 3};
  h.serialize(w);
  auto bytes = w.take();
  bytes.resize(16);  // fixed header + 1 CSRC only
  EXPECT_FALSE(parse_rtp_packet(bytes));
}

TEST(Rtp, LooksLikeRtpProbe) {
  util::ByteWriter w;
  sample().serialize(w);
  EXPECT_TRUE(looks_like_rtp(w.view()));
  auto bytes = w.take();
  bytes[0] = 0x00;
  EXPECT_FALSE(looks_like_rtp(bytes));
  EXPECT_FALSE(looks_like_rtp(std::vector<std::uint8_t>(4)));
}

}  // namespace
}  // namespace zpm::proto
