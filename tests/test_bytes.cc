// ByteReader / ByteWriter: bounds safety, byte order, round-trips.
#include <gtest/gtest.h>

#include "util/bytes.h"

namespace zpm::util {
namespace {

TEST(ByteReader, ReadsBigEndianScalars) {
  auto data = from_hex("01 0203 040506 0708090a 0102030405060708");
  ByteReader r(data);
  EXPECT_EQ(r.u8(), 0x01u);
  EXPECT_EQ(r.u16be(), 0x0203u);
  EXPECT_EQ(r.u24be(), 0x040506u);
  EXPECT_EQ(r.u32be(), 0x0708090au);
  EXPECT_EQ(r.u64be(), 0x0102030405060708ull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunFlipsToFailedStateAndStaysThere) {
  std::uint8_t data[] = {0xaa, 0xbb};
  ByteReader r(data);
  EXPECT_EQ(r.u16be(), 0xaabbu);
  EXPECT_EQ(r.u8(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
  // Sticky: even reads that would fit now fail.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.bytes(1).empty());
}

TEST(ByteReader, PartialMultibyteReadDoesNotReadOutOfBounds) {
  std::uint8_t data[] = {0x01, 0x02, 0x03};
  ByteReader r(data);
  EXPECT_EQ(r.u32be(), 0u);  // only 3 bytes available
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BytesAndRestViews) {
  auto data = from_hex("deadbeefcafe");
  ByteReader r(data);
  auto head = r.bytes(2);
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head[0], 0xde);
  auto rest = r.rest();
  EXPECT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[3], 0xfe);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, PeekDoesNotAdvance) {
  auto data = from_hex("1122");
  ByteReader r(data);
  EXPECT_EQ(r.peek_u8(), 0x11u);
  EXPECT_EQ(r.peek_u8(1), 0x22u);
  EXPECT_EQ(r.peek_u8(2), 0u);  // out of range: 0, state unchanged
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.position(), 0u);
}

TEST(ByteReader, SkipPastEndFails) {
  std::uint8_t data[] = {1, 2, 3};
  ByteReader r(data);
  r.skip(4);
  EXPECT_FALSE(r.ok());
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ByteWriter w;
  w.u8(0x7f);
  w.u16be(0xbeef);
  w.u24be(0x010203);
  w.u32be(0xdeadbeef);
  w.u64be(0x1122334455667788ull);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0x7fu);
  EXPECT_EQ(r.u16be(), 0xbeefu);
  EXPECT_EQ(r.u24be(), 0x010203u);
  EXPECT_EQ(r.u32be(), 0xdeadbeefu);
  EXPECT_EQ(r.u64be(), 0x1122334455667788ull);
  EXPECT_TRUE(r.ok());
}

TEST(ByteWriter, PatchU16OverwritesInPlace) {
  ByteWriter w;
  w.u16be(0);
  w.u8(0xff);
  w.patch_u16be(0, 0x1234);
  EXPECT_EQ(to_hex(w.view()), "1234ff");
}

TEST(ByteWriter, PatchOutOfRangeIsIgnored) {
  ByteWriter w;
  w.u8(1);
  w.patch_u16be(0, 0xffff);  // needs 2 bytes, only 1 present
  EXPECT_EQ(to_hex(w.view()), "01");
}

TEST(ByteWriter, FillAppendsRepeatedByte) {
  ByteWriter w;
  w.fill(3, 0xab);
  EXPECT_EQ(to_hex(w.view()), "ababab");
}

TEST(HexCodec, RoundTrip) {
  auto bytes = from_hex("00ff10a5");
  EXPECT_EQ(to_hex(bytes), "00ff10a5");
}

TEST(HexCodec, AcceptsWhitespaceAndUppercase) {
  auto bytes = from_hex("DE AD be ef");
  EXPECT_EQ(to_hex(bytes), "deadbeef");
}

TEST(HexCodec, RejectsOddLengthAndGarbage) {
  EXPECT_TRUE(from_hex("abc").empty());
  EXPECT_TRUE(from_hex("zz").empty());
}

}  // namespace
}  // namespace zpm::util
