// Interval binning and sliding-window rates.
#include <gtest/gtest.h>

#include "util/rate.h"

namespace zpm::util {
namespace {

Timestamp at(double sec) { return Timestamp::from_seconds(sec); }

TEST(IntervalBinner, BinsByWidthAndFillsGaps) {
  IntervalBinner b(Duration::seconds(1.0));
  b.add(at(10.2), 100);
  b.add(at(10.9), 50);
  b.add(at(13.1), 10);  // bins 11 and 12 are empty
  auto series = b.series();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0].total, 150.0);
  EXPECT_DOUBLE_EQ(series[1].total, 0.0);
  EXPECT_DOUBLE_EQ(series[2].total, 0.0);
  EXPECT_DOUBLE_EQ(series[3].total, 10.0);
  EXPECT_EQ(series[0].start.us(), 10'000'000);
  EXPECT_DOUBLE_EQ(series[0].per_second, 150.0);
}

TEST(IntervalBinner, WiderBinsScaleRate) {
  IntervalBinner b(Duration::seconds(60.0));
  for (int i = 0; i < 60; ++i) b.add(at(100.0 + i), 2.0);
  auto series = b.series();
  // All samples may straddle two 60-s bins depending on alignment; sum
  // of totals must be exact.
  double total = 0;
  for (const auto& bin : series) total += bin.total;
  EXPECT_DOUBLE_EQ(total, 120.0);
}

TEST(IntervalBinner, EmptySeries) {
  IntervalBinner b(Duration::seconds(1.0));
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.series().empty());
}

TEST(WindowedRate, TracksOnlyRecentEvents) {
  WindowedRate r(Duration::seconds(1.0));
  r.add(at(5.0), 10.0);
  r.add(at(5.5), 10.0);
  EXPECT_DOUBLE_EQ(r.total(at(5.6)), 20.0);
  EXPECT_DOUBLE_EQ(r.rate(at(5.6)), 20.0);
  // First event ages out of the 1-second window.
  EXPECT_DOUBLE_EQ(r.total(at(6.2)), 10.0);
  EXPECT_DOUBLE_EQ(r.total(at(7.0)), 0.0);
}

TEST(WindowedRate, CompactionKeepsTotalsCorrect) {
  WindowedRate r(Duration::millis(100));
  double expected_window_total = 0;
  for (int i = 0; i < 5000; ++i) {
    r.add(at(i * 0.01), 1.0);
  }
  // Window is 0.1 s = 10 events of spacing 0.01 s.
  expected_window_total = r.total(at(49.99));
  EXPECT_NEAR(expected_window_total, 10.0, 1.0);
}

}  // namespace
}  // namespace zpm::util
