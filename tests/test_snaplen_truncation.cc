// End-to-end snaplen robustness: a meeting trace rewritten through
// PcapWriter at short snaplens must keep the analyzer alive, surface
// the truncation in AnalyzerHealth, and — whenever the Zoom headers
// still fit (96/128 bytes cover eth+ip+udp+SFU+media encap+RTP) —
// recover the exact stream and meeting grouping of the full capture.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/analyzer.h"
#include "net/pcap.h"
#include "sim/meeting.h"

namespace zpm::core {
namespace {

std::vector<net::RawPacket> meeting_trace() {
  sim::MeetingConfig mc;
  mc.seed = 12;
  mc.duration = util::Duration::seconds(40);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  b.send_screen_share = true;
  c.ip = net::Ipv4Addr(98, 0, 0, 3);
  c.on_campus = false;
  mc.participants = {a, b, c};
  return sim::run_meeting(mc);
}

struct RunOutcome {
  std::size_t streams = 0;
  std::size_t meetings = 0;
  std::uint64_t media_ids = 0;
  AnalyzerHealth health;
};

RunOutcome analyze(const std::vector<net::RawPacket>& trace) {
  Analyzer analyzer(AnalyzerConfig{});
  for (const auto& pkt : trace) analyzer.offer(pkt);
  analyzer.finish();
  return {analyzer.streams().size(), analyzer.meetings().meeting_count(),
          analyzer.streams().media_count(), analyzer.health()};
}

/// Round-trips the trace through a pcap file written with `snaplen`.
std::vector<net::RawPacket> rewrite_with_snaplen(
    const std::vector<net::RawPacket>& trace, std::uint32_t snaplen) {
  std::stringstream buf;
  {
    net::PcapWriter writer(buf, snaplen);
    for (const auto& pkt : trace) writer.write(pkt);
  }
  net::PcapReader reader(buf);
  EXPECT_TRUE(reader.ok()) << reader.error();
  std::vector<net::RawPacket> out;
  while (auto pkt = reader.next()) out.push_back(std::move(*pkt));
  EXPECT_EQ(out.size(), trace.size());
  return out;
}

TEST(SnaplenTruncation, HeadersIntactAt96And128RecoverGrouping) {
  auto trace = meeting_trace();
  auto baseline = analyze(trace);
  ASSERT_GT(baseline.streams, 0u);
  ASSERT_GT(baseline.meetings, 0u);
  EXPECT_TRUE(baseline.health.all_clear());

  for (std::uint32_t snaplen : {96u, 128u}) {
    SCOPED_TRACE("snaplen=" + std::to_string(snaplen));
    auto truncated = rewrite_with_snaplen(trace, snaplen);
    std::uint64_t short_records = 0;
    for (const auto& pkt : truncated)
      if (pkt.is_truncated()) ++short_records;
    ASSERT_GT(short_records, 0u);

    auto outcome = analyze(truncated);
    // Grouping is computed from the headers, which all survive: the
    // stream table and meeting association must be unchanged.
    EXPECT_EQ(outcome.streams, baseline.streams);
    EXPECT_EQ(outcome.meetings, baseline.meetings);
    EXPECT_EQ(outcome.media_ids, baseline.media_ids);
    // The truncation itself must be accounted, one count per short
    // record, and nothing may be dropped as malformed.
    EXPECT_EQ(outcome.health.snaplen_truncated, short_records);
    EXPECT_EQ(outcome.health.dropped_records(), 0u);
  }
}

TEST(SnaplenTruncation, Snaplen64SurvivesWithHealthEvidence) {
  // 64 bytes cuts into the Zoom encapsulations themselves (the media
  // encap header no longer fits): nothing can dissect, but the run must
  // complete and the health counters must say why.
  auto trace = meeting_trace();
  auto truncated = rewrite_with_snaplen(trace, 64);
  auto outcome = analyze(truncated);
  EXPECT_EQ(outcome.streams, 0u);
  EXPECT_GT(outcome.health.snaplen_truncated, 0u);
  // Known encap types with unreadable headers are malformed, not
  // silently ignored.
  EXPECT_GT(outcome.health.dropped_records(), 0u);
}

}  // namespace
}  // namespace zpm::core
