// Zoom SFU / media encapsulation headers (Table 1, Fig. 7).
#include <gtest/gtest.h>

#include "zoom/encap.h"

namespace zpm::zoom {
namespace {

TEST(SfuEncap, RoundTrip) {
  SfuEncap h;
  h.type = kSfuTypeMedia;
  h.sequence = 999;
  h.direction = kSfuDirFromSfu;
  h.undocumented = {1, 2, 3, 4};
  util::ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), SfuEncap::kSize);
  util::ByteReader r(w.view());
  auto parsed = SfuEncap::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, kSfuTypeMedia);
  EXPECT_EQ(parsed->sequence, 999);
  EXPECT_TRUE(parsed->is_from_sfu());
  EXPECT_TRUE(parsed->carries_media_encap());
  EXPECT_EQ(parsed->undocumented, h.undocumented);
}

TEST(SfuEncap, FieldOffsetsMatchTable1) {
  SfuEncap h;
  h.type = 0x05;
  h.sequence = 0xabcd;
  h.direction = 0x04;
  util::ByteWriter w;
  h.serialize(w);
  auto bytes = w.view();
  EXPECT_EQ(bytes[0], 0x05);        // type at byte 0
  EXPECT_EQ(bytes[1], 0xab);        // sequence at bytes 1-2
  EXPECT_EQ(bytes[2], 0xcd);
  EXPECT_EQ(bytes[7], 0x04);        // direction at byte 7
}

TEST(SfuEncap, NonMediaTypeDoesNotCarryMediaEncap) {
  SfuEncap h;
  h.type = 0x01;
  EXPECT_FALSE(h.carries_media_encap());
}

TEST(SfuEncap, TruncatedFails) {
  auto bytes = util::from_hex("05 0001 000000");  // 7 of 8 bytes
  util::ByteReader r(bytes);
  EXPECT_FALSE(SfuEncap::parse(r));
}

TEST(MediaEncap, PayloadOffsetsMatchTable2) {
  EXPECT_EQ(media_payload_offset(16), 24u);  // video
  EXPECT_EQ(media_payload_offset(15), 19u);  // audio
  EXPECT_EQ(media_payload_offset(13), 27u);  // screen share
  EXPECT_EQ(media_payload_offset(33), 16u);  // RTCP SR
  EXPECT_EQ(media_payload_offset(34), 16u);  // RTCP SR + SDES
  EXPECT_EQ(media_payload_offset(99), 0u);   // unknown
}

TEST(MediaEncap, VideoRoundTripWithFrameFields) {
  MediaEncap h;
  h.type = static_cast<std::uint8_t>(MediaEncapType::Video);
  h.sequence = 0x1122;
  h.timestamp = 0xa1b2c3d4;
  h.frame_sequence = 0x3344;
  h.packets_in_frame = 7;
  util::ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), 24u);
  util::ByteReader r(w.view());
  auto parsed = MediaEncap::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_video());
  EXPECT_EQ(parsed->sequence, 0x1122);
  EXPECT_EQ(parsed->timestamp, 0xa1b2c3d4u);
  EXPECT_EQ(parsed->frame_sequence, 0x3344);
  EXPECT_EQ(parsed->packets_in_frame, 7);
  EXPECT_EQ(r.position(), 24u);  // reader at RTP payload
}

TEST(MediaEncap, VideoFieldBytePositionsMatchTable1) {
  MediaEncap h;
  h.type = 16;
  h.sequence = 0xaabb;
  h.timestamp = 0x01020304;
  h.frame_sequence = 0xccdd;
  h.packets_in_frame = 9;
  util::ByteWriter w;
  h.serialize(w);
  auto b = w.view();
  EXPECT_EQ(b[0], 16);              // type: byte 0
  EXPECT_EQ(b[9], 0xaa);            // sequence: bytes 9-10
  EXPECT_EQ(b[10], 0xbb);
  EXPECT_EQ(b[11], 0x01);           // timestamp: bytes 11-14
  EXPECT_EQ(b[14], 0x04);
  EXPECT_EQ(b[21], 0xcc);           // frame seq: bytes 21-22
  EXPECT_EQ(b[22], 0xdd);
  EXPECT_EQ(b[23], 9);              // packets-in-frame: byte 23
}

TEST(MediaEncap, AudioAndScreenShareLengths) {
  for (auto [type, len] : {std::pair{15, 19}, std::pair{13, 27}, std::pair{33, 16}}) {
    MediaEncap h;
    h.type = static_cast<std::uint8_t>(type);
    h.sequence = 5;
    h.timestamp = 6;
    util::ByteWriter w;
    h.serialize(w);
    EXPECT_EQ(w.size(), static_cast<std::size_t>(len)) << "type " << type;
    util::ByteReader r(w.view());
    auto parsed = MediaEncap::parse(r);
    ASSERT_TRUE(parsed) << "type " << type;
    EXPECT_EQ(parsed->sequence, 5);
    EXPECT_EQ(parsed->timestamp, 6u);
  }
}

TEST(MediaEncap, UnknownTypeFailsParse) {
  std::vector<std::uint8_t> bytes(32, 0);
  bytes[0] = 99;
  util::ByteReader r(bytes);
  EXPECT_FALSE(MediaEncap::parse(r));
  EXPECT_TRUE(r.ok());  // parse must not consume on failure-by-type
}

TEST(MediaEncap, TruncatedHeaderFails) {
  std::vector<std::uint8_t> bytes(20, 0);
  bytes[0] = 16;  // video needs 24
  util::ByteReader r(bytes);
  EXPECT_FALSE(MediaEncap::parse(r));
}

TEST(MediaEncap, KindHelpers) {
  EXPECT_EQ(media_kind_of(16), MediaKind::Video);
  EXPECT_EQ(media_kind_of(15), MediaKind::Audio);
  EXPECT_EQ(media_kind_of(13), MediaKind::ScreenShare);
  EXPECT_FALSE(media_kind_of(33));
  EXPECT_TRUE(is_rtcp_encap_type(33));
  EXPECT_TRUE(is_rtcp_encap_type(34));
  EXPECT_FALSE(is_rtcp_encap_type(16));
  EXPECT_EQ(media_kind_name(MediaKind::ScreenShare), "screen_share");
}

}  // namespace
}  // namespace zpm::zoom
