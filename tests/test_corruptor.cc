// sim::TraceCorruptor: determinism, record accounting, cut windows and
// per-impairment behaviour of the fault-injection pass.
#include <gtest/gtest.h>

#include <vector>

#include "net/build.h"
#include "sim/corruptor.h"
#include "sim/meeting.h"

namespace zpm::sim {
namespace {

std::vector<net::RawPacket> clean_trace(std::size_t n) {
  std::vector<net::RawPacket> trace;
  net::Ipv4Addr client(10, 8, 0, 1);
  net::Ipv4Addr server(170, 114, 0, 10);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    auto ts = util::Timestamp::from_seconds(100) +
              util::Duration::millis(static_cast<std::int64_t>(20 * i));
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(60, 400)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32() >> 24);
    trace.push_back(net::build_udp(ts, client, 45000, server, 8801, payload));
  }
  return trace;
}

std::vector<net::RawPacket> corrupt_all(const CorruptorConfig& cfg,
                                        const std::vector<net::RawPacket>& trace,
                                        CorruptionStats* stats = nullptr) {
  TraceCorruptor corruptor(cfg);
  std::vector<net::RawPacket> out;
  for (const auto& pkt : trace) corruptor.process(pkt, out);
  if (stats) *stats = corruptor.stats();
  return out;
}

TEST(Corruptor, SameSeedSameOutput) {
  auto trace = clean_trace(500);
  auto cfg = CorruptorConfig::hostile(42);
  cfg.trace_start = trace.front().ts;
  cfg.trace_duration = trace.back().ts - trace.front().ts;

  CorruptionStats s1, s2;
  auto out1 = corrupt_all(cfg, trace, &s1);
  auto out2 = corrupt_all(cfg, trace, &s2);
  EXPECT_EQ(s1, s2);
  ASSERT_EQ(out1.size(), out2.size());
  for (std::size_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1[i].ts, out2[i].ts) << i;
    EXPECT_EQ(out1[i].data, out2[i].data) << i;
    EXPECT_EQ(out1[i].orig_len, out2[i].orig_len) << i;
  }

  // A different seed must change the output (with 500 records and the
  // hostile rates the probability of identical decisions is negligible).
  auto cfg2 = cfg;
  cfg2.seed = 43;
  CorruptionStats s3;
  corrupt_all(cfg2, trace, &s3);
  EXPECT_NE(s1, s3);
}

TEST(Corruptor, RecordAccountingBalances) {
  auto trace = clean_trace(2000);
  auto cfg = CorruptorConfig::hostile(7);
  cfg.trace_start = trace.front().ts;
  cfg.trace_duration = trace.back().ts - trace.front().ts;

  CorruptionStats s;
  auto out = corrupt_all(cfg, trace, &s);
  EXPECT_EQ(s.offered, trace.size());
  EXPECT_EQ(s.emitted, out.size());
  // Every offered record is either dropped (randomly or by a cut) or
  // emitted; duplicates and look-alikes add extra emissions.
  EXPECT_EQ(s.offered - s.dropped - s.cut_dropped + s.duplicated +
                s.lookalikes_injected,
            s.emitted);
  // With 2000 records every hostile impairment should have fired.
  EXPECT_GT(s.truncated, 0u);
  EXPECT_GT(s.header_flips, 0u);
  EXPECT_GT(s.payload_flips, 0u);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.cut_dropped, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.ts_regressions, 0u);
  EXPECT_GT(s.lookalikes_injected, 0u);
}

TEST(Corruptor, TruncationSetsOrigLen) {
  auto trace = clean_trace(400);
  CorruptorConfig cfg;
  cfg.seed = 5;
  cfg.truncate_prob = 1.0;
  cfg.snaplen = 96;

  CorruptionStats s;
  auto out = corrupt_all(cfg, trace, &s);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (trace[i].data.size() > 96) {
      EXPECT_EQ(out[i].data.size(), 96u) << i;
      EXPECT_EQ(out[i].orig_len, trace[i].data.size()) << i;
      EXPECT_TRUE(out[i].is_truncated()) << i;
    } else {
      EXPECT_EQ(out[i].data, trace[i].data) << i;
      EXPECT_FALSE(out[i].is_truncated()) << i;
    }
  }
  EXPECT_GT(s.truncated, 0u);
}

TEST(Corruptor, CutWindowsDropEveryRecordInside) {
  auto trace = clean_trace(1000);
  CorruptorConfig cfg;
  cfg.seed = 11;
  cfg.capture_cuts = 3;
  cfg.cut_duration = util::Duration::seconds(2);
  cfg.trace_start = trace.front().ts;
  cfg.trace_duration = trace.back().ts - trace.front().ts;

  TraceCorruptor corruptor(cfg);
  ASSERT_EQ(corruptor.cut_windows().size(), 3u);
  std::vector<net::RawPacket> out;
  std::uint64_t inside = 0;
  for (const auto& pkt : trace) {
    for (const auto& [from, to] : corruptor.cut_windows())
      if (pkt.ts >= from && pkt.ts < to) {
        ++inside;
        break;
      }
    corruptor.process(pkt, out);
  }
  EXPECT_EQ(corruptor.stats().cut_dropped, inside);
  EXPECT_GT(inside, 0u);
  EXPECT_EQ(out.size(), trace.size() - inside);
  for (const auto& pkt : out)
    for (const auto& [from, to] : corruptor.cut_windows())
      EXPECT_FALSE(pkt.ts >= from && pkt.ts < to);
}

TEST(Corruptor, ZeroConfigPassesThroughUntouched) {
  auto trace = clean_trace(100);
  CorruptorConfig cfg;  // all probabilities zero
  CorruptionStats s;
  auto out = corrupt_all(cfg, trace, &s);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ts, trace[i].ts);
    EXPECT_EQ(out[i].data, trace[i].data);
  }
  EXPECT_EQ(s.offered, 100u);
  EXPECT_EQ(s.emitted, 100u);
}

TEST(Corruptor, MeetingSimCleanUnlessConfigured) {
  // nullopt corruption must be byte-identical to the pre-corruptor
  // generator, and corruption_stats() must report accordingly.
  sim::MeetingConfig mc;
  mc.seed = 3;
  mc.duration = util::Duration::seconds(20);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(98, 0, 0, 2);
  b.on_campus = false;
  mc.participants = {a, b};

  sim::MeetingSim clean(mc);
  EXPECT_EQ(clean.corruption_stats(), nullptr);
  std::uint64_t clean_count = 0;
  while (clean.next_packet()) ++clean_count;

  mc.corruption = CorruptorConfig::hostile(1);
  sim::MeetingSim dirty(mc);
  std::uint64_t dirty_count = 0;
  while (dirty.next_packet()) ++dirty_count;
  ASSERT_NE(dirty.corruption_stats(), nullptr);
  const auto& s = *dirty.corruption_stats();
  EXPECT_EQ(s.offered, clean_count);
  EXPECT_EQ(s.emitted, dirty_count);
  EXPECT_GT(s.dropped + s.cut_dropped, 0u);
}

}  // namespace
}  // namespace zpm::sim
