// The SPSC ring under the parallel pipeline: capacity rounding,
// wraparound, close/drain semantics and a cross-thread checksum stress.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "util/spsc_ring.h"

namespace zpm::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_GE(SpscRing<int>(0).capacity(), 2u);
}

TEST(SpscRing, TryPushFailsOnlyWhenFull) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // the pop freed a slot
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{i}));
    if (i % 3 == 2) {
      std::uint64_t v = 0;
      while (ring.try_pop(v)) EXPECT_EQ(v, next_expected++);
    }
  }
  std::uint64_t v = 0;
  while (ring.try_pop(v)) EXPECT_EQ(v, next_expected++);
  EXPECT_EQ(next_expected, 1000u);
}

TEST(SpscRing, CloseDrainsRemainingItemsThenStops) {
  SpscRing<int> ring(8);
  ring.push(1);
  ring.push(2);
  ring.close();
  EXPECT_TRUE(ring.closed());
  auto a = ring.pop();
  auto b = ring.pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(ring.pop());
  EXPECT_FALSE(ring.pop());  // stays empty/closed
}

TEST(SpscRing, PopBlocksUntilPushOrClose) {
  SpscRing<int> ring(8);
  std::thread producer([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.push(42);
    ring.close();
  });
  auto v = ring.pop();  // blocks until the producer delivers
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(ring.pop());
  producer.join();
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ring.push(std::make_unique<int>(7));
  auto v = ring.pop();
  ASSERT_TRUE(v && *v);
  EXPECT_EQ(**v, 7);
}

TEST(SpscRing, MillionItemChecksumAcrossThreads) {
  constexpr std::uint64_t kItems = 1'000'000;
  constexpr std::uint64_t kMix = 0x9E3779B97F4A7C15ull;
  std::uint64_t want_sum = 0, want_xor = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    want_sum += i * kMix;
    want_xor ^= i * kMix;
  }

  SpscRing<std::uint64_t> ring(1024);  // small: forces constant wraparound
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i * kMix);
    ring.close();
  });
  std::uint64_t sum = 0, xr = 0, count = 0;
  std::uint64_t prev_index = 0;
  bool in_order = true;
  while (auto v = ring.pop()) {
    sum += *v;
    xr ^= *v;
    // FIFO check: items were pushed as i * kMix with i ascending.
    if (count > 0 && *v != (prev_index + 1) * kMix) in_order = false;
    prev_index = count;
    ++count;
  }
  producer.join();

  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, want_sum);
  EXPECT_EQ(xr, want_xor);
  EXPECT_TRUE(in_order);
}

}  // namespace
}  // namespace zpm::util
