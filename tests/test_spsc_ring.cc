// The SPSC ring under the parallel pipeline: capacity rounding,
// wraparound, close/drain semantics and a cross-thread checksum stress.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "util/spsc_ring.h"

namespace zpm::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_GE(SpscRing<int>(0).capacity(), 2u);
}

TEST(SpscRing, TryPushFailsOnlyWhenFull) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // the pop freed a slot
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{i}));
    if (i % 3 == 2) {
      std::uint64_t v = 0;
      while (ring.try_pop(v)) EXPECT_EQ(v, next_expected++);
    }
  }
  std::uint64_t v = 0;
  while (ring.try_pop(v)) EXPECT_EQ(v, next_expected++);
  EXPECT_EQ(next_expected, 1000u);
}

TEST(SpscRing, CloseDrainsRemainingItemsThenStops) {
  SpscRing<int> ring(8);
  ring.push(1);
  ring.push(2);
  ring.close();
  EXPECT_TRUE(ring.closed());
  auto a = ring.pop();
  auto b = ring.pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(ring.pop());
  EXPECT_FALSE(ring.pop());  // stays empty/closed
}

TEST(SpscRing, PopBlocksUntilPushOrClose) {
  SpscRing<int> ring(8);
  std::thread producer([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.push(42);
    ring.close();
  });
  auto v = ring.pop();  // blocks until the producer delivers
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(ring.pop());
  producer.join();
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ring.push(std::make_unique<int>(7));
  auto v = ring.pop();
  ASSERT_TRUE(v && *v);
  EXPECT_EQ(**v, 7);
}

TEST(SpscRing, TryPushBatchTakesWhatFits) {
  SpscRing<int> ring(4);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.try_push_batch(std::span<int>(items)), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.try_push_batch(std::span<int>(items).subspan(4)), 0u);

  std::vector<int> out;
  EXPECT_EQ(ring.try_pop_batch(out, 10), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(ring.try_pop_batch(out, 10), 0u);
}

TEST(SpscRing, TryPopBatchAppendsWithoutClearing) {
  SpscRing<int> ring(8);
  std::vector<int> items = {7, 8, 9};
  ring.push_batch(std::span<int>(items));
  std::vector<int> out = {1};
  EXPECT_EQ(ring.try_pop_batch(out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 7, 8}));
  EXPECT_EQ(ring.try_pop_batch(out, 2), 1u);
  EXPECT_EQ(out, (std::vector<int>{1, 7, 8, 9}));
}

TEST(SpscRing, PopBatchDrainsThenSignalsClose) {
  SpscRing<int> ring(8);
  std::vector<int> items = {1, 2, 3, 4, 5};
  ring.push_batch(std::span<int>(items));
  ring.close();
  std::vector<int> out;
  EXPECT_EQ(ring.pop_batch(out, 3), 3u);
  EXPECT_EQ(ring.pop_batch(out, 3), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ring.pop_batch(out, 3), 0u);  // closed and drained
  EXPECT_EQ(ring.pop_batch(out, 3), 0u);  // stays that way
}

TEST(SpscRing, PushBatchBlocksUntilSpaceAndKeepsOrder) {
  // Batch sizes chosen coprime to the capacity so batches straddle the
  // wraparound point in every alignment.
  constexpr std::uint64_t kItems = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    std::vector<std::uint64_t> batch;
    std::uint64_t next = 0;
    while (next < kItems) {
      batch.clear();
      for (std::uint64_t i = 0; i < 33 && next < kItems; ++i) batch.push_back(next++);
      ring.push_batch(std::span<std::uint64_t>(batch));
    }
    ring.close();
  });
  std::vector<std::uint64_t> out;
  std::uint64_t expected = 0;
  while (ring.pop_batch(out, 57) > 0) {
    for (std::uint64_t v : out) EXPECT_EQ(v, expected++);
    out.clear();
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(SpscRing, BatchAndSingleOpsInterleave) {
  SpscRing<int> ring(8);
  std::vector<int> items = {10, 11};
  ring.push(9);
  ring.push_batch(std::span<int>(items));
  ring.push(12);
  std::vector<int> out;
  EXPECT_EQ(ring.try_pop_batch(out, 2), 2u);
  auto v = ring.pop();
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 11);
  EXPECT_EQ(ring.try_pop_batch(out, 8), 1u);
  EXPECT_EQ(out, (std::vector<int>{9, 10, 12}));
}

TEST(SpscRing, MillionItemChecksumAcrossThreads) {
  constexpr std::uint64_t kItems = 1'000'000;
  constexpr std::uint64_t kMix = 0x9E3779B97F4A7C15ull;
  std::uint64_t want_sum = 0, want_xor = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    want_sum += i * kMix;
    want_xor ^= i * kMix;
  }

  SpscRing<std::uint64_t> ring(1024);  // small: forces constant wraparound
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i * kMix);
    ring.close();
  });
  std::uint64_t sum = 0, xr = 0, count = 0;
  std::uint64_t prev_index = 0;
  bool in_order = true;
  while (auto v = ring.pop()) {
    sum += *v;
    xr ^= *v;
    // FIFO check: items were pushed as i * kMix with i ascending.
    if (count > 0 && *v != (prev_index + 1) * kMix) in_order = false;
    prev_index = count;
    ++count;
  }
  producer.join();

  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, want_sum);
  EXPECT_EQ(xr, want_xor);
  EXPECT_TRUE(in_order);
}

}  // namespace
}  // namespace zpm::util
