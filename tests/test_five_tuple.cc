// Flow identity: direction handling and hashing.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/five_tuple.h"

namespace zpm::net {
namespace {

FiveTuple make() {
  return FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(170, 114, 0, 5), 40000, 8801, 17};
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  FiveTuple t = make();
  FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.protocol, t.protocol);
  EXPECT_NE(t, r);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, CanonicalIsDirectionIndependent) {
  FiveTuple t = make();
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
}

TEST(FiveTuple, HashAndEqualityInSets) {
  std::unordered_set<FiveTuple> set;
  set.insert(make().canonical());
  set.insert(make().reversed().canonical());
  EXPECT_EQ(set.size(), 1u);
  FiveTuple other = make();
  other.src_port = 40001;
  set.insert(other.canonical());
  EXPECT_EQ(set.size(), 2u);
}

TEST(FiveTuple, CanonicalFlowHashParityAcrossAllCallers) {
  // One hash, four consumers: std::hash<FiveTuple> (analyzer maps,
  // stream keys), the dispatch/shard selector, the sketch tier and the
  // flat flow tables all key off net::canonical_flow_hash. Any drift
  // between the overloads silently breaks the "one hash per packet"
  // regime and the shard-routing/tier-routing agreement, so pin them to
  // each other here.
  for (std::uint32_t n = 0; n < 1000; ++n) {
    FiveTuple t = make();
    t.src_ip = Ipv4Addr(10, 0, static_cast<std::uint8_t>(n >> 8),
                        static_cast<std::uint8_t>(n));
    t.src_port = static_cast<std::uint16_t>(1024 + n);
    t = t.canonical();

    const PackedFlowKey key(t);
    const std::uint64_t from_parts = canonical_flow_hash(key.k1, key.k2);
    EXPECT_EQ(canonical_flow_hash(key), from_parts);
    EXPECT_EQ(canonical_flow_hash(t), from_parts);
    EXPECT_EQ(std::hash<FiveTuple>{}(t), from_parts);
    // Packing is lossless: the sketch's heavy hitters report real flows.
    EXPECT_EQ(key.unpack(), t);
  }
}

TEST(PackedFlowKey, EmptyMarkerNeverCollidesWithRealFlows) {
  // k2 == 0 marks free slots in the flat tables; a real flow always has
  // a nonzero protocol byte, so no canonical 5-tuple can pack to it.
  EXPECT_TRUE(PackedFlowKey{}.empty());
  FiveTuple t = make().canonical();
  EXPECT_FALSE(PackedFlowKey(t).empty());
}

TEST(FiveTuple, ToStringMentionsProtocol) {
  EXPECT_NE(make().to_string().find("udp"), std::string::npos);
  FiveTuple t = make();
  t.protocol = 6;
  EXPECT_NE(t.to_string().find("tcp"), std::string::npos);
}

}  // namespace
}  // namespace zpm::net
