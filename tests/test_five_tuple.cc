// Flow identity: direction handling and hashing.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/five_tuple.h"

namespace zpm::net {
namespace {

FiveTuple make() {
  return FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(170, 114, 0, 5), 40000, 8801, 17};
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  FiveTuple t = make();
  FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.protocol, t.protocol);
  EXPECT_NE(t, r);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, CanonicalIsDirectionIndependent) {
  FiveTuple t = make();
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
}

TEST(FiveTuple, HashAndEqualityInSets) {
  std::unordered_set<FiveTuple> set;
  set.insert(make().canonical());
  set.insert(make().reversed().canonical());
  EXPECT_EQ(set.size(), 1u);
  FiveTuple other = make();
  other.src_port = 40001;
  set.insert(other.canonical());
  EXPECT_EQ(set.size(), 2u);
}

TEST(FiveTuple, ToStringMentionsProtocol) {
  EXPECT_NE(make().to_string().find("udp"), std::string::npos);
  FiveTuple t = make();
  t.protocol = 6;
  EXPECT_NE(t.to_string().find("tcp"), std::string::npos);
}

}  // namespace
}  // namespace zpm::net
