// STUN (RFC 5389) message handling — the trigger for P2P detection.
#include <gtest/gtest.h>

#include "proto/stun.h"

namespace zpm::proto {
namespace {

std::array<std::uint8_t, 12> txn() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

TEST(Stun, BindingRequestRoundTrip) {
  auto msg = make_binding_request(txn());
  util::ByteWriter w;
  msg.serialize(w);
  EXPECT_EQ(w.size(), 20u);  // header only
  auto parsed = StunMessage::parse(w.view());
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_request());
  EXPECT_FALSE(parsed->is_success_response());
  EXPECT_EQ(parsed->transaction_id, txn());
}

TEST(Stun, BindingResponseCarriesXorMappedAddress) {
  net::Ipv4Addr ip(192, 168, 1, 50);
  auto msg = make_binding_response(txn(), ip, 54321);
  util::ByteWriter w;
  msg.serialize(w);
  auto parsed = StunMessage::parse(w.view());
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_success_response());
  auto mapped = parsed->xor_mapped_address();
  ASSERT_TRUE(mapped);
  EXPECT_EQ(mapped->first, ip);
  EXPECT_EQ(mapped->second, 54321);
}

TEST(Stun, XorActuallyObfuscates) {
  // The raw attribute bytes must differ from the plain address (that is
  // the point of XOR-MAPPED-ADDRESS).
  net::Ipv4Addr ip(10, 0, 0, 1);
  auto msg = make_binding_response(txn(), ip, 8080);
  const auto* attr = msg.find(kStunAttrXorMappedAddress);
  ASSERT_NE(attr, nullptr);
  std::uint32_t raw = (std::uint32_t{attr->value[4]} << 24) |
                      (std::uint32_t{attr->value[5]} << 16) |
                      (std::uint32_t{attr->value[6]} << 8) | attr->value[7];
  EXPECT_NE(raw, ip.value());
}

TEST(Stun, RejectsBadCookieAndTopBits) {
  auto msg = make_binding_request(txn());
  util::ByteWriter w;
  msg.serialize(w);
  auto bytes = w.take();
  bytes[4] ^= 0xff;  // corrupt magic cookie
  EXPECT_FALSE(StunMessage::parse(bytes));
  EXPECT_FALSE(looks_like_stun(bytes));

  util::ByteWriter w2;
  msg.serialize(w2);
  auto bytes2 = w2.take();
  bytes2[0] |= 0xc0;  // top bits must be zero
  EXPECT_FALSE(StunMessage::parse(bytes2));
}

TEST(Stun, RejectsBadLength) {
  auto msg = make_binding_request(txn());
  util::ByteWriter w;
  msg.serialize(w);
  auto bytes = w.take();
  bytes[3] = 3;  // not a multiple of 4
  EXPECT_FALSE(StunMessage::parse(bytes));
}

TEST(Stun, UnknownAttributesRoundTripAndPad) {
  StunMessage msg = make_binding_request(txn());
  StunAttribute attr;
  attr.type = kStunAttrSoftware;
  attr.value = {'z', 'o', 'o', 'm', '!'};  // 5 bytes -> 3 pad bytes
  msg.attributes.push_back(attr);
  util::ByteWriter w;
  msg.serialize(w);
  EXPECT_EQ(w.size() % 4, 0u);
  auto parsed = StunMessage::parse(w.view());
  ASSERT_TRUE(parsed);
  const auto* found = parsed->find(kStunAttrSoftware);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value.size(), 5u);  // unpadded value exposed
}

TEST(Stun, ValidatesAgreesWithParseEverywhere) {
  // The parallel dispatcher's STUN-candidate path relies on the
  // allocation-free validates() accepting exactly what parse() accepts:
  // any divergence silently breaks serial/sharded bit-identity.
  auto agree = [](std::span<const std::uint8_t> bytes, const char* what) {
    EXPECT_EQ(StunMessage::validates(bytes), StunMessage::parse(bytes).has_value())
        << what;
  };

  std::vector<std::vector<std::uint8_t>> corpus;
  {
    util::ByteWriter w;
    make_binding_request(txn()).serialize(w);
    corpus.push_back(w.take());
  }
  {
    util::ByteWriter w;
    make_binding_response(txn(), net::Ipv4Addr(192, 168, 1, 50), 54321)
        .serialize(w);
    corpus.push_back(w.take());
  }
  {
    StunMessage msg = make_binding_request(txn());
    StunAttribute attr;
    attr.type = kStunAttrSoftware;
    attr.value = {'z', 'o', 'o', 'm', '!'};  // forces 3 pad bytes
    msg.attributes.push_back(attr);
    util::ByteWriter w;
    msg.serialize(w);
    corpus.push_back(w.take());
  }

  for (const auto& bytes : corpus) {
    ASSERT_TRUE(StunMessage::validates(bytes));
    // Every prefix: truncation anywhere must be judged identically.
    for (std::size_t n = 0; n <= bytes.size(); ++n)
      agree(std::span<const std::uint8_t>(bytes).first(n), "prefix");
    // Every single-byte corruption (covers type top bits, length field,
    // magic cookie, attribute TLVs and padding).
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      auto mutated = bytes;
      mutated[i] ^= 0xff;
      agree(mutated, "xor byte");
      mutated = bytes;
      mutated[i] = 0xff;
      agree(mutated, "set byte");
    }
    // Trailing garbage beyond the declared length.
    auto longer = bytes;
    longer.insert(longer.end(), 8, 0xab);
    agree(longer, "trailing bytes");
  }

  // An attribute whose padded length overshoots the message end: the
  // value fits but the pad does not.
  {
    StunMessage msg = make_binding_request(txn());
    StunAttribute attr;
    attr.type = kStunAttrSoftware;
    attr.value = {'a', 'b', 'c', 'd', 'e'};
    msg.attributes.push_back(attr);
    util::ByteWriter w;
    msg.serialize(w);
    auto bytes = w.take();
    bytes.resize(bytes.size() - 3);  // drop exactly the padding
    bytes[3] = static_cast<std::uint8_t>(bytes.size() - 20);
    agree(bytes, "pad overshoot");
  }
  agree({}, "empty");
}

TEST(Stun, LooksLikeStunProbe) {
  auto msg = make_binding_request(txn());
  util::ByteWriter w;
  msg.serialize(w);
  EXPECT_TRUE(looks_like_stun(w.view()));
  EXPECT_FALSE(looks_like_stun(std::vector<std::uint8_t>(10)));
}

}  // namespace
}  // namespace zpm::proto
