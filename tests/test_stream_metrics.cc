// Per-stream metric engine: per-second records combining all of §5.
#include <gtest/gtest.h>

#include "metrics/stream_metrics.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

zoom::MediaEncap video_encap(std::uint16_t frame_seq, std::uint8_t pkts) {
  zoom::MediaEncap e;
  e.type = static_cast<std::uint8_t>(zoom::MediaEncapType::Video);
  e.frame_sequence = frame_seq;
  e.packets_in_frame = pkts;
  return e;
}

proto::RtpHeader rtp(std::uint8_t pt, std::uint16_t seq, std::uint32_t ts,
                     bool marker, std::uint32_t ssrc = 0x42) {
  proto::RtpHeader h;
  h.payload_type = pt;
  h.sequence = seq;
  h.timestamp = ts;
  h.marker = marker;
  h.ssrc = ssrc;
  return h;
}

/// Feeds `seconds` seconds of a 20 fps single-packet-frame video stream.
void feed_video(StreamMetrics& m, double start_s, double seconds,
                std::uint32_t bytes_per_frame = 1000) {
  std::uint16_t seq = 0;
  std::uint32_t ts = 0;
  int frames = static_cast<int>(seconds * 20);
  for (int i = 0; i < frames; ++i) {
    Timestamp t = Timestamp::from_seconds(start_s + i * 0.05);
    auto encap = video_encap(static_cast<std::uint16_t>(i), 1);
    m.on_media_packet(t, encap, rtp(zoom::pt::kVideoMain, seq++, ts, true),
                      bytes_per_frame, bytes_per_frame + 36);
    ts += 4500;  // 90kHz * 0.05s
  }
}

TEST(StreamMetrics, PerSecondBinsHaveExpectedRatesAndSizes) {
  StreamMetrics m(zoom::MediaKind::Video, 0x42, default_config(zoom::MediaKind::Video));
  feed_video(m, 100.0, 5.0);
  m.finish();
  const auto& secs = m.seconds();
  ASSERT_EQ(secs.size(), 5u);
  for (const auto& s : secs) {
    EXPECT_EQ(s.kind, zoom::MediaKind::Video);
    EXPECT_EQ(s.ssrc, 0x42u);
    EXPECT_EQ(s.packets, 20u);
    EXPECT_EQ(s.frames_completed, 20u);
    EXPECT_DOUBLE_EQ(s.frame_rate_fps, 20.0);
    EXPECT_EQ(s.media_bytes, 20'000u);
    EXPECT_DOUBLE_EQ(s.media_bitrate_bps(), 160'000.0);
    EXPECT_GT(s.transport_bytes, s.media_bytes);
    ASSERT_TRUE(s.avg_frame_bytes);
    EXPECT_DOUBLE_EQ(*s.avg_frame_bytes, 1000.0);
  }
  // Perfectly paced stream: encoder fps = 20, jitter ~ 0.
  ASSERT_TRUE(secs[2].encoder_fps);
  EXPECT_NEAR(*secs[2].encoder_fps, 20.0, 1e-9);
  ASSERT_TRUE(secs[4].jitter_ms);
  EXPECT_NEAR(*secs[4].jitter_ms, 0.0, 1e-6);
  EXPECT_EQ(m.media_packets(), 100u);
  EXPECT_EQ(m.frames().size(), 100u);
}

TEST(StreamMetrics, GapSecondsEmittedAsZeroFrameBins) {
  // Screen-share-like stream: active, silent for 3 s, active again. The
  // silent seconds must appear as zero-frame-rate samples (the ~15%
  // zero-fps screen share bins of §6.2).
  StreamMetrics m(zoom::MediaKind::ScreenShare, 0x7,
                  default_config(zoom::MediaKind::ScreenShare));
  zoom::MediaEncap e;
  e.type = static_cast<std::uint8_t>(zoom::MediaEncapType::ScreenShare);
  m.on_media_packet(Timestamp::from_seconds(10.1), e,
                    rtp(zoom::pt::kScreenShareMain, 1, 1000, true, 0x7), 400, 430);
  m.on_media_packet(Timestamp::from_seconds(14.2), e,
                    rtp(zoom::pt::kScreenShareMain, 2, 350000, true, 0x7), 400, 430);
  m.finish();
  const auto& secs = m.seconds();
  ASSERT_EQ(secs.size(), 5u);  // seconds 10..14
  EXPECT_EQ(secs[1].packets, 0u);
  EXPECT_DOUBLE_EQ(secs[1].frame_rate_fps, 0.0);
  EXPECT_EQ(secs[2].packets, 0u);
}

TEST(StreamMetrics, FecSubstreamExcludedFromFramesButCounted) {
  StreamMetrics m(zoom::MediaKind::Video, 0x42, default_config(zoom::MediaKind::Video));
  Timestamp t = Timestamp::from_seconds(50.0);
  auto encap = video_encap(1, 1);
  m.on_media_packet(t, encap, rtp(zoom::pt::kVideoMain, 10, 9000, true), 1000, 1036);
  // FEC packet: same timestamp, own sequence space (PT 110).
  m.on_media_packet(t + Duration::millis(1), encap,
                    rtp(zoom::pt::kFec, 3, 9000, false), 800, 836);
  m.finish();
  ASSERT_EQ(m.seconds().size(), 1u);
  const auto& s = m.seconds()[0];
  EXPECT_EQ(s.packets, 2u);
  EXPECT_EQ(s.frames_completed, 1u);  // FEC doesn't form frames
  EXPECT_EQ(s.media_bytes, 1800u);
  // Both sub-streams tracked separately for loss.
  EXPECT_EQ(m.substreams().size(), 2u);
  EXPECT_TRUE(m.substreams().contains(zoom::pt::kFec));
}

TEST(StreamMetrics, AudioFramesArePackets) {
  StreamMetrics m(zoom::MediaKind::Audio, 0x9, default_config(zoom::MediaKind::Audio));
  zoom::MediaEncap e;
  e.type = static_cast<std::uint8_t>(zoom::MediaEncapType::Audio);
  Timestamp t = Timestamp::from_seconds(20.0);
  std::uint32_t ts = 0;
  for (int i = 0; i < 50; ++i) {
    m.on_media_packet(t + Duration::millis(20 * i), e,
                      rtp(zoom::pt::kAudioSpeaking, static_cast<std::uint16_t>(i),
                          ts, true, 0x9),
                      90, 120);
    ts += 960;  // 20 ms at 48 kHz
  }
  m.finish();
  ASSERT_GE(m.seconds().size(), 1u);
  EXPECT_EQ(m.seconds()[0].frames_completed, 50u);
  ASSERT_TRUE(m.jitter_ms());
  EXPECT_NEAR(*m.jitter_ms(), 0.0, 1e-6);
}

TEST(StreamMetrics, LossCountersSurfacePerBin) {
  StreamMetrics m(zoom::MediaKind::Video, 0x1, default_config(zoom::MediaKind::Video));
  Timestamp t = Timestamp::from_seconds(30.0);
  auto encap = video_encap(1, 1);
  m.on_media_packet(t, encap, rtp(zoom::pt::kVideoMain, 1, 100, true), 10, 40);
  m.on_media_packet(t + Duration::millis(10), encap,
                    rtp(zoom::pt::kVideoMain, 1, 100, true), 10, 40);  // dup
  m.on_media_packet(t + Duration::millis(20), encap,
                    rtp(zoom::pt::kVideoMain, 3, 200, true), 10, 40);  // hole at 2
  m.on_media_packet(t + Duration::millis(30), encap,
                    rtp(zoom::pt::kVideoMain, 2, 150, true), 10, 40);  // reorder
  m.finish();
  ASSERT_EQ(m.seconds().size(), 1u);
  EXPECT_EQ(m.seconds()[0].duplicates, 1u);
  EXPECT_EQ(m.seconds()[0].reordered, 1u);
  auto total = m.total_loss();
  EXPECT_EQ(total.duplicates, 1u);
  EXPECT_EQ(total.reordered, 1u);
  EXPECT_EQ(total.gap_packets, 0u);
}

TEST(StreamMetrics, RttSamplesAverageIntoBin) {
  StreamMetrics m(zoom::MediaKind::Video, 0x1, default_config(zoom::MediaKind::Video));
  feed_video(m, 40.0, 1.0);
  m.on_rtt_sample(RttSample{Timestamp::from_seconds(40.2), Duration::millis(20)});
  m.on_rtt_sample(RttSample{Timestamp::from_seconds(40.7), Duration::millis(40)});
  m.finish();
  ASSERT_EQ(m.seconds().size(), 1u);
  ASSERT_TRUE(m.seconds()[0].latency_ms);
  EXPECT_DOUBLE_EQ(*m.seconds()[0].latency_ms, 30.0);
  ASSERT_TRUE(m.mean_latency_ms());
  EXPECT_DOUBLE_EQ(*m.mean_latency_ms(), 30.0);
}

TEST(StreamMetrics, FrameSubsamplingKeepsEveryNth) {
  auto config = default_config(zoom::MediaKind::Video);
  config.frame_sample_every = 4;
  StreamMetrics m(zoom::MediaKind::Video, 0x1, config);
  feed_video(m, 60.0, 2.0);  // 40 frames
  m.finish();
  EXPECT_EQ(m.frames().size(), 10u);
  EXPECT_EQ(m.seconds()[0].frames_completed, 20u);  // counting unaffected
}


TEST(StreamMetrics, TalkActivityFromPayloadTypes) {
  // §4.2.3: PT 112 while talking, PT 99 silence keep-alives — the
  // talk-time signal per second.
  StreamMetrics m(zoom::MediaKind::Audio, 0x3, default_config(zoom::MediaKind::Audio));
  zoom::MediaEncap e;
  e.type = static_cast<std::uint8_t>(zoom::MediaEncapType::Audio);
  std::uint16_t seq = 0;
  std::uint32_t ts = 0;
  // Second 0: talking (50 pps of PT 112).
  for (int i = 0; i < 50; ++i) {
    m.on_media_packet(Timestamp::from_seconds(100.0 + i * 0.02), e,
                      rtp(zoom::pt::kAudioSpeaking, seq++, ts += 960, true, 0x3),
                      90, 120);
  }
  // Second 1: silent (sparse PT 99).
  for (int i = 0; i < 6; ++i) {
    m.on_media_packet(Timestamp::from_seconds(101.0 + i * 0.16), e,
                      rtp(zoom::pt::kAudioSilent, seq++, ts += 7680, true, 0x3),
                      40, 70);
  }
  m.finish();
  ASSERT_EQ(m.seconds().size(), 2u);
  EXPECT_TRUE(m.seconds()[0].talking());
  EXPECT_EQ(m.seconds()[0].talk_packets, 50u);
  EXPECT_FALSE(m.seconds()[1].talking());
  EXPECT_EQ(m.seconds()[1].silent_packets, 6u);
  EXPECT_EQ(m.talk_seconds(), 1u);
  EXPECT_EQ(m.talk_packets_total(), 50u);
}


TEST(StreamMetrics, SrCountersQuantifyUpstreamLoss) {
  // The sender's RTCP SR packet counter is ground truth: packets lost
  // UPSTREAM of the monitor (which sequence numbers alone cannot prove,
  // §5.5) appear as the gap between the SR delta and what we observed.
  StreamMetrics m(zoom::MediaKind::Video, 0x42, default_config(zoom::MediaKind::Video));
  auto encap = video_encap(1, 1);
  // SR before any media: sender at packet 1000.
  m.on_sender_report(Timestamp::from_seconds(100.0), 90000, 1000);
  // Sender emits 100 packets; 10 never reach the monitor at all.
  std::uint16_t seq = 0;
  std::uint32_t ts = 90000;
  for (int i = 0; i < 100; ++i) {
    ++seq;
    ts += 4500;
    if (i % 10 == 3) continue;  // lost upstream, never retransmitted
    m.on_media_packet(Timestamp::from_seconds(100.0 + i * 0.05), encap,
                      rtp(zoom::pt::kVideoMain, seq, ts, true), 500, 536);
  }
  m.on_sender_report(Timestamp::from_seconds(105.0), ts, 1100);
  m.finish();
  ASSERT_TRUE(m.sr_expected_packets());
  EXPECT_EQ(*m.sr_expected_packets(), 100u);
  ASSERT_TRUE(m.upstream_loss_estimate());
  EXPECT_EQ(*m.upstream_loss_estimate(), 10u);
}

TEST(StreamMetrics, SrLossEstimateNeedsTwoReports) {
  StreamMetrics m(zoom::MediaKind::Video, 0x42, default_config(zoom::MediaKind::Video));
  EXPECT_FALSE(m.upstream_loss_estimate());
  m.on_sender_report(Timestamp::from_seconds(1.0), 0, 50);
  EXPECT_FALSE(m.upstream_loss_estimate());
}

TEST(StreamMetrics, SrLossZeroWhenEverythingArrives) {
  StreamMetrics m(zoom::MediaKind::Video, 0x42, default_config(zoom::MediaKind::Video));
  auto encap = video_encap(1, 1);
  m.on_sender_report(Timestamp::from_seconds(10.0), 0, 0);
  for (int i = 0; i < 50; ++i)
    m.on_media_packet(Timestamp::from_seconds(10.0 + i * 0.05), encap,
                      rtp(zoom::pt::kVideoMain, static_cast<std::uint16_t>(i),
                          static_cast<std::uint32_t>(i) * 4500, true),
                      500, 536);
  m.on_sender_report(Timestamp::from_seconds(13.0), 50 * 4500, 50);
  EXPECT_EQ(m.upstream_loss_estimate().value_or(99), 0u);
}

TEST(StreamMetrics, RtcpBytesCountTowardTransportOnly) {
  StreamMetrics m(zoom::MediaKind::Video, 0x1, default_config(zoom::MediaKind::Video));
  m.on_rtcp_packet(Timestamp::from_seconds(70.5), 60);
  m.finish();
  ASSERT_EQ(m.seconds().size(), 1u);
  EXPECT_EQ(m.seconds()[0].transport_bytes, 60u);
  EXPECT_EQ(m.seconds()[0].media_bytes, 0u);
}

}  // namespace
}  // namespace zpm::metrics
