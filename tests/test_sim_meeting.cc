// Meeting simulator: wire behaviour, ordering, mode switches, QoS feed.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "sim/meeting.h"
#include "zoom/classify.h"

namespace zpm::sim {
namespace {

using util::Duration;
using util::Timestamp;

ParticipantConfig participant(std::uint8_t host, bool on_campus) {
  ParticipantConfig p;
  p.ip = on_campus ? net::Ipv4Addr(10, 8, 0, host) : net::Ipv4Addr(98, 0, 0, host);
  p.on_campus = on_campus;
  return p;
}

MeetingConfig two_party(std::uint64_t seed, double seconds = 30.0) {
  MeetingConfig mc;
  mc.seed = seed;
  mc.start = Timestamp::from_seconds(1000);
  mc.duration = Duration::seconds(seconds);
  mc.participants = {participant(1, true), participant(2, true)};
  return mc;
}

TEST(MeetingSim, PacketsAreTimestampOrderedAndInWindow) {
  MeetingSim sim(two_party(1));
  Timestamp prev = Timestamp::from_micros(0);
  std::size_t count = 0;
  while (auto pkt = sim.next_packet()) {
    EXPECT_GE(pkt->ts, prev) << "packet " << count << " out of order";
    prev = pkt->ts;
    EXPECT_GE(pkt->ts, Timestamp::from_seconds(1000));
    EXPECT_LT(pkt->ts, Timestamp::from_seconds(1033));  // + rtx slack
    ++count;
  }
  EXPECT_GT(count, 2000u);  // two clients' media for 30 s
  EXPECT_EQ(sim.stats().monitor_packets, count);
}

TEST(MeetingSim, ServerPacketsDissectAsZoom) {
  MeetingSim sim(two_party(2, 10.0));
  std::size_t media = 0, rtcp = 0, other = 0, tcp = 0;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    ASSERT_TRUE(view);
    if (view->l4 == net::L4Proto::Tcp) {
      ++tcp;
      continue;
    }
    ASSERT_EQ(view->udp.dst_port == zoom::kServerMediaPort ||
                  view->udp.src_port == zoom::kServerMediaPort,
              true);
    auto zp = zoom::dissect(view->l4_payload, zoom::Transport::ServerBased);
    ASSERT_TRUE(zp);
    switch (zp->category) {
      case zoom::PacketCategory::Media: ++media; break;
      case zoom::PacketCategory::Rtcp: ++rtcp; break;
      default: ++other; break;
    }
  }
  EXPECT_GT(media, 500u);
  EXPECT_GT(rtcp, 10u);   // ~1/s per stream per leg
  EXPECT_GT(other, 10u);  // unknown/control packets
  EXPECT_GT(tcp, 5u);     // control connection
  // The >90% decodable property of Table 2.
  double known = static_cast<double>(media + rtcp);
  EXPECT_GT(known / (known + static_cast<double>(other)), 0.80);
}

TEST(MeetingSim, BothDirectionsPresentWithSfuFlags) {
  MeetingSim sim(two_party(3, 10.0));
  std::size_t to_sfu = 0, from_sfu = 0;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    if (!view || view->l4 != net::L4Proto::Udp) continue;
    auto zp = zoom::dissect(view->l4_payload, zoom::Transport::ServerBased);
    if (!zp || !zp->sfu) continue;
    if (zp->sfu->is_from_sfu()) {
      ++from_sfu;
      EXPECT_EQ(view->udp.src_port, zoom::kServerMediaPort);
    } else {
      ++to_sfu;
      EXPECT_EQ(view->udp.dst_port, zoom::kServerMediaPort);
    }
  }
  EXPECT_GT(to_sfu, 300u);
  EXPECT_GT(from_sfu, 300u);
}

TEST(MeetingSim, P2pSwitchEmitsStunThenDirectFlow) {
  MeetingConfig mc = two_party(4, 40.0);
  mc.participants[1] = participant(9, false);  // campus <-> off-campus
  mc.p2p_switch_after = Duration::seconds(10.0);
  MeetingSim sim(mc);
  bool saw_stun = false;
  std::size_t p2p_media = 0;
  Timestamp first_stun, first_p2p;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    if (!view || view->l4 != net::L4Proto::Udp) continue;
    if (view->udp.dst_port == 3478 || view->udp.src_port == 3478) {
      if (!saw_stun) first_stun = view->ts;
      saw_stun = true;
      EXPECT_TRUE(proto::looks_like_stun(view->l4_payload));
      continue;
    }
    bool server_flow = view->udp.dst_port == zoom::kServerMediaPort ||
                       view->udp.src_port == zoom::kServerMediaPort;
    if (!server_flow) {
      if (p2p_media == 0) first_p2p = view->ts;
      ++p2p_media;
      auto zp = zoom::dissect(view->l4_payload, zoom::Transport::P2P);
      if (zp) EXPECT_FALSE(zp->sfu);
    }
  }
  EXPECT_TRUE(saw_stun);
  EXPECT_GT(p2p_media, 200u);
  EXPECT_LT(first_stun, first_p2p);  // STUN strictly precedes P2P media
  EXPECT_EQ(sim.stats().stun_packets, 6u);  // 3 req/resp pairs, campus side
}

TEST(MeetingSim, ThirdJoinRevertsToServer) {
  MeetingConfig mc = two_party(5, 40.0);
  mc.p2p_switch_after = Duration::seconds(8.0);
  auto third = participant(3, true);
  third.join_after = Duration::seconds(20.0);
  mc.participants.push_back(third);
  MeetingSim sim(mc);
  bool p2p_seen = false;
  Timestamp last_p2p, last_server;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    if (!view || view->l4 != net::L4Proto::Udp) continue;
    if (view->udp.dst_port == 3478 || view->udp.src_port == 3478) continue;
    bool server_flow = view->udp.dst_port == zoom::kServerMediaPort ||
                       view->udp.src_port == zoom::kServerMediaPort;
    if (server_flow) {
      last_server = view->ts;
    } else {
      p2p_seen = true;
      last_p2p = view->ts;
    }
  }
  EXPECT_TRUE(p2p_seen);
  // P2P traffic stops around the third join; server traffic continues
  // to the end ("where it then stays", §3).
  EXPECT_LT(last_p2p, Timestamp::from_seconds(1000 + 22));
  EXPECT_GT(last_server, Timestamp::from_seconds(1000 + 35));
}

TEST(MeetingSim, QosSamplesAtOneHertz) {
  MeetingConfig mc = two_party(6, 20.0);
  mc.collect_qos = true;
  std::vector<QosSample> qos;
  run_meeting(mc, &qos);
  // Two receivers, ~20 samples each (minus startup).
  EXPECT_GT(qos.size(), 25u);
  EXPECT_LE(qos.size(), 42u);
  for (const auto& s : qos) {
    EXPECT_GT(s.frame_rate, 0.0);
    EXPECT_LT(s.frame_rate, 50.0);  // bursty delivery can exceed encoder fps
    EXPECT_GT(s.latency_ms, 5.0);
    EXPECT_LT(s.latency_ms, 200.0);
    EXPECT_GT(s.jitter_ms, 0.0);
    EXPECT_LT(s.jitter_ms, 2.0);  // Zoom's implausibly low jitter (§5.4)
  }
}

TEST(MeetingSim, LossyPathProducesRetransmissions) {
  MeetingConfig mc = two_party(7, 20.0);
  for (auto& p : mc.participants) p.wan_path.loss = 0.02;
  MeetingSim sim(mc);
  while (sim.next_packet()) {
  }
  EXPECT_GT(sim.stats().drops, 20u);
  EXPECT_GT(sim.stats().retransmissions, 10u);
}

TEST(MeetingSim, DeterministicForFixedSeed) {
  auto run = [] {
    MeetingSim sim(two_party(42, 8.0));
    std::uint64_t packets = 0, bytes = 0;
    while (auto pkt = sim.next_packet()) {
      ++packets;
      bytes += pkt->data.size();
    }
    return std::pair{packets, bytes};
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.first, 0u);
}

TEST(MeetingSim, OffCampusOnlyParticipantsInvisible) {
  MeetingConfig mc = two_party(8, 10.0);
  mc.participants[0] = participant(7, false);
  mc.participants[1] = participant(8, false);
  mc.with_tcp_control = true;  // TCP only for campus participants
  MeetingSim sim(mc);
  std::size_t count = 0;
  while (sim.next_packet()) ++count;
  EXPECT_EQ(count, 0u);  // nothing crosses the campus border
}


TEST(MeetingSim, ParticipantLeavesEarly) {
  MeetingConfig mc = two_party(10, 40.0);
  mc.participants[1].leave_after = Duration::seconds(15.0);
  MeetingSim sim(mc);
  Timestamp last_from_leaver;
  Timestamp last_any;
  net::Ipv4Addr leaver = mc.participants[1].ip;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    if (!view) continue;
    last_any = view->ts;
    if (view->ip.src == leaver) last_from_leaver = view->ts;
  }
  // The leaver's uplink stops around t+15; the meeting continues.
  EXPECT_LT(last_from_leaver, Timestamp::from_seconds(1000 + 18));
  EXPECT_GT(last_any, Timestamp::from_seconds(1000 + 35));
}

TEST(MeetingSim, NominalRttReflectsPathConfig) {
  MeetingConfig mc = two_party(9, 5.0);
  mc.participants[0].access_path.base_delay_ms = 2.0;
  mc.participants[0].wan_path.base_delay_ms = 18.0;
  MeetingSim sim(mc);
  EXPECT_NEAR(sim.nominal_rtt_ms(0), 40.0, 1e-9);
}

}  // namespace
}  // namespace zpm::sim
