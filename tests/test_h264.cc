// H.264 FU-A NAL indication parsing (precedes encrypted video payload).
#include <gtest/gtest.h>

#include "proto/h264.h"

namespace zpm::proto {
namespace {

TEST(H264, NalHeaderRoundTrip) {
  NalHeader h{false, 2, kNalTypeFuA};
  EXPECT_EQ(NalHeader::from_byte(h.to_byte()).type, kNalTypeFuA);
  EXPECT_EQ(NalHeader::from_byte(h.to_byte()).nri, 2);
  EXPECT_FALSE(NalHeader::from_byte(h.to_byte()).forbidden);
}

TEST(H264, FuHeaderRoundTrip) {
  FuHeader f{true, false, 5};
  auto back = FuHeader::from_byte(f.to_byte());
  EXPECT_TRUE(back.start);
  EXPECT_FALSE(back.end);
  EXPECT_EQ(back.nal_type, 5);
}

TEST(H264, ParseFuA) {
  std::uint8_t payload[] = {NalHeader{false, 3, kNalTypeFuA}.to_byte(),
                            FuHeader{false, true, 1}.to_byte(), 0xde, 0xad};
  auto fu = parse_fu_a(payload);
  ASSERT_TRUE(fu);
  EXPECT_EQ(fu->indicator.nri, 3);
  EXPECT_TRUE(fu->fu.end);
  EXPECT_EQ(fu->fu.nal_type, 1);
}

TEST(H264, RejectsNonFuAAndForbiddenBit) {
  std::uint8_t single_nal[] = {NalHeader{false, 2, 5}.to_byte(), 0x00};
  EXPECT_FALSE(parse_fu_a(single_nal));
  std::uint8_t forbidden[] = {NalHeader{true, 2, kNalTypeFuA}.to_byte(), 0x00};
  EXPECT_FALSE(parse_fu_a(forbidden));
  std::uint8_t tiny[] = {0x7c};
  EXPECT_FALSE(parse_fu_a(std::span<const std::uint8_t>(tiny, 1)));
}

}  // namespace
}  // namespace zpm::proto
