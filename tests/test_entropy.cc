// Entropy-based header analysis (§4.2): the methodology must rediscover
// Zoom's format from raw bytes alone.
#include <gtest/gtest.h>

#include "entropy/analysis.h"
#include "sim/wire.h"

namespace zpm::entropy {
namespace {

/// Builds a P2P-style flow: interleaved audio/video/screen-share media
/// encapsulation payloads, exactly what a captured UDP flow contains.
std::vector<std::vector<std::uint8_t>> zoom_flow(int packets, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> out;
  std::uint16_t vseq = 100, aseq = 5000, sseq = 800;
  std::uint32_t vts = 900'000, ats = 48'000, sts = 50'000;
  for (int i = 0; i < packets; ++i) {
    sim::MediaPacketSpec spec;
    double roll = rng.uniform();
    if (roll < 0.60) {
      spec.encap_type = zoom::MediaEncapType::Video;
      spec.payload_type = zoom::pt::kVideoMain;
      spec.rtp_seq = vseq++;
      if (i % 3 == 0) vts += 3000;
      spec.rtp_timestamp = vts;
      spec.packets_in_frame = 3;
      spec.ssrc = 0x1001;
      spec.payload_bytes = 600;
    } else if (roll < 0.90) {
      spec.encap_type = zoom::MediaEncapType::Audio;
      spec.payload_type = zoom::pt::kAudioSpeaking;
      spec.rtp_seq = aseq++;
      ats += 960;
      spec.rtp_timestamp = ats;
      spec.ssrc = 0x1002;
      spec.payload_bytes = 90;
    } else {
      spec.encap_type = zoom::MediaEncapType::ScreenShare;
      spec.payload_type = zoom::pt::kScreenShareMain;
      spec.rtp_seq = sseq++;
      sts += 9000;
      spec.rtp_timestamp = sts;
      spec.ssrc = 0x1003;
      spec.payload_bytes = 300;
    }
    spec.media_encap_seq = static_cast<std::uint16_t>(i);
    spec.media_encap_ts = spec.rtp_timestamp;
    out.push_back(sim::build_media_payload(spec, rng));
  }
  return out;
}

TEST(Classify, RandomIdentifierCounterConstant) {
  util::Rng rng(1);
  FieldSequence random{0, 4, {}};
  FieldSequence ident{0, 4, {}};
  FieldSequence counter{0, 2, {}};
  FieldSequence constant{0, 1, {}};
  std::uint64_t c = 60000;  // wraps
  for (int i = 0; i < 400; ++i) {
    random.values.push_back(rng.next_u32());
    ident.values.push_back(i % 3 == 0 ? 0x1001 : 0x1002);
    c = (c + 7) & 0xffff;
    counter.values.push_back(c);
    constant.values.push_back(5);
  }
  EXPECT_EQ(classify_sequence(random).cls, FieldClass::Random);
  EXPECT_EQ(classify_sequence(ident).cls, FieldClass::Identifier);
  EXPECT_EQ(classify_sequence(counter).cls, FieldClass::Counter);
  EXPECT_EQ(classify_sequence(constant).cls, FieldClass::Constant);
  EXPECT_STREQ(field_class_name(FieldClass::Counter), "counter");
}

TEST(Classify, TooFewSamplesIsUnknown) {
  FieldSequence tiny{0, 1, {1, 2}};
  EXPECT_EQ(classify_sequence(tiny).cls, FieldClass::Unknown);
}

TEST(Extract, SequencesCoverWidthsAndOffsets) {
  auto payloads = zoom_flow(64, 2);
  auto seqs = extract_sequences(payloads, 16);
  bool found_1 = false, found_2 = false, found_4 = false;
  for (const auto& s : seqs) {
    if (s.width == 1 && s.offset == 0) found_1 = true;
    if (s.width == 2 && s.offset == 9) found_2 = true;
    if (s.width == 4 && s.offset == 11) found_4 = true;
    EXPECT_GE(s.values.size(), 16u);
  }
  EXPECT_TRUE(found_1);
  EXPECT_TRUE(found_2);
  EXPECT_TRUE(found_4);
}

TEST(Extract, TypeByteClassifiesAsIdentifier) {
  // Byte 0 of every payload is the media-encap type: {13, 15, 16}.
  auto payloads = zoom_flow(300, 3);
  auto seqs = extract_sequences(payloads, 1);
  const FieldSequence* type_byte = nullptr;
  for (const auto& s : seqs)
    if (s.width == 1 && s.offset == 0) type_byte = &s;
  ASSERT_NE(type_byte, nullptr);
  EXPECT_EQ(classify_sequence(*type_byte).cls, FieldClass::Identifier);
}

TEST(Locate, DiscoverTypeOffsetsRediscoversTable2) {
  // The §4.2.2 differencing method must recover the per-type RTP offsets
  // {13: 27, 15: 19, 16: 24} from raw bytes with no Zoom knowledge.
  auto payloads = zoom_flow(1200, 4);
  auto offsets = discover_type_offsets(payloads);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets.at(13), 27u);
  EXPECT_EQ(offsets.at(15), 19u);
  EXPECT_EQ(offsets.at(16), 24u);
}

TEST(Locate, NoRtpInRandomData) {
  util::Rng rng(5);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> p(80);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u32());
    payloads.push_back(std::move(p));
  }
  EXPECT_FALSE(locate_rtp(payloads));
}

TEST(Locate, SsrcCrossReferenceFindsRtcp) {
  // Collect SSRCs from media packets, then find them inside RTCP
  // payloads at the SR offset — the §4.2.1 RTCP-discovery trick.
  auto media = zoom_flow(300, 6);
  auto video_offsets = discover_type_offsets(media);
  ASSERT_TRUE(video_offsets.contains(16));
  std::vector<std::vector<std::uint8_t>> video_only;
  for (const auto& p : media)
    if (!p.empty() && p[0] == 16) video_only.push_back(p);
  auto ssrcs = collect_ssrcs(video_only, video_offsets.at(16));
  ASSERT_TRUE(ssrcs.contains(0x1001));

  util::Rng rng(7);
  std::vector<std::vector<std::uint8_t>> rtcp_payloads;
  for (int i = 0; i < 40; ++i) {
    proto::SenderReport sr;
    sr.sender_ssrc = 0x1001;
    rtcp_payloads.push_back(sim::build_rtcp_payload(
        0x1001, sr, i % 2 == 0, static_cast<std::uint16_t>(i), rng));
  }
  auto hits = find_ssrc_references(rtcp_payloads, ssrcs);
  // RTCP offset 16 + SR header 4 bytes -> sender SSRC at offset 20.
  ASSERT_TRUE(hits.contains(20));
  EXPECT_EQ(hits.at(20), 40u);
}

TEST(Locate, ScoreRequiresBehaviouralChecks) {
  // Packets with valid version bits but a *random* sequence field must
  // not score as RTP.
  util::Rng rng(8);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> p(20, 0);
    p[0] = 0x80;  // version 2, cc 0
    p[1] = 98;
    p[2] = static_cast<std::uint8_t>(rng.next_u32());  // random "seq"
    p[3] = static_cast<std::uint8_t>(rng.next_u32());
    p[8] = 0x10;  // stable ssrc
    payloads.push_back(std::move(p));
  }
  auto scan = score_rtp_offset(payloads, 0);
  EXPECT_EQ(scan.match_fraction, 0.0);
}

}  // namespace
}  // namespace zpm::entropy
