// RFC 3550 jitter estimation (§5.4).
#include <gtest/gtest.h>

#include "metrics/jitter.h"
#include "util/rng.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

TEST(Jitter, ZeroForPerfectlyPacedStream) {
  JitterEstimator j(90000);
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 0;
  for (int i = 0; i < 100; ++i) {
    j.add(t, ts);
    t += Duration::millis(33);
    ts += 2970;  // exactly 33 ms at 90 kHz
  }
  EXPECT_TRUE(j.has_estimate());
  EXPECT_NEAR(j.jitter_ms(), 0.0, 1e-9);
}

TEST(Jitter, ConvergesToExpectedValueForConstantDisplacement) {
  // Alternating +d/-d arrival error yields |D| = 2d each step; the EWMA
  // converges to 2d.
  JitterEstimator j(90000);
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 0;
  for (int i = 0; i < 2000; ++i) {
    Duration err = Duration::millis(i % 2 == 0 ? 2 : -2);
    j.add(t + err, ts);
    t += Duration::millis(40);
    ts += 3600;
  }
  EXPECT_NEAR(j.jitter_ms(), 4.0, 0.3);
}

TEST(Jitter, VariablePacketizationIsNotJitter) {
  // Zoom's packetization interval varies (§5.4); as long as arrival
  // matches the RTP clock, variable frame spacing must yield ~0 jitter.
  JitterEstimator j(90000);
  util::Rng rng(5);
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 0;
  for (int i = 0; i < 500; ++i) {
    j.add(t, ts);
    double gap_ms = rng.uniform(20.0, 120.0);  // wildly variable spacing
    t += Duration::micros(static_cast<std::int64_t>(gap_ms * 1000));
    ts += static_cast<std::uint32_t>(gap_ms * 90.0);
  }
  EXPECT_LT(j.jitter_ms(), 0.05);
  // The naive estimator reads the same stream as massively jittery —
  // the paper's argument for why raw interarrival variance is wrong.
  NaiveInterarrivalJitter naive;
  util::Rng rng2(5);
  Timestamp t2 = Timestamp::from_seconds(0);
  for (int i = 0; i < 500; ++i) {
    naive.add(t2);
    double gap_ms = rng2.uniform(20.0, 120.0);
    t2 += Duration::micros(static_cast<std::int64_t>(gap_ms * 1000));
  }
  EXPECT_GT(naive.jitter_ms(), 10.0);
}

TEST(Jitter, TimestampWrapDoesNotSpike) {
  JitterEstimator j(90000);
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 0xffffff00u;  // about to wrap
  for (int i = 0; i < 50; ++i) {
    j.add(t, ts);
    t += Duration::millis(33);
    ts += 2970;  // wraps partway through
  }
  EXPECT_NEAR(j.jitter_ms(), 0.0, 1e-6);
}

TEST(Jitter, RtpUnitConversion) {
  JitterEstimator j(90000);
  j.add(Timestamp::from_seconds(0), 0);
  j.add(Timestamp::from_seconds(0) + Duration::millis(49), 2970);  // 16 ms late
  // One sample: J = |D|/16 = 16/16 = 1 ms = 90 RTP units.
  EXPECT_NEAR(j.jitter_ms(), 1.0, 1e-9);
  EXPECT_NEAR(j.jitter_rtp_units(), 90.0, 1e-6);
  ASSERT_TRUE(j.last_abs_d_ms());
  EXPECT_NEAR(*j.last_abs_d_ms(), 16.0, 1e-9);
}

TEST(Jitter, NoEstimateWithFewerThanTwoSamples) {
  JitterEstimator j(90000);
  EXPECT_FALSE(j.has_estimate());
  j.add(Timestamp::from_seconds(0), 0);
  EXPECT_FALSE(j.has_estimate());
  j.add(Timestamp::from_seconds(1), 90000);
  EXPECT_TRUE(j.has_estimate());
}

TEST(NaiveJitter, StdDevOfInterarrivals) {
  NaiveInterarrivalJitter naive;
  Timestamp t = Timestamp::from_seconds(0);
  // Intervals: 10, 30, 10, 30 ... ms -> stddev 10 ms.
  for (int i = 0; i < 400; ++i) {
    naive.add(t);
    t += Duration::millis(i % 2 == 0 ? 10 : 30);
  }
  EXPECT_NEAR(naive.jitter_ms(), 10.0, 0.2);
}

}  // namespace
}  // namespace zpm::metrics
