// Minimized regressions for parser bugs surfaced by the fuzzing
// harness (tests/fuzz/), plus hostile-payload behaviour on the Zoom
// ports. Each pcapng fixture is the smallest byte sequence that
// reaches the fixed code path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "capture/batch_filter.h"
#include "core/analyzer.h"
#include "net/build.h"
#include "net/pcap.h"
#include "net/pcapng.h"
#include "util/rng.h"

namespace zpm {
namespace {

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  put_u16(v, static_cast<std::uint16_t>(x));
  put_u16(v, static_cast<std::uint16_t>(x >> 16));
}

/// Frames `body` as a pcapng block: type, computed total length, body
/// padded to 32 bits, trailing total length.
std::vector<std::uint8_t> block(std::uint32_t type, std::vector<std::uint8_t> body) {
  while (body.size() % 4 != 0) body.push_back(0);
  std::vector<std::uint8_t> out;
  put_u32(out, type);
  put_u32(out, static_cast<std::uint32_t>(12 + body.size()));
  out.insert(out.end(), body.begin(), body.end());
  put_u32(out, static_cast<std::uint32_t>(12 + body.size()));
  return out;
}

std::vector<std::uint8_t> section_header() {
  std::vector<std::uint8_t> body;
  put_u32(body, 0x1a2b3c4d);  // byte-order magic
  put_u16(body, 1);           // major
  put_u16(body, 0);           // minor
  put_u32(body, 0xffffffff);  // section length = -1 (unknown)
  put_u32(body, 0xffffffff);
  return block(0x0a0d0d0a, body);
}

std::vector<std::uint8_t> interface_block(std::uint8_t tsresol) {
  std::vector<std::uint8_t> body;
  put_u16(body, 1);      // LINKTYPE_ETHERNET
  put_u16(body, 0);      // reserved
  put_u32(body, 65535);  // snaplen
  put_u16(body, 9);      // if_tsresol
  put_u16(body, 1);
  body.push_back(tsresol);
  body.push_back(0);  // option padding
  body.push_back(0);
  body.push_back(0);
  put_u16(body, 0);  // opt_endofopt
  put_u16(body, 0);
  return block(1, body);
}

std::vector<std::uint8_t> enhanced_packet(std::uint32_t ts_high,
                                          std::uint32_t ts_low,
                                          std::uint32_t captured_field,
                                          const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> body;
  put_u32(body, 0);  // interface id
  put_u32(body, ts_high);
  put_u32(body, ts_low);
  put_u32(body, captured_field);
  put_u32(body, captured_field);  // original length
  body.insert(body.end(), data.begin(), data.end());
  return block(6, body);
}

std::string to_stream(std::initializer_list<std::vector<std::uint8_t>> blocks) {
  std::string s;
  for (const auto& b : blocks) s.append(b.begin(), b.end());
  return s;
}

TEST(HostileInputs, PcapNgEpbCapturedLengthOverflowIsRejected) {
  // Fuzzer find: a captured-length near UINT32_MAX made the bounds
  // check `20 + captured <= body.size()` wrap in 32-bit arithmetic and
  // pass, so the copy read far beyond the block body. The fixed check
  // compares against `body.size() - 20` and must reject the record.
  auto file = to_stream({section_header(), interface_block(6),
                         enhanced_packet(0, 0, 0xfffffff0u, {1, 2, 3, 4})});
  std::istringstream in(file);
  net::PcapNgReader reader(in);
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("exceeds"), std::string::npos) << reader.error();
}

TEST(HostileInputs, PcapNgCoarseTsresolHugeTimestampClamps) {
  // Fuzzer find: if_tsresol = 0 declares one tick per second, so an
  // all-ones 64-bit timestamp converts to ~1.8e25 microseconds —
  // casting that long double to int64 is undefined behaviour. The
  // fixed path clamps to the largest representable microsecond count.
  std::vector<std::uint8_t> frame(14, 0);
  auto file = to_stream({section_header(), interface_block(0),
                         enhanced_packet(0xffffffffu, 0xffffffffu,
                                         static_cast<std::uint32_t>(frame.size()),
                                         frame)});
  std::istringstream in(file);
  net::PcapNgReader reader(in);
  auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value()) << reader.error();
  EXPECT_EQ(pkt->ts, util::Timestamp::from_micros(9'000'000'000'000'000'000LL));
  EXPECT_EQ(pkt->data.size(), frame.size());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_TRUE(reader.ok()) << reader.error();
}

TEST(HostileInputs, PcapNgPowerOfTwoTsresolExponentSaturates) {
  // Fuzzer find: if_tsresol with the high bit set declares a power-of-
  // two resolution, and an exponent of 104 made the reader execute
  // `1ULL << 104` — undefined behaviour. The fixed path saturates the
  // tick rate, which collapses such timestamps to zero microseconds.
  std::vector<std::uint8_t> frame(14, 0);
  auto file = to_stream({section_header(), interface_block(0x80 | 104),
                         enhanced_packet(0, 1'000'000,
                                         static_cast<std::uint32_t>(frame.size()),
                                         frame)});
  std::istringstream in(file);
  net::PcapNgReader reader(in);
  auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value()) << reader.error();
  EXPECT_EQ(pkt->ts, util::Timestamp::from_micros(0));
  EXPECT_TRUE(reader.ok()) << reader.error();
}

TEST(HostileInputs, TruncatedPcapStopsCleanlyAfterLastFullRecord) {
  auto ts = util::Timestamp::from_seconds(5);
  net::Ipv4Addr client(10, 8, 0, 1), server(170, 114, 0, 10);
  std::stringstream buf;
  {
    net::PcapWriter writer(buf);
    writer.write(net::build_udp(ts, client, 45000, server, 8801,
                                std::vector<std::uint8_t>(64, 0xaa)));
    writer.write(net::build_udp(ts, client, 45000, server, 8801,
                                std::vector<std::uint8_t>(64, 0xbb)));
  }
  // Cut the capture mid-way through the second record, as a dying
  // capture host would.
  std::string bytes = buf.str();
  std::istringstream in(bytes.substr(0, bytes.size() - 40));
  net::PcapReader reader(in);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.packets_read(), 1u);
}

TEST(HostileInputs, GarbageOnZoomPortsIsAccountedNotFatal) {
  // Random payloads aimed at the Zoom server ports must flow through
  // the full analyzer without crashing, yield no streams, and leave an
  // audit trail in the health counters.
  net::Ipv4Addr client(10, 8, 0, 1), server(170, 114, 0, 10);
  util::Rng rng(99);
  std::vector<net::RawPacket> trace;
  for (int i = 0; i < 200; ++i) {
    auto ts = util::Timestamp::from_seconds(10) +
              util::Duration::millis(5 * i);
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(24, 300)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32() >> 24);
    std::uint16_t dport = (i % 2 == 0) ? 8801 : 3478;
    trace.push_back(net::build_udp(ts, client,
                                   static_cast<std::uint16_t>(40000 + i),
                                   server, dport, payload));
  }
  core::Analyzer analyzer(core::AnalyzerConfig{});
  for (const auto& pkt : trace) analyzer.offer(pkt);
  analyzer.finish();

  EXPECT_EQ(analyzer.counters().total_packets, trace.size());
  EXPECT_EQ(analyzer.streams().size(), 0u);
  // Every port-3478 record fails STUN parsing (a random payload cannot
  // carry the magic cookie) and must be flagged.
  EXPECT_EQ(analyzer.health().malformed_stun, 100u);
  EXPECT_FALSE(analyzer.health().all_clear());
}

TEST(HostileInputs, FrontEndScreeningPreservesHostileAccounting) {
  // The capture front end may screen out garbage aimed at non-Zoom
  // endpoints, but never at the cost of the audit trail: the screened
  // analyzer must report the same totals and the same health counters
  // (malformed-STUN tallies included) as the unscreened baseline, with
  // the rejected packets showing up only under frontend_rejected.
  net::Ipv4Addr client(10, 8, 0, 1), server(170, 114, 0, 10),
      squatter(23, 1, 2, 3);
  util::Rng rng(1234);
  std::vector<net::RawPacket> trace;
  for (int i = 0; i < 200; ++i) {
    auto ts = util::Timestamp::from_seconds(10) + util::Duration::millis(5 * i);
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(24, 300)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32() >> 24);
    std::uint16_t dport = (i % 2 == 0) ? 8801 : 3478;
    net::Ipv4Addr dst = (i % 4 < 2) ? server : squatter;
    trace.push_back(net::build_udp(ts, client,
                                   static_cast<std::uint16_t>(40000 + i), dst,
                                   dport, payload));
  }

  core::Analyzer baseline(core::AnalyzerConfig{});
  for (const auto& pkt : trace) baseline.offer(pkt);
  baseline.finish();

  core::Analyzer screened(core::AnalyzerConfig{});
  capture::BatchFilter filter{capture::BatchFilterConfig{}};
  std::vector<net::RawPacketView> views;
  for (const auto& pkt : trace) views.push_back(net::as_view(pkt));
  capture::BatchVerdicts verdicts;
  filter.classify(views, verdicts);
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (verdicts.verdicts[i] == capture::Verdict::Reject)
      screened.account_frontend_rejected(views[i]);
    else
      screened.offer(trace[i]);
  }
  screened.finish();

  // Garbage to the off-net squatter on 8801 is provably irrelevant and
  // must be screened; everything touching 3478 arms the candidate
  // superset and flows through so malformed-STUN accounting survives.
  EXPECT_GT(filter.stats().rejected, 0u);
  EXPECT_EQ(screened.health().frontend_rejected, filter.stats().rejected);
  EXPECT_EQ(screened.counters().total_packets, baseline.counters().total_packets);
  EXPECT_EQ(screened.counters().total_bytes, baseline.counters().total_bytes);
  EXPECT_EQ(screened.health().malformed_stun, baseline.health().malformed_stun);
  core::AnalyzerHealth normalized = screened.health();
  normalized.frontend_rejected = 0;
  EXPECT_EQ(normalized, baseline.health());
  EXPECT_EQ(screened.streams().size(), baseline.streams().size());
}

}  // namespace
}  // namespace zpm
