// Differential fuzz target: the capture front end's scalar reference
// probe vs its SWAR/SSE2 probe. The input is a record stream —
// [flags u8][len u16le][payload bytes] repeated — turned into a batch
// of frames: raw mode feeds the bytes as the whole Ethernet frame
// (arbitrary layouts, the case the vector fast path must hand back to
// the scalar reference), synth mode wraps them in UDP frames aimed at
// the Zoom port/direction combinations so the stateful candidate/flow
// logic is exercised too. Both BatchFilter instances see identical
// batches; any divergence in the verdict bitmap (verdict, flags, shard,
// slot — BatchVerdicts::operator==) aborts.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "capture/batch_filter.h"
#include "net/build.h"
#include "util/time.h"

namespace {

using zpm::util::Duration;
using zpm::util::Timestamp;

constexpr zpm::net::Ipv4Addr kCampusHost(10, 8, 0, 1);
constexpr zpm::net::Ipv4Addr kZoomServer(170, 114, 0, 10);  // ServerDb::official
constexpr zpm::net::Ipv4Addr kExternalPeer(23, 1, 2, 3);

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::vector<zpm::net::RawPacket> packets;
  Timestamp ts = Timestamp::from_seconds(1000);
  std::size_t pos = 0;
  while (pos + 3 <= size) {
    std::uint8_t flags = data[pos];
    std::size_t len = static_cast<std::size_t>(data[pos + 1]) |
                      (static_cast<std::size_t>(data[pos + 2]) << 8);
    pos += 3;
    if (len > size - pos) len = size - pos;
    std::vector<std::uint8_t> payload(data + pos, data + pos + len);
    pos += len;
    ts = ts + Duration::millis(20);

    if (flags & 0x01) {
      // Raw mode: arbitrary bytes as the whole frame.
      packets.push_back(zpm::net::RawPacket{ts, std::move(payload)});
      continue;
    }
    std::uint16_t zoom_port = (flags & 0x02) ? 3478 : 8801;
    bool from_server = flags & 0x04;
    zpm::net::Ipv4Addr remote = (flags & 0x08) ? kExternalPeer : kZoomServer;
    packets.push_back(from_server
                          ? zpm::net::build_udp(ts, remote, zoom_port, kCampusHost,
                                                45000, payload)
                          : zpm::net::build_udp(ts, kCampusHost, 45000, remote,
                                                zoom_port, payload));
  }

  std::vector<zpm::net::RawPacketView> batch;
  batch.reserve(packets.size());
  for (const auto& pkt : packets) batch.push_back(zpm::net::as_view(pkt));

  zpm::capture::BatchFilterConfig cfg;
  cfg.shards = 4;
  zpm::capture::BatchFilter scalar(cfg, zpm::capture::BatchFilter::Mode::ForceScalar);
  zpm::capture::BatchFilter simd(cfg, zpm::capture::BatchFilter::Mode::ForceSimd);
  zpm::capture::BatchVerdicts scalar_out, simd_out;
  scalar.classify(batch, scalar_out);
  simd.classify(batch, simd_out);
  if (!(scalar_out == simd_out)) {
    std::fprintf(stderr,
                 "batch_filter scalar/SIMD verdict divergence on %zu packets\n",
                 batch.size());
    std::abort();
  }
  if (scalar.flow_count() != simd.flow_count() ||
      scalar.candidate_endpoint_count() != simd.candidate_endpoint_count()) {
    std::fprintf(stderr, "batch_filter scalar/SIMD state divergence\n");
    std::abort();
  }
  return 0;
}
