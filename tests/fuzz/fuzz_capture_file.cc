// Fuzz target: capture-file readers (classic pcap and pcapng).
//
// Every input is offered to both readers — the magic check rejects the
// wrong format in O(1), and inputs that mutate one format's magic into
// the other's keep getting coverage. Regressions this family found are
// pinned in tests/test_hostile_inputs.cc (EPB length overflow, huge
// if_tsresol timestamp cast).
#include <cstdint>
#include <sstream>
#include <string>

#include "net/pcap.h"
#include "net/pcapng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string bytes(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(bytes);
    zpm::net::PcapReader reader(in);
    while (reader.next()) {
    }
  }
  {
    std::istringstream in(bytes);
    zpm::net::PcapNgReader reader(in);
    while (reader.next()) {
    }
  }
  return 0;
}
