// Fuzz target for the overload governor and its injection parser.
//
// Input: [selector u8] then selector % 2 routes:
//   0 — governor observation stream: [cfg: 6 bytes] then repeated
//       [kind u8][value u16le] records. Even kinds feed raw pressure
//       (the injection path), odd kinds build PressureSignals from the
//       value bits (the live path). The config bytes sweep alpha, the
//       watermarks (including inverted/degenerate orderings) and the
//       streak lengths, with a mid-stream set_config retune.
//   1 — PressureSchedule::parse over the rest of the input as a spec
//       string: must never crash, and a failed parse must leave the
//       schedule empty.
//
// Checked ladder invariants (docs/ROBUSTNESS.md §5), any violation
// aborts:
//   * level stays in [0, kMaxLevel],
//   * |Δlevel| <= 1 per observation (one rung at a time, both ways),
//   * GovernorStats counters are monotone and observations count every
//     observe() exactly once,
//   * stats().max_level equals the running max of observed levels,
//   * escalations - recoveries == current level (every step accounted).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "overload/governor.h"

namespace {

std::uint16_t u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "overload governor invariant violated: %s\n", what);
    std::abort();
  }
}

zpm::overload::GovernorConfig config_from(const std::uint8_t* p) {
  zpm::overload::GovernorConfig config;
  // Deliberately include degenerate tunings (alpha 0 stays possible
  // only as ~0.004; watermarks may invert) — the ladder invariants must
  // hold under hostile configuration too.
  config.alpha = (1 + p[0] % 255) / 255.0;
  config.high_watermark = p[1] / 128.0;
  config.low_watermark = p[2] / 128.0;
  config.escalate_after = 1u + p[3] % 8;
  config.recover_after = 1u + p[4] % 8;
  config.spins_hi = 1.0 + p[5] * 4.0;
  return config;
}

void fuzz_governor(const std::uint8_t* data, std::size_t size) {
  using zpm::overload::kMaxLevel;
  if (size < 6) return;
  zpm::overload::OverloadGovernor gov(config_from(data));
  std::size_t pos = 6;

  int prev_level = gov.level();
  int max_seen = prev_level;
  zpm::overload::GovernorStats prev = gov.stats();
  bool retuned = false;

  while (pos + 3 <= size) {
    const std::uint8_t kind = data[pos];
    const std::uint16_t value = u16(data + pos + 1);
    pos += 3;

    // One mid-stream retune, re-deriving the config from payload bytes:
    // level and counters must survive it.
    if (!retuned && kind == 0xff && pos + 6 <= size) {
      const int before = gov.level();
      const zpm::overload::GovernorStats stats_before = gov.stats();
      gov.set_config(config_from(data + pos));
      pos += 6;
      retuned = true;
      check(gov.level() == before, "set_config changed the level");
      check(gov.stats().observations == stats_before.observations,
            "set_config changed the counters");
      continue;
    }

    int level;
    if (kind % 2 == 0) {
      // Injection path: raw pressure in [0, ~2.56], beyond saturation.
      level = gov.observe_pressure((value & 0xff) / 100.0);
    } else {
      zpm::overload::PressureSignals signals;
      signals.ring_occupancy = (value & 0x0f) / 15.0;
      signals.spins_delta = static_cast<std::uint64_t>(value & 0xff0) * 8;
      signals.latency_us = ((value >> 8) & 0x3f) * 1.0;
      signals.kernel_drops_delta = (value >> 15) & 1;
      level = gov.observe(signals);
    }

    check(level == gov.level(), "observe return value != level()");
    check(level >= 0 && level <= kMaxLevel, "level out of [0, kMaxLevel]");
    check(level - prev_level <= 1 && prev_level - level <= 1,
          "level moved more than one rung in one observation");

    const zpm::overload::GovernorStats now = gov.stats();
    check(now.observations == prev.observations + 1,
          "observations did not count this observe");
    check(now.escalations >= prev.escalations &&
              now.recoveries >= prev.recoveries,
          "stats counters went backwards");
    check(now.escalations - prev.escalations + now.recoveries -
                  prev.recoveries ==
              static_cast<std::uint64_t>(level > prev_level   ? 1
                                         : level < prev_level ? 1
                                                              : 0),
          "level step without matching counter (or vice versa)");
    check(now.escalations - now.recoveries ==
              static_cast<std::uint64_t>(level),
          "escalations - recoveries != level");
    if (level > max_seen) max_seen = level;
    check(now.max_level == max_seen, "max_level != running max");

    prev_level = level;
    prev = now;
  }
}

void fuzz_schedule(const std::uint8_t* data, std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  zpm::overload::PressureSchedule sched;
  // Pre-populate so a failed parse demonstrably clears.
  sched.parse("0-10:1.0");
  const bool ok = sched.parse(spec);
  if (!ok) {
    check(sched.empty(), "failed parse left ranges behind");
    return;
  }
  check(!sched.empty(), "successful parse produced no ranges");
  for (const auto& r : sched.ranges()) {
    check(r.end > r.begin, "accepted an empty/inverted range");
    check(r.pressure >= 0.0, "accepted a negative pressure");
    // Lookups agree with the ranges at their boundaries.
    check(sched.pressure_at(r.begin) >= r.pressure,
          "pressure_at(begin) below the range's own value");
    if (r.begin > 0)
      sched.pressure_at(r.begin - 1);  // must not read out of bounds
    sched.pressure_at(r.end);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  if (data[0] % 2 == 0)
    fuzz_governor(data + 1, size - 1);
  else
    fuzz_schedule(data + 1, size - 1);
  return 0;
}
