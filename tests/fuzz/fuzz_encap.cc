// Fuzz target: Zoom encapsulation dissection (SFU encap + media encap
// down to RTP/RTCP), through both transport framings.
#include <cstdint>
#include <span>

#include "zoom/classify.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::span<const std::uint8_t> payload(data, size);
  for (auto transport :
       {zpm::zoom::Transport::ServerBased, zpm::zoom::Transport::P2P}) {
    zpm::zoom::DissectFlaw flaw = zpm::zoom::DissectFlaw::None;
    auto pkt = zpm::zoom::dissect(payload, transport, &flaw);
    if (pkt && pkt->rtp) {
      // The parsed header must fit inside the input it was read from.
      if (pkt->rtp->header_length() > size) __builtin_trap();
    }
  }
  return 0;
}
