// Fuzz target: RTP header parsing (RFC 3550 fixed header + CSRCs +
// extension), with a serialize round-trip invariant on success.
#include <cstdint>
#include <span>

#include "proto/rtp.h"
#include "util/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  auto parsed = zpm::proto::parse_rtp_packet({data, size});
  if (!parsed) return 0;
  const auto& h = parsed->header;
  if (h.header_length() + parsed->payload.size() > size) __builtin_trap();
  // Round-trip: re-serializing the parsed header and re-parsing it must
  // reproduce the same header fields.
  zpm::util::ByteWriter w;
  h.serialize(w);
  zpm::util::ByteReader r(w.view());
  auto again = zpm::proto::RtpHeader::parse(r);
  if (!again) __builtin_trap();
  if (again->ssrc != h.ssrc || again->sequence != h.sequence ||
      again->timestamp != h.timestamp || again->payload_type != h.payload_type ||
      again->csrc_count != h.csrc_count) {
    __builtin_trap();
  }
  return 0;
}
