// Fuzz target: RTCP compound-packet parsing (SR / RR / SDES / BYE).
#include <cstdint>
#include <span>
#include <variant>

#include "proto/rtcp.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  auto packets = zpm::proto::parse_rtcp_compound({data, size});
  for (const auto& pkt : packets) {
    // Force full materialization of whatever variant alternative parsed.
    if (const auto* sr = std::get_if<zpm::proto::SenderReport>(&pkt)) {
      (void)sr->ntp.to_unix();
      if (sr->reports.size() > 31) __builtin_trap();  // 5-bit count field
    }
  }
  return 0;
}
