// Seed-corpus generator for the fuzz targets. Writes one directory per
// target under the output root (default tests/fuzz/corpus), each seeded
// with well-formed protocol bytes produced by the same builders the
// simulator uses — the fuzzer then only has to mutate its way into the
// interesting malformed neighborhoods instead of rediscovering the
// formats from scratch.
//
// Usage: make_fuzz_corpus [output_root]
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/snapshot.h"
#include "capture/offload.h"
#include "net/build.h"
#include "net/pcap.h"
#include "query/query.h"
#include "sketch/sketch.h"
#include "proto/rtcp.h"
#include "proto/rtp.h"
#include "proto/stun.h"
#include "sim/wire.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "zoom/constants.h"

using namespace zpm;

namespace {

namespace fs = std::filesystem;

void write_seed(const fs::path& dir, const std::string& name,
                std::span<const std::uint8_t> bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> media_payload(zoom::MediaEncapType type,
                                        std::uint8_t payload_type,
                                        std::size_t bytes, util::Rng& rng) {
  sim::MediaPacketSpec spec;
  spec.encap_type = type;
  spec.payload_type = payload_type;
  spec.ssrc = 17;
  spec.rtp_seq = 1000;
  spec.rtp_timestamp = 90'000;
  spec.media_encap_seq = 42;
  spec.media_encap_ts = 123'456;
  spec.packets_in_frame = 3;
  spec.payload_bytes = bytes;
  return sim::build_media_payload(spec, rng);
}

std::vector<std::uint8_t> rtcp_payload(util::Rng& rng, bool with_sdes) {
  proto::SenderReport sr;
  sr.sender_ssrc = 17;
  sr.ntp = proto::NtpTimestamp::from_unix(util::Timestamp::from_seconds(1'000));
  sr.rtp_timestamp = 90'000;
  sr.packet_count = 250;
  sr.octet_count = 250'000;
  return sim::build_rtcp_payload(17, sr, with_sdes, 7, rng);
}

std::vector<std::uint8_t> stun_bytes(bool response) {
  proto::StunMessage msg;
  msg.type = response ? proto::kStunBindingResponse : proto::kStunBindingRequest;
  for (std::size_t i = 0; i < msg.transaction_id.size(); ++i)
    msg.transaction_id[i] = static_cast<std::uint8_t>(0xA0 + i);
  if (response) {
    proto::StunAttribute attr;
    attr.type = proto::kStunAttrXorMappedAddress;
    attr.value = {0x00, 0x01, 0x51, 0x43, 0x5e, 0x12, 0xa4, 0x43};
    msg.attributes.push_back(attr);
  } else {
    proto::StunAttribute software;
    software.type = proto::kStunAttrSoftware;
    software.value = {'z', 'o', 'o', 'm'};
    msg.attributes.push_back(software);
  }
  util::ByteWriter w;
  msg.serialize(w);
  return {w.view().begin(), w.view().end()};
}

/// [flags u8][len u16le][payload] — the fuzz_pipeline record format.
void append_record(std::vector<std::uint8_t>& out, std::uint8_t flags,
                   std::span<const std::uint8_t> payload) {
  out.push_back(flags);
  out.push_back(static_cast<std::uint8_t>(payload.size() & 0xFF));
  out.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  out.insert(out.end(), payload.begin(), payload.end());
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

/// Minimal valid pcapng: SHB + IDB (with if_tsresol option) + one EPB.
std::vector<std::uint8_t> pcapng_bytes(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> out;
  auto block = [&out](std::uint32_t type, std::vector<std::uint8_t> body) {
    while (body.size() % 4 != 0) body.push_back(0);
    auto total = static_cast<std::uint32_t>(12 + body.size());
    le32(out, type);
    le32(out, total);
    out.insert(out.end(), body.begin(), body.end());
    le32(out, total);
  };
  {
    // Section Header Block.
    std::vector<std::uint8_t> body;
    le32(body, 0x1A2B3C4D);  // byte-order magic
    le16(body, 1);           // major
    le16(body, 0);           // minor
    le32(body, 0xFFFFFFFF);  // section length unknown (64-bit -1)
    le32(body, 0xFFFFFFFF);
    block(0x0A0D0D0A, std::move(body));
  }
  {
    // Interface Description Block: linktype 1, if_tsresol = 6 (micros).
    std::vector<std::uint8_t> body;
    le16(body, 1);  // LINKTYPE_ETHERNET
    le16(body, 0);  // reserved
    le32(body, 0);  // snaplen unlimited
    le16(body, 9);  // if_tsresol
    le16(body, 1);  // option length (value padded to 4)
    body.insert(body.end(), {6, 0, 0, 0});
    le16(body, 0);  // opt_endofopt
    le16(body, 0);
    block(0x00000001, std::move(body));
  }
  {
    // Enhanced Packet Block.
    std::vector<std::uint8_t> body;
    le32(body, 0);  // interface 0
    std::uint64_t ts = 1'000'000'000ull;  // 1000 s in micros (tsresol 6)
    le32(body, static_cast<std::uint32_t>(ts >> 32));
    le32(body, static_cast<std::uint32_t>(ts));
    auto captured = static_cast<std::uint32_t>(frame.size());
    le32(body, captured);
    le32(body, captured);
    body.insert(body.end(), frame.begin(), frame.end());
    block(0x00000006, std::move(body));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path("tests/fuzz/corpus");
  util::Rng rng(0xF022);

  auto video = media_payload(zoom::MediaEncapType::Video, zoom::pt::kVideoMain,
                             600, rng);
  auto audio = media_payload(zoom::MediaEncapType::Audio,
                             zoom::pt::kAudioSpeaking, 120, rng);
  auto screen = media_payload(zoom::MediaEncapType::ScreenShare,
                              zoom::pt::kScreenShareMain, 800, rng);
  auto rtcp = rtcp_payload(rng, false);
  auto rtcp_sdes = rtcp_payload(rng, true);
  auto unknown = sim::build_unknown_payload(24, 5, 90, rng);
  auto sfu_video = sim::wrap_sfu(video, 100, true);
  auto sfu_audio = sim::wrap_sfu(audio, 101, false);
  auto sfu_screen = sim::wrap_sfu(screen, 102, true);
  auto sfu_rtcp = sim::wrap_sfu(rtcp, 103, true);
  auto sfu_rtcp_sdes = sim::wrap_sfu(rtcp_sdes, 104, true);
  auto sfu_unknown = sim::wrap_sfu(unknown, 105, false);
  auto sfu_odd = sim::wrap_sfu(video, 106, true, 0x07);

  // fuzz_encap: SFU-wrapped (server transport) and bare (P2P) payloads.
  write_seed(root / "fuzz_encap", "sfu_video.bin", sfu_video);
  write_seed(root / "fuzz_encap", "sfu_audio.bin", sfu_audio);
  write_seed(root / "fuzz_encap", "sfu_screen.bin", sfu_screen);
  write_seed(root / "fuzz_encap", "sfu_rtcp.bin", sfu_rtcp);
  write_seed(root / "fuzz_encap", "sfu_rtcp_sdes.bin", sfu_rtcp_sdes);
  write_seed(root / "fuzz_encap", "sfu_unknown.bin", sfu_unknown);
  write_seed(root / "fuzz_encap", "sfu_odd_type.bin", sfu_odd);
  write_seed(root / "fuzz_encap", "p2p_video.bin", video);
  write_seed(root / "fuzz_encap", "p2p_audio.bin", audio);

  // fuzz_rtp: the RTP portion (skip the media encap header).
  {
    std::size_t off = zoom::media_payload_offset(
        static_cast<std::uint8_t>(zoom::MediaEncapType::Video));
    std::span<const std::uint8_t> v(video);
    write_seed(root / "fuzz_rtp", "video_rtp.bin", v.subspan(off));
    off = zoom::media_payload_offset(
        static_cast<std::uint8_t>(zoom::MediaEncapType::Audio));
    std::span<const std::uint8_t> a(audio);
    write_seed(root / "fuzz_rtp", "audio_rtp.bin", a.subspan(off));
    // One with CSRCs and an extension block.
    proto::RtpHeader h;
    h.csrc_count = 2;
    h.csrcs = {1, 2};
    h.extension = true;
    h.extension_profile = 0xBEDE;
    h.extension_data = {1, 2, 3, 4};
    h.payload_type = zoom::pt::kVideoMain;
    h.sequence = 7;
    h.timestamp = 1234;
    h.ssrc = 99;
    util::ByteWriter w;
    h.serialize(w);
    std::vector<std::uint8_t> bytes(w.view().begin(), w.view().end());
    bytes.insert(bytes.end(), {0xDE, 0xAD, 0xBE, 0xEF});
    write_seed(root / "fuzz_rtp", "csrc_ext.bin", bytes);
  }

  // fuzz_rtcp: compound bodies (strip media encap + the RTCP offset).
  {
    std::size_t off = zoom::media_payload_offset(
        static_cast<std::uint8_t>(zoom::MediaEncapType::RtcpSr));
    std::span<const std::uint8_t> r1(rtcp);
    write_seed(root / "fuzz_rtcp", "sr.bin", r1.subspan(off));
    std::span<const std::uint8_t> r2(rtcp_sdes);
    write_seed(root / "fuzz_rtcp", "sr_sdes.bin", r2.subspan(off));
  }

  // fuzz_stun.
  write_seed(root / "fuzz_stun", "binding_request.bin", stun_bytes(false));
  write_seed(root / "fuzz_stun", "binding_response.bin", stun_bytes(true));

  // fuzz_capture_file: classic pcap + pcapng wrapping real frames.
  auto ts = util::Timestamp::from_seconds(1000);
  net::Ipv4Addr client(10, 8, 0, 1);
  net::Ipv4Addr server(170, 114, 0, 10);
  auto frame1 = net::build_udp(ts, client, 45000, server, 8801, sfu_video);
  auto frame2 = net::build_udp(ts + util::Duration::millis(20), server, 8801,
                               client, 45000, sfu_audio);
  auto frame3 = net::build_udp(ts + util::Duration::millis(40), client, 52000,
                               server, 3478, stun_bytes(false));
  {
    std::ostringstream buf;
    net::PcapWriter writer(buf);
    writer.write(frame1);
    writer.write(frame2);
    writer.write(frame3);
    std::string s = buf.str();
    write_seed(root / "fuzz_capture_file", "three_packets.pcap",
               {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  {
    std::ostringstream buf;
    net::PcapWriter writer(buf, 96);  // snaplen-truncating writer
    writer.write(frame1);
    std::string s = buf.str();
    write_seed(root / "fuzz_capture_file", "truncated.pcap",
               {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  write_seed(root / "fuzz_capture_file", "one_packet.pcapng",
             pcapng_bytes(frame1.data));

  // fuzz_pipeline: a record stream touching every flag mode.
  {
    std::vector<std::uint8_t> stream;
    append_record(stream, 0x00, sfu_video);          // client -> server media
    append_record(stream, 0x04, sfu_audio);          // server -> client media
    append_record(stream, 0x00, sfu_rtcp);           // RTCP
    append_record(stream, 0x02, stun_bytes(false));  // STUN request
    append_record(stream, 0x06, stun_bytes(true));   // STUN response
    append_record(stream, 0x08, video);              // P2P-shaped media
    append_record(stream, 0x10, sfu_screen);         // timestamp regression
    append_record(stream, 0x00, unknown);            // undecodable control
    append_record(stream, 0x01, frame1.data);        // raw frame mode
    write_seed(root / "fuzz_pipeline", "mixed.bin", stream);

    std::vector<std::uint8_t> hostile;
    std::vector<std::uint8_t> shortv(sfu_video.begin(), sfu_video.begin() + 6);
    append_record(hostile, 0x00, shortv);  // truncated SFU encap
    std::vector<std::uint8_t> bad_rtp = sfu_video;
    bad_rtp[8 + 27] = 0x00;  // RTP version byte zeroed (media offset 27)
    append_record(hostile, 0x00, bad_rtp);
    std::vector<std::uint8_t> garbage(64, 0xAA);
    append_record(hostile, 0x02, garbage);  // not-STUN on 3478
    append_record(hostile, 0x01, garbage);  // undecodable raw frame
    write_seed(root / "fuzz_pipeline", "hostile.bin", hostile);
  }

  // fuzz_batch_filter: same record framing as fuzz_pipeline but replayed
  // through the scalar-vs-SIMD differential front-end harness. Seeds cover
  // server media both directions, STUN arming an external peer (so the
  // candidate-endpoint path admits its later media), port squatters that
  // must stay un-Zoom-shaped, and raw frames with arbitrary layouts.
  {
    std::vector<std::uint8_t> stream;
    append_record(stream, 0x00, sfu_video);          // client -> server media
    append_record(stream, 0x04, sfu_audio);          // server -> client media
    append_record(stream, 0x02, stun_bytes(false));  // STUN to a server
    append_record(stream, 0x0A, stun_bytes(true));   // STUN with external peer
    append_record(stream, 0x08, video);              // external peer, armed above
    append_record(stream, 0x00, sfu_rtcp);           // RTCP encap
    append_record(stream, 0x01, frame1.data);        // raw well-formed frame
    write_seed(root / "fuzz_batch_filter", "mixed.bin", stream);

    std::vector<std::uint8_t> squatters;
    std::vector<std::uint8_t> garbage(96, 0x5A);
    append_record(squatters, 0x08, garbage);  // external 8801 squatter
    append_record(squatters, 0x0A, garbage);  // external 3478 squatter
    append_record(squatters, 0x00, garbage);  // server-port garbage
    std::vector<std::uint8_t> shortv(sfu_video.begin(), sfu_video.begin() + 6);
    append_record(squatters, 0x04, shortv);   // truncated encap from server
    append_record(squatters, 0x01, garbage);  // raw undecodable frame
    // Clean-looking IPv4 prefix cut inside the address fields: the
    // probe must refuse it without reading past the frame end.
    std::vector<std::uint8_t> cut(32, 0);
    cut[12] = 0x08;
    cut[14] = 0x45;
    cut[17] = 40;  // plausible total_length
    cut[23] = 17;
    append_record(squatters, 0x01, cut);
    write_seed(root / "fuzz_batch_filter", "squatters.bin", squatters);
  }

  // fuzz_sketch: [budget-exponent u8] then [op u8][flow u16le][val u16le]
  // records driving the FlowTier-vs-exact differential harness. One seed
  // under constant eviction pressure (tiny budget, wide flow spread) and
  // one exercising the promote/demote round trip on a comfortable budget.
  {
    auto record = [](std::vector<std::uint8_t>& out, std::uint8_t op,
                     std::uint16_t flow, std::uint16_t val) {
      out.push_back(op);
      le16(out, flow);
      le16(out, val);
    };
    std::vector<std::uint8_t> pressure;
    pressure.push_back(0);  // 1-byte budget: minimum tables
    for (std::uint16_t n = 0; n < 96; ++n)
      record(pressure, 0, static_cast<std::uint16_t>(n * 5), 700);
    write_seed(root / "fuzz_sketch", "eviction_pressure.bin", pressure);

    std::vector<std::uint8_t> churn;
    churn.push_back(18);  // 256 KiB budget
    for (std::uint16_t n = 0; n < 8; ++n) {
      for (int rep = 0; rep < 4; ++rep) record(churn, 0, n, 1200);
      record(churn, 2, n, 0);  // promote
      record(churn, 3, n, 64); // demote back
      record(churn, 1, n, 900);
    }
    write_seed(root / "fuzz_sketch", "promote_demote.bin", churn);
  }

  // fuzz_snapshot: [selector u8][file image] — selector % 3 routes to
  // the snapshot, epoch-file, or FlowTier-image parser. Seeds are
  // well-formed images of each so the fuzzer starts past the CRC and
  // only has to mutate its way into the framing and payload decoders.
  {
    analysis::EpochReport rep;
    rep.seq = 2;
    rep.first_packet = 1400;
    rep.packets = 700;
    rep.first_ts = util::Timestamp::from_seconds(1'000);
    rep.last_ts = util::Timestamp::from_seconds(1'007);
    rep.counters.total_packets = 700;
    rep.counters.zoom_packets = 320;
    rep.counters.zoom_bytes = 280'000;
    rep.counters.encap_tally[5] = {100, 90'000};
    rep.counters.payload_tally[98] = {80, 70'000};
    rep.health.frontend_rejected = 380;
    rep.health.epoch_evicted_flows = 3;
    rep.stream_count = 4;
    rep.zoom_flow_count = 3;
    rep.tier_stats.absorbed_packets = 380;
    sketch::HeavyHitter h;
    h.flow = net::FiveTuple{net::Ipv4Addr(10, 8, 1, 20),
                            net::Ipv4Addr(170, 114, 0, 10), 52'000, 8801, 17};
    h.packets = 120;
    h.bytes = 140'000;
    rep.heavy_hitters.push_back(h);

    analysis::SnapshotData snap;
    snap.next_epoch_seq = 3;
    snap.packets_consumed = 2100;
    snap.cumulative_counters.merge(rep.counters);
    snap.cumulative_health.merge(rep.health);
    snap.recent_epochs.push_back(rep);

    sketch::FlowTier tier(std::size_t{1} << 14);
    for (std::uint16_t n = 0; n < 40; ++n) {
      net::FiveTuple t;
      t.src_ip = net::Ipv4Addr(10, 8, 0, static_cast<std::uint8_t>(n));
      t.dst_ip = net::Ipv4Addr(93, 184, 216, 34);
      t.src_port = static_cast<std::uint16_t>(40'000 + n);
      t.dst_port = 443;
      t.protocol = 17;
      const net::PackedFlowKey key(t);
      tier.absorb(key, net::canonical_flow_hash(key), 900);
    }
    util::ByteWriter tw;
    tier.serialize(tw);
    snap.background_tier = tw.data();

    std::vector<std::uint8_t> seed;
    seed.push_back(0);  // selector: snapshot
    const auto snap_bytes = analysis::encode_snapshot(snap);
    seed.insert(seed.end(), snap_bytes.begin(), snap_bytes.end());
    write_seed(root / "fuzz_snapshot", "snapshot.bin", seed);

    seed.clear();
    seed.push_back(1);  // selector: epoch file
    const auto epoch_bytes = analysis::encode_epoch_file(rep);
    seed.insert(seed.end(), epoch_bytes.begin(), epoch_bytes.end());
    write_seed(root / "fuzz_snapshot", "epoch.bin", seed);

    seed.clear();
    seed.push_back(2);   // selector: tier image
    seed.push_back(14);  // budget exponent matching the tier above
    seed.insert(seed.end(), tw.data().begin(), tw.data().end());
    write_seed(root / "fuzz_snapshot", "tier.bin", seed);
  }

  // fuzz_overload: [selector u8] routes even -> governor observation
  // stream ([cfg 6 bytes] then [kind u8][value u16le] records), odd ->
  // PressureSchedule::parse over the rest as a spec string. One seed
  // rides the ladder up and back down through the default-ish tuning
  // (with a mid-stream 0xff retune record), one hands the parser a
  // valid multi-range spec to mutate from.
  {
    std::vector<std::uint8_t> ladder;
    ladder.push_back(0);   // selector: governor
    ladder.push_back(254); // alpha ~1.0
    ladder.push_back(109); // high watermark ~0.85
    ladder.push_back(45);  // low watermark ~0.35
    ladder.push_back(1);   // escalate_after 2
    ladder.push_back(3);   // recover_after 4
    ladder.push_back(128); // spins_hi
    auto obs = [&ladder](std::uint8_t kind, std::uint16_t value) {
      ladder.push_back(kind);
      le16(ladder, value);
    };
    for (int i = 0; i < 10; ++i) obs(0, 100);  // raw pressure 1.0: climb
    obs(0xff, 0);                              // retune record...
    ladder.push_back(128);                     // ...new config, 6 bytes
    ladder.push_back(109);
    ladder.push_back(45);
    ladder.push_back(2);
    ladder.push_back(2);
    ladder.push_back(64);
    for (int i = 0; i < 12; ++i) obs(0, 0);    // calm: recover
    obs(1, 0x800f);  // live path: full ring + a kernel drop
    obs(1, 0x3f00);  // live path: high latency only
    write_seed(root / "fuzz_overload", "ladder.bin", ladder);

    const std::string spec = "0-128:0.5,5000-20000:0.95,30000-40000:1.2";
    std::vector<std::uint8_t> sched;
    sched.push_back(1);  // selector: schedule parser
    sched.insert(sched.end(), spec.begin(), spec.end());
    write_seed(root / "fuzz_overload", "schedule.bin", sched);
  }

  // fuzz_offload: [selector u8] routes 0 -> the register-vs-reference
  // update-stream differential, 1 -> the OffloadReport codec, 2 -> field
  // extraction over a raw frame. Seeds: a two-stream update schedule
  // with both SFU directions (so the probe arms and matches), a valid
  // encoded report, and a well-formed covered media frame.
  {
    std::vector<std::uint8_t> updates;
    updates.push_back(0);  // selector: update stream
    auto op = [&updates](std::uint8_t dir_media, std::uint8_t ssrc,
                         std::uint16_t seq, std::uint16_t ts,
                         std::int16_t dt) {
      updates.push_back(dir_media);
      updates.push_back(ssrc);
      le16(updates, seq);
      le16(updates, ts);
      le16(updates, static_cast<std::uint16_t>(dt));
    };
    for (std::uint16_t i = 0; i < 24; ++i) {
      op(0, 3, i, static_cast<std::uint16_t>(i * 4), 33);  // video up
      op(1, 3, i, static_cast<std::uint16_t>(i * 4), 8);   // forwarded copy
      op(2, 9, i, static_cast<std::uint16_t>(i * 2), 20);  // audio up
    }
    op(0, 3, 50, 200, -500);  // hostile: timestamp regression
    write_seed(root / "fuzz_offload", "update_stream.bin", updates);

    capture::OffloadReport orep;
    orep.jitter.add(900);
    orep.jitter.add(2'400);
    orep.rtt.add(18'000);
    orep.covered_packets = 3;
    orep.probe_arms = 2;
    orep.flow_evictions = 1;
    util::ByteWriter ow;
    capture::encode_offload_report(orep, ow);
    std::vector<std::uint8_t> codec;
    codec.push_back(1);  // selector: codec
    codec.insert(codec.end(), ow.view().begin(), ow.view().end());
    write_seed(root / "fuzz_offload", "report.bin", codec);

    std::vector<std::uint8_t> frame;
    frame.push_back(2);  // selector: field extraction
    frame.insert(frame.end(), frame1.data.begin(), frame1.data.end());
    write_seed(root / "fuzz_offload", "covered_frame.bin", frame);
  }

  // fuzz_query: [selector u8] routes 0 -> journal file image, 1 ->
  // record payload, 2 -> query-request text, 3 -> MANIFEST text. Seeds:
  // a sealed two-record journal and its unsealed (scan-path) twin, one
  // encoded record, and canonical request/manifest text, so the fuzzer
  // starts past the CRC framing and the header grammar.
  {
    query::EpochSlice slice;
    slice.seq = 0;
    slice.packets = 500;
    slice.first_us = 1'700'000'000'000'000;
    slice.last_us = slice.first_us + 5'000'000;

    query::MeetingRow meeting;
    meeting.meeting_key =
        (std::uint64_t{net::Ipv4Addr(10, 8, 1, 20).value()} << 16) | 52'000;
    meeting.stream_rows = 1;
    meeting.participants = 2;
    meeting.first_us = slice.first_us;
    meeting.last_us = slice.last_us;
    meeting.sfu_rtt_us.add(12'000);
    slice.meetings.push_back(meeting);

    query::StreamRow stream;
    net::FiveTuple t{net::Ipv4Addr(10, 8, 1, 20),
                     net::Ipv4Addr(170, 114, 0, 10), 52'000, 8801, 17};
    stream.flow = net::PackedFlowKey(t);
    stream.ssrc = 17;
    stream.meeting_key = meeting.meeting_key;
    stream.client_ip = net::Ipv4Addr(10, 8, 1, 20).value();
    stream.client_port = 52'000;
    stream.first_us = slice.first_us;
    stream.last_us = slice.last_us;
    stream.media_packets = 480;
    stream.media_payload_bytes = 400'000;
    stream.received = 480;
    stream.unique_packets = 478;
    stream.duplicates = 2;
    stream.frames = 150;
    stream.seconds = 5;
    stream.rtt_us.add(20'000);
    stream.jitter_us.add(900);
    stream.bitrate_kbps.add(640);
    slice.streams.push_back(stream);

    query::EpochSlice slice2 = slice;
    slice2.seq = 1;
    slice2.first_packet = slice.packets;
    slice2.first_us = slice.last_us + 1;
    slice2.last_us = slice2.first_us + 5'000'000;

    const auto journal_bytes = [&](bool finalize) {
      const fs::path tmp = root / "tmp_journal.zpmj";
      query::JournalWriter writer;
      std::string error;
      writer.open(tmp.string(), "lab", 1, &error);
      writer.append(slice, &error);
      writer.append(slice2, &error);
      if (finalize)
        writer.finalize(&error);
      else
        writer.abandon();
      std::ifstream in(tmp, std::ios::binary);
      std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>()};
      fs::remove(tmp);
      return bytes;
    };
    std::vector<std::uint8_t> seed;
    seed.push_back(0);  // selector: journal image
    const auto sealed = journal_bytes(true);
    seed.insert(seed.end(), sealed.begin(), sealed.end());
    write_seed(root / "fuzz_query", "journal_sealed.bin", seed);

    seed.clear();
    seed.push_back(0);
    const auto unsealed = journal_bytes(false);
    seed.insert(seed.end(), unsealed.begin(), unsealed.end());
    write_seed(root / "fuzz_query", "journal_unsealed.bin", seed);

    seed.clear();
    seed.push_back(1);  // selector: record payload
    util::ByteWriter sw;
    query::encode_epoch_slice(slice, sw);
    seed.insert(seed.end(), sw.view().begin(), sw.view().end());
    write_seed(root / "fuzz_query", "slice.bin", seed);

    query::QueryRequest request;
    request.from_us = slice.first_us;
    request.to_us = slice2.last_us;
    request.metric = query::QueryMetric::SfuRtt;
    request.group = query::QueryGroupBy::Meeting;
    request.has_meeting = true;
    request.meeting_key = meeting.meeting_key;
    const std::string spec = query::format_query_request(request);
    seed.assign(1, 2);  // selector: request text
    seed.insert(seed.end(), spec.begin(), spec.end());
    write_seed(root / "fuzz_query", "request.bin", seed);

    query::Manifest manifest;
    manifest.entries.push_back({"journal-lab-000000000000.zpmj", "lab",
                                slice.first_us, slice2.last_us, 2, 2});
    const std::string text = query::format_manifest(manifest);
    seed.assign(1, 3);  // selector: manifest text
    seed.insert(seed.end(), text.begin(), text.end());
    write_seed(root / "fuzz_query", "manifest.bin", seed);
  }

  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
