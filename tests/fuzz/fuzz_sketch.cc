// Differential fuzz target: sketch::FlowTier vs an exact reference.
// The input is an operation stream — [op u8][flow u16le][val u16le]
// repeated — driving absorb / promote / demote / estimate over a small
// flow universe against a std::map of exact per-flow tallies. Checked
// invariants, any violation aborts:
//   * estimates never undercount the exact tally (CM + SpaceSaving are
//     upper-bound structures; promotion/demotion must preserve that),
//   * a promoted flow's carried aggregate never undercounts the exact
//     tally accumulated while the tier owned the flow,
//   * tracked_flows never exceeds the heavy table's capacity and the
//     tier's footprint never moves after construction.
// The low byte of the first word picks the tier budget, so table
// pressure ranges from constant eviction to none.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "net/five_tuple.h"
#include "sketch/sketch.h"

namespace {

zpm::net::PackedFlowKey key_of(std::uint16_t n) {
  zpm::net::FiveTuple t;
  t.src_ip = zpm::net::Ipv4Addr(10, 8, static_cast<std::uint8_t>(n >> 8),
                                static_cast<std::uint8_t>(n));
  t.dst_ip = zpm::net::Ipv4Addr(23, 1, 2, 3);
  t.src_port = 20000;
  t.dst_port = static_cast<std::uint16_t>(30000 + (n & 0xff));
  t.protocol = 17;
  return zpm::net::PackedFlowKey(t.canonical());
}

struct ExactState {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  bool promoted = false;  // currently owned by the (simulated) exact tier
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 1) return 0;
  // Budgets from 1 byte (min tables, constant eviction) to ~1 MiB.
  const std::size_t budget = std::size_t{1} << (data[0] % 21);
  zpm::sketch::FlowTier tier(budget);
  const std::size_t footprint = tier.memory_bytes();

  std::map<std::uint16_t, ExactState> exact;
  std::size_t pos = 1;
  while (pos + 5 <= size) {
    const std::uint8_t op = data[pos];
    const auto flow = static_cast<std::uint16_t>(
        (data[pos + 1] | (data[pos + 2] << 8)) % 512);  // small universe
    const auto val = static_cast<std::uint16_t>(data[pos + 3] |
                                                (data[pos + 4] << 8));
    pos += 5;

    const zpm::net::PackedFlowKey key = key_of(flow);
    const std::uint64_t hash = zpm::net::canonical_flow_hash(key);
    ExactState& ref = exact[flow];

    switch (op % 4) {
      case 0:
      case 1: {  // absorb (weighted: the dominant real-world op)
        if (ref.promoted) break;  // exact tier owns it; tier never sees it
        const auto bytes = static_cast<std::uint32_t>(64 + val % 1450);
        tier.absorb(key, hash, bytes);
        ref.packets += 1;
        ref.bytes += bytes;
        break;
      }
      case 2: {  // promote
        if (ref.promoted) break;
        const zpm::sketch::FlowStats carried = tier.promote(key, hash);
        if (carried.packets < ref.packets || carried.bytes < ref.bytes) {
          std::fprintf(stderr,
                       "sketch promote undercount: flow %u carried %llu/%llu "
                       "exact %llu/%llu\n",
                       flow, static_cast<unsigned long long>(carried.packets),
                       static_cast<unsigned long long>(carried.bytes),
                       static_cast<unsigned long long>(ref.packets),
                       static_cast<unsigned long long>(ref.bytes));
          std::abort();
        }
        // The exact tier takes over with the carried aggregate.
        ref.packets = carried.packets;
        ref.bytes = carried.bytes;
        ref.promoted = true;
        break;
      }
      case 3: {  // demote (only meaningful for promoted flows)
        if (!ref.promoted) break;
        ref.packets += 1;  // pretend the exact tier saw one more packet
        ref.bytes += 64 + val % 1450;
        tier.demote(key, hash,
                    zpm::sketch::FlowStats{ref.packets, ref.bytes});
        ref.promoted = false;
        break;
      }
    }

    const zpm::sketch::FlowStats est = tier.estimate(key, hash);
    if (!ref.promoted &&
        (est.packets < ref.packets || est.bytes < ref.bytes)) {
      std::fprintf(stderr,
                   "sketch estimate undercount: flow %u est %llu/%llu exact "
                   "%llu/%llu\n",
                   flow, static_cast<unsigned long long>(est.packets),
                   static_cast<unsigned long long>(est.bytes),
                   static_cast<unsigned long long>(ref.packets),
                   static_cast<unsigned long long>(ref.bytes));
      std::abort();
    }
  }

  if (tier.memory_bytes() != footprint) {
    std::fprintf(stderr, "sketch tier footprint moved after construction\n");
    std::abort();
  }
  const std::size_t hh = tier.heavy_hitters(16).size();
  if (hh > 16 || tier.tracked_flows() > 512) {
    std::fprintf(stderr, "sketch heavy-hitter bounds violated\n");
    std::abort();
  }
  return 0;
}
