// Fuzz target: STUN message parsing (RFC 5389 header + TLV attributes),
// with a serialize round-trip invariant on success.
#include <cstdint>
#include <span>

#include "proto/stun.h"
#include "util/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  auto msg = zpm::proto::StunMessage::parse({data, size});
  if (!msg) return 0;
  (void)msg->is_request();
  (void)msg->is_success_response();
  zpm::util::ByteWriter w;
  msg->serialize(w);
  auto again = zpm::proto::StunMessage::parse(w.view());
  if (!again) __builtin_trap();
  if (again->type != msg->type ||
      again->attributes.size() != msg->attributes.size()) {
    __builtin_trap();
  }
  return 0;
}
