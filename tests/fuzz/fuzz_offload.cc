// Differential fuzz target for the data-plane metric offload
// (capture/offload.h). The first byte selects the mode:
//
//   0 — update-stream differential: the rest is an operation stream
//       [dir u8][ssrc u8][seq u16le][ts u16le][dt i16le] driving the
//       register-array DataPlaneOffload and the exact-sample
//       OffloadReference over a small stream universe with arbitrary
//       arrival-time deltas (including hostile regressions). The two
//       reports must stay bit-for-bit identical — the scalar histogram
//       update path against its independent loop-based formulation.
//   1 — codec: the rest is a candidate encoded OffloadReport. A decode
//       that succeeds must re-encode to a parse→encode→reparse fixpoint
//       (identical bytes, equal reports); malformed input must be
//       rejected without crashing.
//   2 — field extraction: extract_offload_fields over the raw tail
//       bytes (arbitrary frames) must never crash, and any fields it
//       does accept must drive both implementations identically.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "capture/offload.h"
#include "util/bytes.h"
#include "util/time.h"
#include "zoom/constants.h"

namespace {

[[noreturn]] void die(const char* msg) {
  std::fprintf(stderr, "fuzz_offload: %s\n", msg);
  std::abort();
}

void check_equal(const zpm::capture::DataPlaneOffload& offload,
                 const zpm::capture::OffloadReference& reference) {
  if (!(offload.report() == reference.report()))
    die("register-array report diverged from exact reference");
}

void run_update_stream(const std::uint8_t* data, std::size_t size) {
  zpm::capture::OffloadConfig small;
  small.flow_slots = 1;   // clamped to the 16-slot minimum: constant churn
  small.probe_slots = 1;
  zpm::capture::DataPlaneOffload offload(small);
  zpm::capture::OffloadReference reference(small);

  std::int64_t t = 0;
  std::size_t pos = 0;
  while (pos + 8 <= size) {
    zpm::capture::OffloadFields f;
    f.direction = (data[pos] & 1) ? zpm::zoom::kSfuDirFromSfu
                                  : zpm::zoom::kSfuDirToSfu;
    // Small universes so streams actually revisit slots.
    f.ssrc = 1 + (data[pos + 1] % 24);
    f.media_type = static_cast<std::uint8_t>(
        (data[pos] & 2) ? zpm::zoom::MediaEncapType::Audio
                        : zpm::zoom::MediaEncapType::Video);
    f.seq = static_cast<std::uint16_t>((data[pos + 2] | (data[pos + 3] << 8)) %
                                       64);
    f.rtp_ts = static_cast<std::uint32_t>((data[pos + 4] | (data[pos + 5] << 8)) %
                                          64);
    f.clock_hz = f.media_type ==
                         static_cast<std::uint8_t>(zpm::zoom::MediaEncapType::Audio)
                     ? zpm::zoom::kAudioClockHz
                     : zpm::zoom::kVideoClockHz;
    f.payload_bytes = 100 + data[pos + 1];
    // Signed delta: hostile traces regress timestamps; both paths must
    // clamp identically.
    const auto dt =
        static_cast<std::int16_t>(data[pos + 6] | (data[pos + 7] << 8));
    t += dt;
    pos += 8;

    const auto ts = zpm::util::Timestamp::from_micros(t);
    offload.on_media_packet(ts, f);
    reference.on_media_packet(ts, f);
  }
  check_equal(offload, reference);
}

void run_codec(const std::uint8_t* data, std::size_t size) {
  zpm::util::ByteReader r(std::span(data, size));
  const auto report = zpm::capture::decode_offload_report(r);
  if (!report) return;
  zpm::util::ByteWriter w;
  zpm::capture::encode_offload_report(*report, w);
  const auto bytes = w.take();
  zpm::util::ByteReader r2(bytes);
  const auto again = zpm::capture::decode_offload_report(r2);
  if (!again) die("re-encoded report failed to decode");
  if (!(*again == *report)) die("codec round trip changed the report");
  zpm::util::ByteWriter w2;
  zpm::capture::encode_offload_report(*again, w2);
  if (w2.take() != bytes) die("encode is not a fixpoint");
}

void run_extract(const std::uint8_t* data, std::size_t size) {
  const auto fields =
      zpm::capture::extract_offload_fields(std::span(data, size));
  if (!fields) return;
  zpm::capture::DataPlaneOffload offload;
  zpm::capture::OffloadReference reference{};
  const auto ts = zpm::util::Timestamp::from_micros(1000);
  offload.on_media_packet(ts, *fields);
  reference.on_media_packet(ts, *fields);
  check_equal(offload, reference);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 1) return 0;
  switch (data[0] % 3) {
    case 0:
      run_update_stream(data + 1, size - 1);
      break;
    case 1:
      run_codec(data + 1, size - 1);
      break;
    case 2:
      run_extract(data + 1, size - 1);
      break;
  }
  return 0;
}
