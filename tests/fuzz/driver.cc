// Standalone fuzz driver for toolchains without libFuzzer (gcc).
//
// Links against the same LLVMFuzzerTestOneInput entry point clang's
// -fsanitize=fuzzer would drive, providing two modes:
//
//   driver <file-or-dir>...            replay every corpus input once
//   driver -mutate=<s> [-seed=<n>] <corpus>...
//                                      additionally run a deterministic
//                                      random-mutation loop over the
//                                      corpus for <s> wall-clock seconds
//
// The mutation loop is no substitute for coverage-guided fuzzing — it
// exists so the committed corpora keep being exercised (under
// ASan/UBSan, see tests/fuzz/CMakeLists.txt) in environments where only
// gcc is available, and so CI has a smoke mode with a bounded runtime.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void run_one(const std::vector<std::uint8_t>& input) {
  // size 0 must be legal per the libFuzzer contract.
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

/// A few rounds of structure-blind mutation: bit flips, byte
/// overwrites, truncation, insertion and block duplication.
void mutate(std::vector<std::uint8_t>& buf, zpm::util::Rng& rng) {
  std::int64_t rounds = rng.uniform_int(1, 8);
  for (std::int64_t i = 0; i < rounds; ++i) {
    switch (rng.uniform_int(0, 4)) {
      case 0:
        if (!buf.empty()) {
          auto idx = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
          buf[idx] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        }
        break;
      case 1:
        if (!buf.empty()) {
          auto idx = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
          buf[idx] = static_cast<std::uint8_t>(rng.next_u32() >> 24);
        }
        break;
      case 2:
        if (!buf.empty())
          buf.resize(static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1)));
        break;
      case 3: {
        auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size())));
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(idx),
                   static_cast<std::uint8_t>(rng.next_u32() >> 24));
        break;
      }
      case 4:
        if (buf.size() >= 2) {
          auto from = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 2));
          auto len = static_cast<std::size_t>(rng.uniform_int(
              1, static_cast<std::int64_t>(buf.size() - from)));
          std::vector<std::uint8_t> block(buf.begin() + static_cast<std::ptrdiff_t>(from),
                                          buf.begin() +
                                              static_cast<std::ptrdiff_t>(from + len));
          buf.insert(buf.end(), block.begin(), block.end());
        }
        break;
    }
    if (buf.size() > 1 << 20) buf.resize(1 << 20);  // keep execs fast
  }
}

}  // namespace

int main(int argc, char** argv) {
  double mutate_seconds = 0.0;
  std::uint64_t seed = 1;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], "-mutate=", 8)) {
      mutate_seconds = std::atof(argv[i] + 8);
    } else if (!std::strncmp(argv[i], "-seed=", 6)) {
      seed = std::strtoull(argv[i] + 6, nullptr, 10);
    } else {
      std::filesystem::path p(argv[i]);
      std::error_code ec;
      if (std::filesystem::is_directory(p, ec)) {
        for (const auto& entry : std::filesystem::directory_iterator(p))
          if (entry.is_regular_file()) inputs.push_back(entry.path());
      } else {
        inputs.push_back(p);
      }
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [-mutate=<seconds>] [-seed=<n>] <file-or-dir>...\n",
                 argv[0]);
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());  // deterministic replay order

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(inputs.size());
  for (const auto& path : inputs) corpus.push_back(read_file(path));

  std::uint64_t execs = 0;
  for (const auto& input : corpus) {
    run_one(input);
    ++execs;
  }
  std::printf("replayed %zu corpus inputs\n", corpus.size());

  if (mutate_seconds > 0.0) {
    zpm::util::Rng rng(seed);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(mutate_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      // Batch between clock checks; each exec is typically microseconds.
      for (int i = 0; i < 64; ++i) {
        auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(corpus.size()) - 1));
        std::vector<std::uint8_t> input = corpus[pick];
        mutate(input, rng);
        run_one(input);
        ++execs;
      }
    }
    std::printf("mutation loop: %llu total execs in %.1f s (seed %llu)\n",
                static_cast<unsigned long long>(execs), mutate_seconds,
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
