// Fuzz target: the whole analysis pipeline. The input is a record
// stream — [flags u8][len u16le][payload bytes] repeated — where the
// payload becomes the UDP payload of a synthesized frame aimed at the
// analyzer's interesting port/direction combinations (or, in raw mode,
// the whole Ethernet frame). This drives decode_packet, the Zoom
// dissectors, stream/meeting tracking and health accounting together.
#include <cstdint>
#include <vector>

#include "core/analyzer.h"
#include "net/build.h"
#include "util/time.h"

namespace {

using zpm::util::Duration;
using zpm::util::Timestamp;

constexpr zpm::net::Ipv4Addr kCampusHost(10, 8, 0, 1);
constexpr zpm::net::Ipv4Addr kZoomServer(170, 114, 0, 10);  // ServerDb::official
constexpr zpm::net::Ipv4Addr kExternalPeer(23, 1, 2, 3);

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  zpm::core::AnalyzerConfig cfg;
  cfg.quarantine_threshold = 4;  // make the quarantine path reachable
  zpm::core::Analyzer analyzer(cfg);

  Timestamp ts = Timestamp::from_seconds(1000);
  std::size_t pos = 0;
  while (pos + 3 <= size) {
    std::uint8_t flags = data[pos];
    std::size_t len = static_cast<std::size_t>(data[pos + 1]) |
                      (static_cast<std::size_t>(data[pos + 2]) << 8);
    pos += 3;
    if (len > size - pos) len = size - pos;
    std::vector<std::uint8_t> payload(data + pos, data + pos + len);
    pos += len;

    ts = ts + Duration::millis(20);
    if (flags & 0x10) ts = ts - Duration::millis(50);  // regression path

    if (flags & 0x01) {
      // Raw mode: the payload is the whole frame (exercises L2-L4
      // decode failures and their health categories).
      analyzer.offer(zpm::net::RawPacket{ts, std::move(payload)});
      continue;
    }
    std::uint16_t server_port = (flags & 0x02) ? 3478 : 8801;
    bool from_server = flags & 0x04;
    zpm::net::RawPacket pkt;
    if (flags & 0x08) {
      // P2P-shaped: neither endpoint in server space.
      pkt = from_server
                ? zpm::net::build_udp(ts, kExternalPeer, server_port, kCampusHost,
                                      45000, payload)
                : zpm::net::build_udp(ts, kCampusHost, 45000, kExternalPeer,
                                      server_port, payload);
    } else {
      pkt = from_server
                ? zpm::net::build_udp(ts, kZoomServer, server_port, kCampusHost,
                                      45000, payload)
                : zpm::net::build_udp(ts, kCampusHost, 45000, kZoomServer,
                                      server_port, payload);
    }
    analyzer.offer(pkt);
  }
  analyzer.finish();
  return 0;
}
