// Fuzz target for the daemon's durability formats: snapshot files,
// per-epoch report files, and the serialized FlowTier image a snapshot
// carries. The parsers are the daemon's crash-recovery path — they see
// whatever a dying machine left on disk, so they must never crash,
// never read out of bounds (ASan/UBSan), and every accepted input must
// be round-trip stable, checked to a fixpoint:
//   parse(input) = d  =>  parse(encode(d)) = d  and  encode is
//   deterministic (two encodes of d are byte-identical).
// Byte-identity with the *input* is deliberately not required: the
// decoders accept a few non-canonical orderings (sparse-tally order,
// spare key bits) that the encoder never emits.
//
// Input layout: [selector u8][payload...] — the selector routes the
// payload to one of the three parsers, so one corpus covers all of
// them and libFuzzer can cross-pollinate the wrapper framings.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "analysis/snapshot.h"
#include "sketch/sketch.h"
#include "util/bytes.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_snapshot invariant violated: %s\n", what);
  std::abort();
}

void check_snapshot(std::span<const std::uint8_t> payload) {
  zpm::analysis::SnapshotData data;
  if (!zpm::analysis::parse_snapshot(payload, data)) return;
  const auto encoded = zpm::analysis::encode_snapshot(data);
  if (zpm::analysis::encode_snapshot(data) != encoded)
    die("snapshot encode is nondeterministic");
  zpm::analysis::SnapshotData reparsed;
  if (!zpm::analysis::parse_snapshot(encoded, reparsed))
    die("encoded snapshot does not parse");
  if (!(reparsed == data)) die("snapshot round trip changed the data");
}

void check_epoch_file(std::span<const std::uint8_t> payload) {
  zpm::analysis::EpochReport report;
  if (!zpm::analysis::parse_epoch_file(payload, report)) return;
  const auto encoded = zpm::analysis::encode_epoch_file(report);
  zpm::analysis::EpochReport reparsed;
  if (!zpm::analysis::parse_epoch_file(encoded, reparsed))
    die("encoded epoch file does not parse");
  if (!(reparsed == report)) die("epoch file round trip changed the data");
}

void check_flow_tier(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return;
  // The tier must match the stored geometry for a restore to succeed,
  // so derive the budget from the payload the same way the daemon
  // does implicitly (first bytes of the image carry it); a mismatched
  // budget exercises the rejection path instead.
  const std::size_t budget = std::size_t{1} << (payload[0] % 21);
  zpm::sketch::FlowTier tier(budget);
  zpm::util::ByteReader r(payload.subspan(1));
  if (!tier.deserialize(r)) return;
  zpm::util::ByteWriter w;
  tier.serialize(w);
  const auto image = w.take();
  zpm::sketch::FlowTier restored(budget);
  zpm::util::ByteReader r2(image);
  if (!restored.deserialize(r2)) die("serialized tier does not restore");
  if (r2.remaining() != 0) die("tier restore left trailing bytes");
  zpm::util::ByteWriter w2;
  restored.serialize(w2);
  if (w2.take() != image) die("tier image round trip changed the bytes");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  const std::span<const std::uint8_t> payload(data + 1, size - 1);
  switch (data[0] % 3) {
    case 0: check_snapshot(payload); break;
    case 1: check_epoch_file(payload); break;
    default: check_flow_tier(payload); break;
  }
  return 0;
}
