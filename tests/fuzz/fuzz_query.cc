// Fuzz target for the query layer's untrusted inputs: journal file
// images, record payloads, query-request specs, and MANIFEST text. All
// four face bytes from disk or from the CLI, so they must never crash,
// never read out of bounds (ASan/UBSan), skip-and-account rather than
// abort on corruption, and be round-trip stable where a codec exists:
//   decode(input) = d  =>  decode(encode(d)) = d  and encode is
//   deterministic. Text codecs check the same fixpoint on the
//   canonical form (parse(format(parse(x))) == parse(x)).
//
// Input layout: [selector u8][payload...]:
//   0 -> JournalReader::open_bytes over the payload as a file image
//        (index validation, scan resync, per-record CRC + decode)
//   1 -> decode_epoch_slice over the payload as one record payload
//   2 -> parse_query_request over the payload as text
//   3 -> parse_manifest over the payload as text
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <span>
#include <string_view>

#include "query/query.h"
#include "util/bytes.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_query invariant violated: %s\n", what);
  std::abort();
}

void check_journal_image(std::span<const std::uint8_t> payload) {
  zpm::query::JournalReader reader;
  std::string error;
  if (!reader.open_bytes(payload, &error)) return;

  // Whatever survived validation must be internally consistent: spans
  // ordered, select() over everything covering every record, and each
  // accepted record decoding deterministically to a re-encodable slice.
  const auto& records = reader.records();
  for (std::size_t i = 1; i < records.size(); ++i)
    if (records[i].first_us < records[i - 1].first_us)
      die("records not ordered by first_us");
  const auto all =
      reader.select(std::numeric_limits<std::int64_t>::min(),
                    std::numeric_limits<std::int64_t>::max());
  if (all.first != 0 || all.second != records.size())
    die("full-range select does not cover all records");

  zpm::query::EpochSlice slice;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!reader.read(i, slice)) continue;  // corrupt payload: skip
    if (slice.first_us != records[i].first_us ||
        slice.last_us != records[i].last_us || slice.seq != records[i].seq)
      die("index entry disagrees with decoded record");
    zpm::util::ByteWriter w;
    zpm::query::encode_epoch_slice(slice, w);
    const auto encoded = w.take();
    zpm::util::ByteReader r(encoded);
    zpm::query::EpochSlice reparsed;
    if (!zpm::query::decode_epoch_slice(r, reparsed))
      die("re-encoded record does not decode");
    if (!(reparsed == slice)) die("record round trip changed the data");
    // The meeting dictionary may only point at records that exist.
    for (const auto& meeting : slice.meetings) {
      const auto refs = reader.records_for_meeting(meeting.meeting_key);
      for (const auto ref : refs)
        if (ref >= records.size()) die("dictionary ref out of range");
    }
  }
}

void check_slice_payload(std::span<const std::uint8_t> payload) {
  zpm::util::ByteReader r(payload);
  zpm::query::EpochSlice slice;
  if (!zpm::query::decode_epoch_slice(r, slice)) return;
  zpm::util::ByteWriter w;
  zpm::query::encode_epoch_slice(slice, w);
  const auto encoded = w.take();
  zpm::util::ByteWriter w2;
  zpm::query::encode_epoch_slice(slice, w2);
  if (w2.take() != encoded) die("slice encode is nondeterministic");
  zpm::util::ByteReader r2(encoded);
  zpm::query::EpochSlice reparsed;
  if (!zpm::query::decode_epoch_slice(r2, reparsed))
    die("encoded slice does not decode");
  if (r2.remaining() != 0) die("slice decode left trailing bytes");
  if (!(reparsed == slice)) die("slice round trip changed the data");
}

void check_request_text(std::span<const std::uint8_t> payload) {
  const std::string_view text(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  zpm::query::QueryRequest request;
  if (!zpm::query::parse_query_request(text, request)) return;
  if (request.from_us > request.to_us) die("accepted an empty window");
  const std::string canonical = zpm::query::format_query_request(request);
  zpm::query::QueryRequest reparsed;
  if (!zpm::query::parse_query_request(canonical, reparsed))
    die("canonical request does not parse");
  if (!(reparsed == request)) die("request round trip changed the data");
  if (zpm::query::format_query_request(reparsed) != canonical)
    die("request format is not a fixpoint");
}

void check_manifest_text(std::span<const std::uint8_t> payload) {
  const std::string_view text(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  zpm::query::Manifest manifest;
  if (!zpm::query::parse_manifest(text, manifest)) return;
  const std::string canonical = zpm::query::format_manifest(manifest);
  zpm::query::Manifest reparsed;
  if (!zpm::query::parse_manifest(canonical, reparsed))
    die("canonical manifest does not parse");
  if (!(reparsed == manifest)) die("manifest round trip changed the data");
  if (zpm::query::format_manifest(reparsed) != canonical)
    die("manifest format is not a fixpoint");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  const std::span<const std::uint8_t> payload(data + 1, size - 1);
  switch (data[0] % 4) {
    case 0: check_journal_image(payload); break;
    case 1: check_slice_payload(payload); break;
    case 2: check_request_text(payload); break;
    default: check_manifest_text(payload); break;
  }
  return 0;
}
