// Media source models: frame-size/rate shapes that drive Fig. 15.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/media.h"

namespace zpm::sim {
namespace {

TEST(VideoSource, FrameRateNearConfiguredModes) {
  VideoSource src({}, util::Rng(1));
  double total_s = 0;
  int frames = 0;
  for (int i = 0; i < 2000; ++i) {
    auto f = src.next_frame();
    total_s += f.duration.sec();
    ++frames;
  }
  double fps = frames / total_s;
  // Mix of 28 fps and 14 fps episodes.
  EXPECT_GT(fps, 12.0);
  EXPECT_LT(fps, 30.0);
}

TEST(VideoSource, KeyframesPeriodicAndLarger) {
  VideoSource::Params p;
  p.reduced_mode_fraction = 0.0;
  VideoSource src(p, util::Rng(2));
  std::vector<std::uint32_t> key_sizes, p_sizes;
  for (int i = 0; i < 3000; ++i) {
    auto f = src.next_frame();
    (f.is_keyframe ? key_sizes : p_sizes).push_back(f.size_bytes);
  }
  ASSERT_GT(key_sizes.size(), 5u);
  double key_mean = 0, p_mean = 0;
  for (auto s : key_sizes) key_mean += s;
  for (auto s : p_sizes) p_mean += s;
  key_mean /= static_cast<double>(key_sizes.size());
  p_mean /= static_cast<double>(p_sizes.size());
  EXPECT_GT(key_mean, 3.0 * p_mean);
  // Roughly one keyframe per gop_period (6 s at ~28 fps -> ~1/168).
  double key_frac = static_cast<double>(key_sizes.size()) / 3000.0;
  EXPECT_GT(key_frac, 0.002);
  EXPECT_LT(key_frac, 0.02);
}

TEST(VideoSource, CongestionReducesFpsAndSize) {
  VideoSource::Params p;
  p.reduced_mode_fraction = 0.0;
  VideoSource clear_src(p, util::Rng(3));
  VideoSource cong_src(p, util::Rng(3));
  cong_src.set_congestion(1.0);
  EXPECT_LT(cong_src.current_fps(), clear_src.current_fps());
  double clear_bytes = 0, cong_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    clear_bytes += clear_src.next_frame().size_bytes;
    cong_bytes += cong_src.next_frame().size_bytes;
  }
  EXPECT_LT(cong_bytes, clear_bytes);
}

TEST(VideoSource, MostFramesUnder2kBytes) {
  // Fig. 15c: "the majority of video frames are smaller than 2000 bytes".
  VideoSource src({}, util::Rng(4));
  int small = 0, total = 4000;
  for (int i = 0; i < total; ++i)
    if (src.next_frame().size_bytes < 2000) ++small;
  EXPECT_GT(static_cast<double>(small) / total, 0.5);
}

TEST(AudioSource, AlternatesTalkAndSilence) {
  AudioSource src({}, util::Rng(5));
  int talk = 0, silent = 0, other = 0;
  for (int i = 0; i < 20000; ++i) {
    auto pkt = src.next_packet();
    if (pkt.payload_type == zoom::pt::kAudioSpeaking) ++talk;
    else if (pkt.payload_type == zoom::pt::kAudioSilent) {
      ++silent;
      EXPECT_EQ(pkt.payload_bytes, zoom::kSilentAudioPayloadBytes);
      EXPECT_EQ(pkt.interval.ms(), 160.0);
    } else ++other;
  }
  EXPECT_EQ(other, 0);
  EXPECT_GT(talk, 1000);
  EXPECT_GT(silent, 1000);
}

TEST(AudioSource, MobileUsesPt113Exclusively) {
  AudioSource::Params p;
  p.mobile = true;
  AudioSource src(p, util::Rng(6));
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(src.next_packet().payload_type, zoom::pt::kAudioUnknownMode);
}

TEST(ScreenShareSource, HasMultiSecondGaps) {
  // The source of the zero-fps screen share samples (§6.2).
  ScreenShareSource src({}, util::Rng(7));
  int long_gaps = 0;
  for (int i = 0; i < 2000; ++i)
    if (src.next_frame().gap.sec() > 1.0) ++long_gaps;
  EXPECT_GT(long_gaps, 20);
}

TEST(ScreenShareSource, SlideChangesAreLargeIncrementalSmall) {
  ScreenShareSource src({}, util::Rng(8));
  std::vector<std::uint32_t> sizes;
  for (int i = 0; i < 4000; ++i) sizes.push_back(src.next_frame().frame.size_bytes);
  std::sort(sizes.begin(), sizes.end());
  // Over half under ~500 B, long tail beyond 5 kB (Fig. 15c).
  EXPECT_LT(sizes[sizes.size() / 2], 900u);
  EXPECT_GT(sizes.back(), 5000u);
}

}  // namespace
}  // namespace zpm::sim
