// Stream->meeting grouping heuristic with merging (§4.3 step 2, Figs 8-9).
#include <gtest/gtest.h>

#include "core/meetings.h"

namespace zpm::core {
namespace {

using util::Timestamp;

Timestamp at(double s) { return Timestamp::from_seconds(s); }

TEST(MeetingGrouper, FirstStreamCreatesMeeting) {
  MeetingGrouper g;
  auto id = g.assign(/*media_id=*/1, net::Ipv4Addr(10, 0, 0, 1), 40000, at(10), false);
  EXPECT_EQ(g.meeting_count(), 1u);
  auto meetings = g.meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0]->id, id);
  EXPECT_EQ(meetings[0]->active_participants(), 1u);
  EXPECT_EQ(meetings[0]->stream_count, 1u);
}

TEST(MeetingGrouper, SameClientIpJoinsSameMeeting) {
  MeetingGrouper g;
  auto a = g.assign(1, net::Ipv4Addr(10, 0, 0, 1), 40000, at(10), false);
  auto b = g.assign(2, net::Ipv4Addr(10, 0, 0, 1), 40002, at(11), false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.meeting_count(), 1u);
}

TEST(MeetingGrouper, SameMediaIdLinksDifferentClients) {
  // C1's uplink stream and its copy arriving at C2 share a media id:
  // both clients end up in one meeting (Fig. 8).
  MeetingGrouper g;
  auto a = g.assign(7, net::Ipv4Addr(10, 0, 0, 1), 40000, at(10), false);
  auto b = g.assign(7, net::Ipv4Addr(10, 0, 0, 2), 41000, at(10.1), false);
  EXPECT_EQ(a, b);
  auto meetings = g.meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0]->active_participants(), 2u);
}

TEST(MeetingGrouper, DisjointStreamsStayApart) {
  MeetingGrouper g;
  auto a = g.assign(1, net::Ipv4Addr(10, 0, 0, 1), 40000, at(10), false);
  auto b = g.assign(2, net::Ipv4Addr(10, 0, 0, 2), 41000, at(10), false);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.meeting_count(), 2u);
}

TEST(MeetingGrouper, LateLinkMergesMeetings) {
  // Two meetings form independently, then a stream matching both keys
  // arrives: "the matched meetings are merged".
  MeetingGrouper g;
  auto a = g.assign(1, net::Ipv4Addr(10, 0, 0, 1), 40000, at(10), false);
  auto b = g.assign(2, net::Ipv4Addr(10, 0, 0, 2), 41000, at(11), false);
  ASSERT_NE(a, b);
  // Media 2 (meeting b) now also seen at client 1 (meeting a).
  auto c = g.assign(2, net::Ipv4Addr(10, 0, 0, 1), 40002, at(12), false);
  EXPECT_EQ(g.meeting_count(), 1u);
  EXPECT_EQ(g.resolve(a), g.resolve(b));
  EXPECT_EQ(g.resolve(a), c);
  auto meetings = g.meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0]->media_ids.size(), 2u);
  EXPECT_EQ(meetings[0]->active_participants(), 2u);
  EXPECT_EQ(meetings[0]->stream_count, 3u);
  EXPECT_EQ(meetings[0]->first_seen, at(10));
  EXPECT_EQ(meetings[0]->last_seen, at(12));
}

TEST(MeetingGrouper, P2pPeerEndpointRegistersBothSides) {
  MeetingGrouper g;
  auto a = g.assign(5, net::Ipv4Addr(10, 0, 0, 1), 47000, at(20), true,
                    std::pair{net::Ipv4Addr(98, 0, 0, 9), std::uint16_t{52000}});
  // The off-campus peer later shows up as a client key.
  auto b = g.assign(6, net::Ipv4Addr(98, 0, 0, 9), 52000, at(21), true);
  EXPECT_EQ(g.resolve(a), g.resolve(b));
  auto meetings = g.meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_TRUE(meetings[0]->saw_p2p);
  EXPECT_EQ(meetings[0]->active_participants(), 2u);
}

TEST(MeetingGrouper, NatMergesDistinctMeetings) {
  // Fig. 9 right: two meetings behind one NAT IP are (incorrectly but
  // unavoidably) merged — documented failure mode.
  MeetingGrouper g;
  net::Ipv4Addr nat(10, 0, 0, 99);
  auto a = g.assign(1, nat, 40000, at(10), false);
  auto b = g.assign(2, nat, 45000, at(10.5), false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.meeting_count(), 1u);
}

TEST(MeetingGrouper, RttSamplesAttachToMergedRoot) {
  MeetingGrouper g;
  auto a = g.assign(1, net::Ipv4Addr(10, 0, 0, 1), 40000, at(10), false);
  auto b = g.assign(2, net::Ipv4Addr(10, 0, 0, 2), 41000, at(11), false);
  g.add_rtt_sample(a, metrics::RttSample{at(10.5), util::Duration::millis(20)});
  g.assign(2, net::Ipv4Addr(10, 0, 0, 1), 40002, at(12), false);  // merge
  g.add_rtt_sample(b, metrics::RttSample{at(12.5), util::Duration::millis(30)});
  auto meetings = g.meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0]->rtt_to_sfu.size(), 2u);
}

TEST(MeetingGrouper, ResolveUnknownIdPassesThrough) {
  MeetingGrouper g;
  EXPECT_EQ(g.resolve(12345), 12345u);
}

}  // namespace
}  // namespace zpm::core
