// In-network telemetry + DSCP annotation (§8 extension).
#include <gtest/gtest.h>

#include "capture/inline_telemetry.h"
#include "net/build.h"

namespace zpm::capture {
namespace {

using util::Duration;
using util::Timestamp;

TEST(DataPlaneTelemetry, CountsPacketsAndBytes) {
  DataPlaneTelemetry t(64);
  Timestamp now = Timestamp::from_seconds(1);
  for (int i = 0; i < 50; ++i) {
    t.on_media_packet(now, 0x42, static_cast<std::uint16_t>(i),
                      static_cast<std::uint32_t>(i * 2970), 1000, 90000);
    now += Duration::millis(33);
  }
  auto snap = t.query(0x42);
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->packets, 50u);
  EXPECT_EQ(snap->bytes, 50'000u);
  EXPECT_EQ(snap->seq_gaps, 0u);
  EXPECT_LT(snap->jitter_us, 200u);  // clean pacing -> near-zero jitter
}

TEST(DataPlaneTelemetry, DetectsSequenceGaps) {
  DataPlaneTelemetry t(64);
  Timestamp now = Timestamp::from_seconds(1);
  t.on_media_packet(now, 7, 10, 0, 100, 90000);
  t.on_media_packet(now + Duration::millis(33), 7, 14, 2970, 100, 90000);  // 3 lost
  auto snap = t.query(7);
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->seq_gaps, 3u);
}

TEST(DataPlaneTelemetry, JitterTracksDisplacement) {
  DataPlaneTelemetry t(64);
  Timestamp now = Timestamp::from_seconds(1);
  std::uint32_t ts = 0;
  for (int i = 0; i < 500; ++i) {
    // Alternate ±4 ms arrival error: |D| = 8 ms each step.
    Duration err = Duration::millis(i % 2 == 0 ? 4 : -4);
    t.on_media_packet(now + err, 9, static_cast<std::uint16_t>(i), ts, 100, 90000);
    now += Duration::millis(40);
    ts += 3600;
  }
  auto snap = t.query(9);
  ASSERT_TRUE(snap);
  EXPECT_GT(snap->jitter_us, 5'000u);
  EXPECT_LT(snap->jitter_us, 20'000u);
}

TEST(DataPlaneTelemetry, CollisionEvictsLikeASwitchRegister) {
  DataPlaneTelemetry t(1);  // every stream collides
  Timestamp now = Timestamp::from_seconds(1);
  t.on_media_packet(now, 1, 0, 0, 100, 90000);
  t.on_media_packet(now, 2, 0, 0, 100, 90000);
  EXPECT_FALSE(t.query(1));  // evicted
  ASSERT_TRUE(t.query(2));
  EXPECT_EQ(t.collisions(), 1u);
  EXPECT_EQ(t.residents().size(), 1u);
}

TEST(Dscp, CodepointsByImportance) {
  EXPECT_EQ(dscp_for(zoom::MediaKind::Audio, false), 46);        // EF
  EXPECT_EQ(dscp_for(zoom::MediaKind::Video, false), 34);        // AF41
  EXPECT_EQ(dscp_for(zoom::MediaKind::ScreenShare, false), 18);  // AF21
  EXPECT_EQ(dscp_for(zoom::MediaKind::Video, true), 8);          // FEC -> CS1
}

TEST(Dscp, AnnotateRewritesAndKeepsFrameValid) {
  std::vector<std::uint8_t> payload(40, 0xab);
  auto pkt = net::build_udp(Timestamp::from_seconds(1), net::Ipv4Addr(10, 0, 0, 1),
                            1000, net::Ipv4Addr(10, 0, 0, 2), 2000, payload);
  ASSERT_TRUE(annotate_dscp(pkt, 46));
  auto dscp = read_dscp(pkt);
  ASSERT_TRUE(dscp);
  EXPECT_EQ(*dscp, 46);
  // Frame still parses (checksum fixed).
  auto view = net::decode_packet(pkt);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->ip.dscp_ecn >> 2, 46);
  EXPECT_EQ(view->l4_payload.size(), 40u);
}

TEST(Dscp, RejectsNonIpv4) {
  net::RawPacket junk;
  junk.data.assign(60, 0);
  EXPECT_FALSE(annotate_dscp(junk, 46));
  EXPECT_FALSE(read_dscp(junk));
}

}  // namespace
}  // namespace zpm::capture
