// net::FlatFlowMap / FlatFlowSet: differential testing against the
// std::unordered_{map,set} they replaced in core::Analyzer. The
// replacement's contract is bit-identical observable behavior —
// membership, values, sizes — under any interleaving of insert, update
// and erase, across growth and backward-shift deletion.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/flow_map.h"
#include "util/rng.h"

namespace zpm::net {
namespace {

FiveTuple flow_of(std::uint32_t n) {
  FiveTuple t;
  t.src_ip = Ipv4Addr(10, 8, static_cast<std::uint8_t>(n >> 8),
                      static_cast<std::uint8_t>(n));
  t.dst_ip = Ipv4Addr(52, 84, 1, static_cast<std::uint8_t>(n >> 16));
  t.src_port = static_cast<std::uint16_t>(20000 + (n & 0xff));
  t.dst_port = 8801;
  t.protocol = 17;
  return t.canonical();
}

TEST(FlatFlowMap, MatchesUnorderedMapUnderRandomOps) {
  FlatFlowMap<std::uint32_t> flat;
  std::unordered_map<FiveTuple, std::uint32_t> ref;
  util::Rng rng(17);
  for (int op = 0; op < 20000; ++op) {
    const FiveTuple flow = flow_of(static_cast<std::uint32_t>(rng.uniform_int(0, 999)));
    const double dice = rng.uniform();
    if (dice < 0.5) {
      // Insert-or-increment through operator[] on both.
      ++flat[flow];
      ++ref[flow];
    } else if (dice < 0.75) {
      EXPECT_EQ(flat.erase(flow), ref.erase(flow) > 0) << "op " << op;
    } else {
      const std::uint32_t* got = flat.find(flow);
      auto it = ref.find(flow);
      ASSERT_EQ(got != nullptr, it != ref.end()) << "op " << op;
      if (got != nullptr) EXPECT_EQ(*got, it->second) << "op " << op;
      EXPECT_EQ(flat.contains(flow), ref.contains(flow));
    }
    ASSERT_EQ(flat.size(), ref.size()) << "op " << op;
  }
  // Full sweep: every reference entry present with the right value, and
  // for_each visits exactly the reference population.
  for (const auto& [flow, value] : ref) {
    const std::uint32_t* got = flat.find(flow);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, value);
  }
  std::size_t visited = 0;
  flat.for_each([&](const FiveTuple& flow, const std::uint32_t& value) {
    ++visited;
    auto it = ref.find(flow);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatFlowMap, SurvivesGrowthFromMinimumCapacity) {
  FlatFlowMap<std::uint32_t> flat(1);  // rounds up to the 16 minimum
  constexpr std::uint32_t kFlows = 5000;
  for (std::uint32_t n = 0; n < kFlows; ++n) flat[flow_of(n)] = n;
  EXPECT_EQ(flat.size(), kFlows);
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const std::uint32_t* got = flat.find(flow_of(n));
    ASSERT_NE(got, nullptr) << "flow " << n;
    EXPECT_EQ(*got, n);
  }
}

TEST(FlatFlowMap, BackwardShiftEraseKeepsClusteredChainsProbeable) {
  // Dense population guarantees long probe clusters; erase every third
  // key and verify every survivor remains reachable (the regression a
  // tombstone-free deletion scheme must pass).
  FlatFlowMap<std::uint32_t> flat;
  constexpr std::uint32_t kFlows = 2000;
  for (std::uint32_t n = 0; n < kFlows; ++n) flat[flow_of(n)] = n;
  for (std::uint32_t n = 0; n < kFlows; n += 3) EXPECT_TRUE(flat.erase(flow_of(n)));
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const std::uint32_t* got = flat.find(flow_of(n));
    if (n % 3 == 0) {
      EXPECT_EQ(got, nullptr) << "erased flow " << n << " still present";
    } else {
      ASSERT_NE(got, nullptr) << "survivor flow " << n << " unreachable";
      EXPECT_EQ(*got, n);
    }
  }
}

TEST(FlatFlowSet, MatchesUnorderedSetUnderRandomOps) {
  FlatFlowSet flat;
  std::unordered_set<FiveTuple> ref;
  util::Rng rng(23);
  for (int op = 0; op < 20000; ++op) {
    const FiveTuple flow = flow_of(static_cast<std::uint32_t>(rng.uniform_int(0, 499)));
    if (rng.chance(0.6))
      EXPECT_EQ(flat.insert(flow), ref.insert(flow).second) << "op " << op;
    else
      EXPECT_EQ(flat.erase(flow), ref.erase(flow) > 0) << "op " << op;
    ASSERT_EQ(flat.size(), ref.size()) << "op " << op;
    EXPECT_EQ(flat.contains(flow), ref.contains(flow));
  }
  std::size_t visited = 0;
  flat.for_each([&](const FiveTuple& flow) {
    ++visited;
    EXPECT_TRUE(ref.contains(flow));
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace zpm::net
