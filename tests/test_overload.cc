// The overload governor's contract (src/overload, docs/ROBUSTNESS.md
// §5): the ladder moves at most one level per observation and only
// after a full hysteresis streak; the shedder degrades the least
// valuable work first (Zoom media last, STUN never below L4); governed
// pipelines stay byte-identical to ungoverned ones while calm; injected
// pressure makes every shed decision a pure function of the packet
// sequence; and conservation — offered == admitted + shed(L1..L4) —
// holds exactly on every epoch record.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/epoch.h"
#include "net/pcap.h"
#include "net/trace_source.h"
#include "overload/overload.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/meeting.h"
#include "util/bytes.h"

namespace zpm::overload {
namespace {

GovernorConfig sharp_config() {
  // alpha 1 removes the EWMA lag so the unit tests reason about raw
  // pressure directly; thresholds and streaks keep their defaults.
  GovernorConfig config;
  config.alpha = 1.0;
  return config;
}

TEST(OverloadGovernor, StartsCalmAndHoldsAtZeroPressure) {
  OverloadGovernor gov(sharp_config());
  EXPECT_EQ(gov.level(), 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gov.observe_pressure(0.0), 0);
  EXPECT_EQ(gov.stats().observations, 100u);
  EXPECT_EQ(gov.stats().escalations, 0u);
  EXPECT_EQ(gov.stats().max_level, 0);
}

TEST(OverloadGovernor, EscalatesOneLevelPerFreshStreak) {
  OverloadGovernor gov(sharp_config());  // escalate_after = 2
  // Each level step needs its own `escalate_after` consecutive high
  // observations; the streak resets after every step.
  const int expected[] = {0, 1, 1, 2, 2, 3, 3, 4, 4, 4, 4};
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(gov.observe_pressure(1.0), expected[i]) << "observation " << i;
  EXPECT_EQ(gov.level(), kMaxLevel);
  EXPECT_EQ(gov.stats().escalations, 4u);
  EXPECT_EQ(gov.stats().max_level, kMaxLevel);
}

TEST(OverloadGovernor, RecoversOneLevelPerCalmStreak) {
  OverloadGovernor gov(sharp_config());  // recover_after = 4
  for (int i = 0; i < 8; ++i) gov.observe_pressure(1.0);
  ASSERT_EQ(gov.level(), kMaxLevel);
  int last = kMaxLevel;
  for (int i = 1; i <= 16; ++i) {
    const int level = gov.observe_pressure(0.0);
    EXPECT_GE(last - level, 0) << "level went up under calm";
    EXPECT_LE(last - level, 1) << "recovered more than one step at once";
    // A step down exactly every `recover_after` observations.
    EXPECT_EQ(level, kMaxLevel - i / 4) << "observation " << i;
    last = level;
  }
  EXPECT_EQ(gov.level(), 0);
  EXPECT_EQ(gov.stats().recoveries, 4u);
  EXPECT_EQ(gov.stats().escalations, 4u);  // unchanged by recovery
}

TEST(OverloadGovernor, DeadBandHoldsLevelAndResetsStreaks) {
  OverloadGovernor gov(sharp_config());
  gov.observe_pressure(1.0);
  gov.observe_pressure(1.0);
  ASSERT_EQ(gov.level(), 1);
  // Pressure between the watermarks: level holds forever.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gov.observe_pressure(0.5), 1);
  // The dead band also reset the over-streak: one high observation must
  // not escalate (a boundary flapper cannot bank progress).
  gov.observe_pressure(1.0);
  EXPECT_EQ(gov.level(), 1);
  gov.observe_pressure(0.5);  // back to the dead band: streak resets again
  gov.observe_pressure(1.0);
  EXPECT_EQ(gov.level(), 1);
  gov.observe_pressure(1.0);
  EXPECT_EQ(gov.level(), 2);
}

TEST(OverloadGovernor, EwmaSmoothsASinglePressureSpike) {
  OverloadGovernor gov;  // default alpha 0.4
  gov.observe_pressure(0.0);  // seed the EWMA at calm
  // One saturated observation amid calm: EWMA reaches only 0.4, below
  // the high watermark — no escalation from a lone spike.
  gov.observe_pressure(1.0);
  EXPECT_EQ(gov.level(), 0);
  EXPECT_LT(gov.pressure(), gov.config().high_watermark);
}

TEST(OverloadGovernor, SetConfigPreservesLevelAndCounters) {
  OverloadGovernor gov(sharp_config());
  for (int i = 0; i < 4; ++i) gov.observe_pressure(1.0);
  ASSERT_EQ(gov.level(), 2);
  const auto before = gov.stats();
  GovernorConfig retuned = sharp_config();
  retuned.high_watermark = 0.95;
  retuned.recover_after = 1;
  gov.set_config(retuned);
  EXPECT_EQ(gov.level(), 2);
  EXPECT_EQ(gov.stats().escalations, before.escalations);
  // The retuned thresholds act immediately: one calm observation now
  // recovers a level.
  gov.observe_pressure(0.0);
  EXPECT_EQ(gov.level(), 1);
}

TEST(OverloadGovernor, NormalizeTakesMaxOverSignalsAndPinsOnKernelDrops) {
  OverloadGovernor gov;  // ring_hi 0.5, spins_hi 512, latency_hi 25
  EXPECT_DOUBLE_EQ(gov.normalize({}), 0.0);
  EXPECT_DOUBLE_EQ(gov.normalize({.ring_occupancy = 0.25}), 0.5);
  EXPECT_DOUBLE_EQ(gov.normalize({.ring_occupancy = 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(gov.normalize({.spins_delta = 256}), 0.5);
  EXPECT_DOUBLE_EQ(gov.normalize({.latency_us = 50.0}), 2.0);
  // Max, not sum.
  EXPECT_DOUBLE_EQ(
      gov.normalize({.ring_occupancy = 0.25, .spins_delta = 512}), 1.0);
  // Any kernel drop means the kernel is already losing packets:
  // saturation regardless of the local signals.
  EXPECT_GE(gov.normalize({.kernel_drops_delta = 1}), 1.0);
}

TEST(PressureSchedule, ParsesRangesAndAnswersHalfOpenLookups) {
  PressureSchedule sched;
  ASSERT_TRUE(sched.parse("5000-20000:0.95,30000-40000:1.2"));
  ASSERT_EQ(sched.ranges().size(), 2u);
  EXPECT_DOUBLE_EQ(sched.pressure_at(4999), 0.0);
  EXPECT_DOUBLE_EQ(sched.pressure_at(5000), 0.95);   // begin inclusive
  EXPECT_DOUBLE_EQ(sched.pressure_at(19999), 0.95);
  EXPECT_DOUBLE_EQ(sched.pressure_at(20000), 0.0);   // end exclusive
  EXPECT_DOUBLE_EQ(sched.pressure_at(35000), 1.2);
  // Overlapping ranges take the max.
  PressureSchedule overlap;
  ASSERT_TRUE(overlap.parse("0-10:0.5,5-15:0.8"));
  EXPECT_DOUBLE_EQ(overlap.pressure_at(7), 0.8);
  EXPECT_DOUBLE_EQ(overlap.pressure_at(2), 0.5);
  EXPECT_DOUBLE_EQ(overlap.pressure_at(12), 0.8);
}

TEST(PressureSchedule, RejectsMalformedSpecsAndClears) {
  for (const char* bad :
       {"", "10-5:1", "abc", "1-2", "1-2:", "1-2:x", "1-2:-1", "-5:1",
        "1-2:1,oops", "1-2:1,3-2:1", "1:2-3"}) {
    PressureSchedule sched;
    sched.parse("0-10:1.0");  // pre-populate: a failed parse must clear
    EXPECT_FALSE(sched.parse(bad)) << "spec '" << bad << "'";
    EXPECT_TRUE(sched.empty()) << "spec '" << bad << "'";
  }
}

// --- shedder ----------------------------------------------------------

/// A fake classified run: one packet per entry, verdict/flags/slot/hash
/// laid out directly. The packet bytes are arbitrary (the shedder never
/// parses them, only counts their length).
struct FakeBatch {
  std::vector<std::vector<std::uint8_t>> storage;
  std::vector<net::RawPacketView> run;
  capture::BatchVerdicts verdicts;

  void add(capture::Verdict v, std::uint8_t flags, std::uint32_t slot,
           std::uint64_t hash, std::size_t bytes = 100) {
    storage.emplace_back(bytes, std::uint8_t{0xab});
    run.push_back(net::RawPacketView{
        util::Timestamp::from_seconds(1.0 * static_cast<double>(run.size())),
        storage.back(), static_cast<std::uint32_t>(bytes)});
    verdicts.verdicts.push_back(v);
    verdicts.flags.push_back(flags);
    verdicts.shard.push_back(0);
    verdicts.slot.push_back(slot);
    verdicts.flow_hash.push_back(hash);
  }
};

TEST(LoadShedder, LevelZeroAndEmptyRunsPassUntouched) {
  LoadShedder shedder;
  FakeBatch b;
  b.add(capture::Verdict::Reject, 0, 0, 1);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  EXPECT_FALSE(shedder.apply(0, b.run, &b.verdicts, out_run, out_verdicts));
  EXPECT_FALSE(shedder.apply(1, {}, &b.verdicts, out_run, out_verdicts));
  EXPECT_EQ(shedder.stats().total_packets(), 0u);
}

TEST(LoadShedder, L1ShedsExactlyTheRejects) {
  LoadShedder shedder;
  FakeBatch b;
  b.add(capture::Verdict::Reject, 0, 0, 1);
  b.add(capture::Verdict::Admit, capture::kFlagZoomShaped, 0, 2);
  b.add(capture::Verdict::Reject, 0, 0, 3, 250);
  b.add(capture::Verdict::FullParse, 0, 0, 0);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  ASSERT_TRUE(shedder.apply(1, b.run, &b.verdicts, out_run, out_verdicts));
  ASSERT_EQ(out_run.size(), 2u);
  EXPECT_EQ(out_verdicts.verdicts[0], capture::Verdict::Admit);
  EXPECT_EQ(out_verdicts.verdicts[1], capture::Verdict::FullParse);
  EXPECT_EQ(shedder.stats().l1_packets, 2u);
  EXPECT_EQ(shedder.stats().l2_packets, 0u);
  EXPECT_EQ(shedder.stats().shed_bytes, 350u);
}

TEST(LoadShedder, L2KeepsOrShedsWholeFlowsByHash) {
  LoadShedder shedder;
  // Find one kept and one shed flow hash so the test is self-contained
  // whatever the seed constant.
  std::uint64_t kept_hash = 0, shed_hash = 0;
  for (std::uint64_t h = 1; h < 1000 && (kept_hash == 0 || shed_hash == 0);
       ++h) {
    if (shedder.keep_at_l2(h)) {
      if (kept_hash == 0) kept_hash = h;
    } else if (shed_hash == 0) {
      shed_hash = h;
    }
  }
  ASSERT_NE(kept_hash, 0u);
  ASSERT_NE(shed_hash, 0u);

  FakeBatch b;
  for (int i = 0; i < 5; ++i) b.add(capture::Verdict::Admit, 0, 1, kept_hash);
  for (int i = 0; i < 5; ++i) b.add(capture::Verdict::Admit, 0, 2, shed_hash);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  ASSERT_TRUE(shedder.apply(2, b.run, &b.verdicts, out_run, out_verdicts));
  // Whole-flow decision: every packet of the kept flow survives, every
  // packet of the shed flow is gone.
  ASSERT_EQ(out_run.size(), 5u);
  for (std::size_t i = 0; i < out_run.size(); ++i)
    EXPECT_EQ(out_verdicts.flow_hash[i], kept_hash);
  EXPECT_EQ(shedder.stats().l2_packets, 5u);
}

TEST(LoadShedder, L3SamplesMediaFlowsOneInN) {
  LoadShedder shedder;  // l3_keep_one_in = 4
  FakeBatch b;
  for (int i = 0; i < 12; ++i)
    b.add(capture::Verdict::Admit, capture::kFlagZoomShaped, 7, 42);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  ASSERT_TRUE(shedder.apply(3, b.run, &b.verdicts, out_run, out_verdicts));
  // Keep packet k of the flow iff k % 4 == 0: 12 packets -> 3 kept.
  EXPECT_EQ(out_run.size(), 3u);
  EXPECT_EQ(shedder.stats().l3_packets, 9u);
}

TEST(LoadShedder, StunAndFullParseNeverShedBelowL4) {
  LoadShedder shedder;
  FakeBatch b;
  // STUN-flagged admits arm P2P candidates; FullParse could be anything.
  // Use hash 0 / non-media flags that L2 would otherwise shed.
  for (int i = 0; i < 4; ++i)
    b.add(capture::Verdict::Admit, capture::kFlagStunPort, 0, 12345);
  for (int i = 0; i < 4; ++i) b.add(capture::Verdict::FullParse, 0, 0, 0);
  // Also STUN + zoom-shaped: the STUN flag wins over L3 sampling.
  for (int i = 0; i < 4; ++i)
    b.add(capture::Verdict::Admit,
          capture::kFlagStunPort | capture::kFlagZoomShaped, 3, 99);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  if (shedder.apply(3, b.run, &b.verdicts, out_run, out_verdicts)) {
    EXPECT_EQ(out_run.size(), b.run.size());
  }
  EXPECT_EQ(shedder.stats().total_packets(), 0u);
}

TEST(LoadShedder, L4HeadDropsTheWholeRunEvenWithoutVerdicts) {
  LoadShedder shedder;
  FakeBatch b;
  for (int i = 0; i < 8; ++i) b.add(capture::Verdict::Admit, 0, 0, 1, 150);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  ASSERT_TRUE(shedder.apply(4, b.run, nullptr, out_run, out_verdicts));
  EXPECT_TRUE(out_run.empty());
  EXPECT_EQ(shedder.stats().l4_packets, 8u);
  EXPECT_EQ(shedder.stats().shed_bytes, 8u * 150u);
  EXPECT_EQ(shedder.stats().batches_dropped, 1u);
  // Below L4 with no verdicts there is nothing to key on: pass through.
  EXPECT_FALSE(shedder.apply(2, b.run, nullptr, out_run, out_verdicts));
}

TEST(LoadShedder, ResetFlowStateRestartsL3Counters) {
  LoadShedder shedder;
  FakeBatch b;
  for (int i = 0; i < 4; ++i)
    b.add(capture::Verdict::Admit, capture::kFlagZoomShaped, 0, 42);
  std::vector<net::RawPacketView> out_run;
  capture::BatchVerdicts out_verdicts;
  ASSERT_TRUE(shedder.apply(3, b.run, &b.verdicts, out_run, out_verdicts));
  ASSERT_EQ(out_run.size(), 1u);  // packet 0 of the flow kept
  // After an epoch rotation slot ids restart; so must the counters,
  // or the first packet of the "new" flow in the slot would be shed.
  shedder.reset_flow_state();
  ASSERT_TRUE(shedder.apply(3, b.run, &b.verdicts, out_run, out_verdicts));
  EXPECT_EQ(out_run.size(), 1u);
}

}  // namespace
}  // namespace zpm::overload

// --- end to end through the epoch engine ------------------------------

namespace zpm::analysis {
namespace {

/// One short meeting, loaded once as owned packets (pinned storage).
const std::vector<net::RawPacket>& meeting_packets() {
  static const std::vector<net::RawPacket> packets = [] {
    // PID-unique: parallel ctest workers share /tmp.
    const std::string path = ::testing::TempDir() + "/overload_meeting." +
                             std::to_string(::getpid()) + ".pcap";
    sim::MeetingConfig mc;
    mc.seed = 47;
    mc.start = util::Timestamp::from_seconds(1'700'000'000);
    mc.duration = util::Duration::seconds(20);
    sim::ParticipantConfig a, b, c;
    a.ip = net::Ipv4Addr(10, 8, 1, 20);
    b.ip = net::Ipv4Addr(10, 8, 2, 31);
    c.ip = net::Ipv4Addr(98, 0, 0, 3);
    c.on_campus = false;
    mc.participants = {a, b, c};
    sim::MeetingSim sim(mc);
    net::PcapWriter writer(path);
    while (auto pkt = sim.next_packet()) writer.write(*pkt);
    EXPECT_TRUE(writer.ok());

    std::vector<net::RawPacket> out;
    net::TraceSource source(path);
    EXPECT_TRUE(source.ok());
    while (auto view = source.next()) out.push_back(view->to_owned());
    EXPECT_GT(out.size(), 2000u);
    return out;
  }();
  return packets;
}

/// Same meeting through the hostile fault-injection mix: truncations,
/// bit flips, look-alikes — the byte-identity contract must hold on
/// garbage input too.
const std::vector<net::RawPacket>& hostile_packets() {
  static const std::vector<net::RawPacket> packets = [] {
    sim::MeetingConfig mc;
    mc.seed = 47;
    mc.start = util::Timestamp::from_seconds(1'700'000'000);
    mc.duration = util::Duration::seconds(20);
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 1, 20);
    b.ip = net::Ipv4Addr(98, 0, 0, 3);
    b.on_campus = false;
    mc.participants = {a, b};
    mc.corruption = sim::CorruptorConfig::hostile(1234);
    sim::MeetingSim sim(mc);
    std::vector<net::RawPacket> out;
    while (auto pkt = sim.next_packet()) out.push_back(*pkt);
    EXPECT_GT(out.size(), 500u);
    return out;
  }();
  return packets;
}

std::vector<net::RawPacketView> views_of(const std::vector<net::RawPacket>& pkts) {
  std::vector<net::RawPacketView> views;
  views.reserve(pkts.size());
  for (const auto& p : pkts)
    views.push_back(net::RawPacketView{p.ts, p.data, p.orig_len});
  return views;
}

std::vector<EpochReport> run_epochs(const EpochEngineConfig& config,
                                    const std::vector<net::RawPacket>& pkts,
                                    std::size_t batch) {
  const auto views = views_of(pkts);
  EpochEngine engine(config);
  std::vector<EpochReport> completed;
  for (std::size_t off = 0; off < views.size(); off += batch) {
    const std::size_t n = std::min(batch, views.size() - off);
    engine.offer(std::span<const net::RawPacketView>(views).subspan(off, n),
                 pipeline::BatchLifetime::Pinned, completed);
  }
  if (auto last = engine.flush()) completed.push_back(std::move(*last));
  return completed;
}

std::vector<std::uint8_t> encode(const EpochReport& report) {
  util::ByteWriter w;
  encode_epoch_report(report, w);
  return w.take();
}

EpochEngineConfig base_config() {
  EpochEngineConfig config;
  config.limits.max_packets = 900;
  config.limits.max_span = util::Duration::micros(0);
  // The sketch tier is the one legitimately shard-dependent piece; keep
  // it out so shard-count sweeps can compare byte-for-byte.
  config.flow_memory_budget = 0;
  return config;
}

void expect_identical(const std::vector<EpochReport>& a,
                      const std::vector<EpochReport>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << label << " epoch " << i;
    EXPECT_EQ(encode(a[i]), encode(b[i])) << label << " epoch " << i;
  }
}

TEST(OverloadEpoch, GovernorDisabledVsEnabledAtZeroPressureIsByteIdentical) {
  // "Zero pressure" is pinned with an explicit zero-pressure schedule
  // so the decision path is the injected (wall-clock-free) one; an
  // empty spec would read real latency signals, which are timing-
  // dependent by design.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const bool frontend : {true, false}) {
      EpochEngineConfig off = base_config();
      off.shards = shards;
      off.frontend = frontend;
      EpochEngineConfig on = off;
      on.overload.enabled = true;
      on.overload.inject = "0-1:0.0";

      const std::string label = "shards=" + std::to_string(shards) +
                                " frontend=" + std::to_string(frontend);
      expect_identical(run_epochs(off, meeting_packets(), 512),
                       run_epochs(on, meeting_packets(), 512),
                       "clean " + label);
      expect_identical(run_epochs(off, hostile_packets(), 512),
                       run_epochs(on, hostile_packets(), 512),
                       "hostile " + label);
    }
  }
}

TEST(OverloadEpoch, SerialMatchesShardedUnderForcedOverload) {
  // The shed decisions key on flow hash (L2) and first-sight flow slot
  // (L3) — both shard-count-independent — so governed records stay
  // serial-vs-sharded identical even while actively shedding.
  EpochEngineConfig config = base_config();
  config.overload.enabled = true;
  config.overload.window_packets = 128;
  config.overload.inject = "0-1300:1.0";

  const auto serial = run_epochs(config, meeting_packets(), 512);
  config.shards = 4;
  const auto sharded = run_epochs(config, meeting_packets(), 512);
  expect_identical(serial, sharded, "serial vs 4 shards");

  std::uint64_t shed = 0;
  for (const auto& rep : serial) shed += rep.health.overload_shed_total();
  EXPECT_GT(shed, 0u) << "the injected pressure never shed anything";
}

TEST(OverloadEpoch, ForcedOverloadIsBatchSizeInvariantAndConserved) {
  EpochEngineConfig config = base_config();
  config.overload.enabled = true;
  config.overload.window_packets = 128;
  // Up the ladder to L4 and back down while the trace still has
  // packets: escalations at 256/512/768/1024, recovery later.
  config.overload.inject = "0-1100:1.0";

  const auto baseline = run_epochs(config, meeting_packets(), 4096);
  ASSERT_GT(baseline.size(), 1u);

  // Identical replays — and any batch chopping — produce identical
  // reports and identical shed accounting.
  for (const std::size_t batch : {std::size_t{1}, std::size_t{257}, std::size_t{4096}}) {
    expect_identical(baseline, run_epochs(config, meeting_packets(), batch),
                     "batch=" + std::to_string(batch));
  }

  // Conservation, per epoch record: every offered packet is either in
  // the analyzer totals or in exactly one shed counter.
  std::uint64_t shed_total = 0;
  std::uint32_t max_level = 0;
  for (const auto& rep : baseline) {
    EXPECT_EQ(rep.packets,
              rep.counters.total_packets + rep.health.overload_shed_total())
        << "epoch " << rep.seq;
    shed_total += rep.health.overload_shed_total();
    max_level = std::max(max_level, rep.max_overload_level);
  }
  EXPECT_GT(shed_total, 0u);
  EXPECT_EQ(max_level, 4u) << "the schedule was sized to reach L4";
}

TEST(OverloadEpoch, MediaFlowsAreDegradedLast) {
  // One epoch over the whole trace; window 128 with escalate_after 2
  // puts level transitions at observation indices 256 (L1), 512 (L2),
  // 768 (L3), 1024 (L4).
  EpochEngineConfig config = base_config();
  config.limits.max_packets = 10'000'000;
  config.overload.window_packets = 128;

  const auto plain = run_epochs(config, meeting_packets(), 512);
  ASSERT_EQ(plain.size(), 1u);
  const std::uint64_t media_baseline = plain[0].counters.media_packets;
  ASSERT_GT(media_baseline, 0u);

  // Pressure high through the L2 escalation only (obs 512 is the last
  // high one): rejects and non-candidate flows are shed, media is not.
  EpochEngineConfig l2 = config;
  l2.overload.enabled = true;
  l2.overload.inject = "0-513:1.0";
  const auto capped = run_epochs(l2, meeting_packets(), 512);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].max_overload_level, 2u);
  EXPECT_EQ(capped[0].counters.media_packets, media_baseline)
      << "L1/L2 must not touch Zoom media flows";

  // Keep the pressure through the L3 escalation: media is now sampled.
  EpochEngineConfig l3 = config;
  l3.overload.enabled = true;
  l3.overload.inject = "0-769:1.0";
  const auto degraded = run_epochs(l3, meeting_packets(), 512);
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0].max_overload_level, 3u);
  EXPECT_GT(degraded[0].health.overload_shed_l3, 0u);
  EXPECT_LT(degraded[0].counters.media_packets, media_baseline);
  // Still conserved while degraded.
  EXPECT_EQ(degraded[0].packets, degraded[0].counters.total_packets +
                                     degraded[0].health.overload_shed_total());
}

TEST(OverloadEpoch, EpochRecordCodecRoundTripsOverloadFields) {
  EpochEngineConfig config = base_config();
  config.overload.enabled = true;
  config.overload.window_packets = 128;
  config.overload.inject = "0-1100:1.0";
  const auto reports = run_epochs(config, meeting_packets(), 512);
  ASSERT_FALSE(reports.empty());
  bool saw_overload = false;
  for (const auto& rep : reports) {
    const auto bytes = encode(rep);
    util::ByteReader r(bytes);
    EpochReport decoded;
    ASSERT_TRUE(decode_epoch_report(r, decoded)) << "epoch " << rep.seq;
    EXPECT_TRUE(decoded == rep) << "epoch " << rep.seq;
    if (rep.max_overload_level > 0 || rep.health.overload_shed_total() > 0)
      saw_overload = true;
  }
  EXPECT_TRUE(saw_overload);
}

TEST(OverloadEpoch, ThresholdRetunePreservesLevel) {
  EpochEngineConfig config = base_config();
  config.overload.enabled = true;
  config.overload.window_packets = 128;
  config.overload.inject = "0-600:1.0";
  EpochEngine engine(config);
  const auto views = views_of(meeting_packets());
  std::vector<EpochReport> completed;
  engine.offer(std::span<const net::RawPacketView>(views).subspan(0, 600),
               pipeline::BatchLifetime::Pinned, completed);
  ASSERT_EQ(engine.overload_level(), 2);
  overload::GovernorConfig retuned;
  retuned.high_watermark = 0.99;
  engine.set_overload_thresholds(retuned);
  EXPECT_EQ(engine.overload_level(), 2);
  EXPECT_EQ(engine.config().overload.governor.high_watermark, 0.99);
}

TEST(OverloadPipeline, BoundedPushNeverBlocksAndAccountsEveryShed) {
  // A deliberately wedged consumer: shard 0 sleeps per drained batch,
  // the ring is tiny, and the producer gives up after one retry round.
  // The producer must still complete promptly and every packet must be
  // either processed or accounted in overload_shed_l4.
  pipeline::ParallelAnalyzerConfig config;
  config.analyzer.keep_frames = false;
  config.shards = 2;
  config.ring_capacity = 64;
  config.bounded_push = true;
  config.push_retry_rounds = 1;
  config.fault_slow_shard = 0;
  config.fault_slow_us = 2000;
  pipeline::ParallelAnalyzer analyzer(config);

  const auto views = views_of(meeting_packets());
  std::uint64_t offered = 0;
  constexpr std::size_t kBatch = 256;
  for (int loop = 0; loop < 8; ++loop) {
    for (std::size_t off = 0; off < views.size(); off += kBatch) {
      const std::size_t n = std::min(kBatch, views.size() - off);
      analyzer.offer_batch(
          std::span<const net::RawPacketView>(views).subspan(off, n),
          pipeline::BatchLifetime::Pinned);
      offered += n;
    }
  }
  analyzer.finish();

  EXPECT_GT(analyzer.ring_shed_packets(), 0u)
      << "a 2ms-per-batch consumer with a 64-slot ring never backed up";
  EXPECT_EQ(analyzer.health().overload_shed_l4, analyzer.ring_shed_packets());
  // Conservation: processed + shed == offered, with nothing lost.
  EXPECT_EQ(analyzer.counters().total_packets + analyzer.ring_shed_packets(),
            offered);
}

TEST(OverloadPipeline, SlowShardFaultIsHarmlessUnderBlockingPush) {
  // The fault hook without bounded push: everything still arrives (the
  // producer blocks), results match an unfaulted run.
  pipeline::ParallelAnalyzerConfig config;
  config.analyzer.keep_frames = false;
  config.shards = 2;
  config.ring_capacity = 256;
  pipeline::ParallelAnalyzer plain(config);
  config.fault_slow_shard = 1;
  config.fault_slow_us = 200;
  pipeline::ParallelAnalyzer faulted(config);

  const auto views = views_of(meeting_packets());
  const auto feed = [&](pipeline::ParallelAnalyzer& a) {
    constexpr std::size_t kBatch = 512;
    for (std::size_t off = 0; off < views.size(); off += kBatch) {
      const std::size_t n = std::min(kBatch, views.size() - off);
      a.offer_batch(std::span<const net::RawPacketView>(views).subspan(off, n),
                    pipeline::BatchLifetime::Pinned);
    }
    a.finish();
  };
  feed(plain);
  feed(faulted);
  EXPECT_EQ(plain.counters().total_packets, faulted.counters().total_packets);
  EXPECT_EQ(plain.counters().zoom_packets, faulted.counters().zoom_packets);
  EXPECT_EQ(faulted.ring_shed_packets(), 0u);
}

}  // namespace
}  // namespace zpm::analysis
