// Deterministic RNG: reproducibility and rough distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace zpm::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    auto v = r.uniform_int(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(9);
  EXPECT_EQ(r.uniform_int(4, 4), 4);
  EXPECT_EQ(r.uniform_int(8, 3), 8);  // hi < lo clamps to lo
}

TEST(Rng, NormalMeanAndSpread) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, LognormalMedian) {
  Rng r(17);
  std::vector<double> xs;
  for (int i = 0; i < 5001; ++i) xs.push_back(r.lognormal(100.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 100.0, 8.0);
}

TEST(Rng, ChanceProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(23);
  Rng fork1 = a.fork();
  Rng b(23);
  Rng fork2 = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
}

}  // namespace
}  // namespace zpm::util
