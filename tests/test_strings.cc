// Formatting helpers.
#include <gtest/gtest.h>

#include "util/strings.h"
#include "util/time.h"

namespace zpm::util {
namespace {

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(999), "999 B");
  EXPECT_EQ(human_bytes(1500), "1.5 KB");
  EXPECT_EQ(human_bytes(1'203'000'000'000ull), "1.2 TB");
}

TEST(HumanBitrate, Units) {
  EXPECT_EQ(human_bitrate(500), "500.0 bit/s");
  EXPECT_EQ(human_bitrate(222'900'000), "222.9 Mbit/s");
  EXPECT_EQ(human_bitrate(1.5e9), "1.5 Gbit/s");
}

TEST(Fixed, Decimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(0.62), "62.00%");
  EXPECT_EQ(percent(0.9003, 2), "90.03%");
  EXPECT_EQ(percent(1.0, 1), "100.0%");
}

TEST(WithCommas, GroupsOfThree) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1'846'000'000ull), "1,846,000,000");
}

TEST(ClockLabel, WrapsAroundMidnight) {
  EXPECT_EQ(clock_label(0), "00:00");
  EXPECT_EQ(clock_label(9 * 3600 + 30 * 60), "09:30");
  EXPECT_EQ(clock_label(25 * 3600), "01:00");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(split("x,", ',').size(), 2u);
}

TEST(TimeTypes, DurationArithmetic) {
  auto d = Duration::millis(1500);
  EXPECT_EQ(d.us(), 1'500'000);
  EXPECT_DOUBLE_EQ(d.ms(), 1500.0);
  EXPECT_DOUBLE_EQ(d.sec(), 1.5);
  EXPECT_EQ((d + Duration::millis(500)).sec(), 2.0);
  EXPECT_EQ((d * 2).us(), 3'000'000);
  EXPECT_LT(Duration::millis(10), Duration::millis(20));
}

TEST(TimeTypes, TimestampPcapRoundTrip) {
  auto t = Timestamp::from_pcap(1651752000, 123456);
  EXPECT_EQ(t.pcap_sec(), 1651752000u);
  EXPECT_EQ(t.pcap_usec(), 123456u);
  auto later = t + Duration::seconds(2.5);
  EXPECT_EQ((later - t).ms(), 2500.0);
}

}  // namespace
}  // namespace zpm::util
