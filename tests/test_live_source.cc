// The continuous-source contract: ReplayLiveSource must deliver the
// exact packet sequence of the underlying trace — independent of batch
// size, pacing, loops (up to the documented timestamp shift), stalls
// and skip_to position — and every BatchSource must keep EOF, transient
// idleness and hard errors distinguishable through SourceStatus.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

#include "net/live_source.h"
#include "net/pcap.h"
#include "net/trace_source.h"
#include "sim/meeting.h"

namespace zpm::net {
namespace {

std::string temp_path(const char* name) {
  // PID-unique: parallel ctest workers share /tmp, and a half-written
  // trace under another worker's mmap is a SIGBUS.
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

/// Writes a short simulated meeting to a pcap once; returns its path.
const std::string& meeting_trace() {
  static const std::string path = [] {
    const std::string p = temp_path("live_source_meeting.pcap");
    sim::MeetingConfig mc;
    mc.seed = 11;
    mc.start = util::Timestamp::from_seconds(1'700'000'000);
    mc.duration = util::Duration::seconds(10);
    sim::ParticipantConfig a, b;
    a.ip = Ipv4Addr(10, 8, 1, 20);
    b.ip = Ipv4Addr(10, 8, 2, 31);
    mc.participants = {a, b};
    sim::MeetingSim sim(mc);
    PcapWriter writer(p);
    while (auto pkt = sim.next_packet()) writer.write(*pkt);
    EXPECT_TRUE(writer.ok());
    EXPECT_GT(writer.packets_written(), 100u);
    return p;
  }();
  return path;
}

/// Drains a source to EndOfStream, collecting owned copies.
std::vector<RawPacket> drain(BatchSource& source, std::size_t max_batch) {
  std::vector<RawPacket> all;
  std::vector<RawPacketView> batch;
  for (;;) {
    switch (source.poll_batch(batch, max_batch)) {
      case SourceStatus::Batch:
        for (const auto& v : batch) all.push_back(v.to_owned());
        break;
      case SourceStatus::Idle:
        continue;
      case SourceStatus::EndOfStream:
        return all;
      case SourceStatus::Error:
        ADD_FAILURE() << "unexpected Error: " << source.error();
        return all;
    }
  }
}

void expect_same_packet(const RawPacket& a, const RawPacket& b,
                        std::size_t index) {
  ASSERT_EQ(a.ts.us(), b.ts.us()) << "packet " << index;
  ASSERT_EQ(a.data, b.data) << "packet " << index;
  ASSERT_EQ(a.orig_len, b.orig_len) << "packet " << index;
}

TEST(TraceSourceStatus, BatchesThenEndOfStream) {
  TraceSource source(meeting_trace());
  ASSERT_TRUE(source.ok());
  std::vector<RawPacketView> batch;
  std::uint64_t seen = 0;
  SourceStatus status;
  while ((status = source.poll_batch(batch, 256)) == SourceStatus::Batch) {
    ASSERT_FALSE(batch.empty());
    ASSERT_LE(batch.size(), 256u);
    seen += batch.size();
  }
  EXPECT_EQ(status, SourceStatus::EndOfStream);
  EXPECT_EQ(seen, source.packets_read());
  EXPECT_GT(seen, 0u);
  // EOF is sticky, not an error.
  EXPECT_EQ(source.poll_batch(batch, 256), SourceStatus::EndOfStream);
  EXPECT_TRUE(source.ok());
}

TEST(TraceSourceStatus, GarbageInputIsError) {
  const std::string path = temp_path("live_source_garbage.pcap");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a capture file at all, not even close", f);
    std::fclose(f);
  }
  TraceSource source(path);
  std::vector<RawPacketView> batch;
  EXPECT_EQ(source.poll_batch(batch, 256), SourceStatus::Error);
  EXPECT_FALSE(source.error().empty());
}

TEST(TraceSourceStatus, StatusNamesCoverEnum) {
  EXPECT_EQ(source_status_name(SourceStatus::Batch), "batch");
  EXPECT_EQ(source_status_name(SourceStatus::Idle), "idle");
  EXPECT_EQ(source_status_name(SourceStatus::EndOfStream), "end-of-stream");
  EXPECT_EQ(source_status_name(SourceStatus::Error), "error");
}

TEST(ReplayLiveSource, MatchesTraceExactly) {
  TraceSource trace(meeting_trace());
  ASSERT_TRUE(trace.ok());
  const auto expected = drain(trace, 512);

  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  ReplayLiveSource replay(cfg);
  ASSERT_TRUE(replay.ok()) << replay.error();
  const auto got = drain(replay, 512);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_same_packet(got[i], expected[i], i);
  EXPECT_EQ(replay.packets_read(), expected.size());
}

TEST(ReplayLiveSource, BatchContentIndependentOfBatchSize) {
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  ReplayLiveSource tiny(cfg);
  ReplayLiveSource huge(cfg);
  ASSERT_TRUE(tiny.ok());
  ASSERT_TRUE(huge.ok());
  const auto a = drain(tiny, 7);
  const auto b = drain(huge, 4096);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_packet(a[i], b[i], i);
}

TEST(ReplayLiveSource, LoopsShiftTimestampsByStride) {
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.loops = 3;
  cfg.loop_gap = util::Duration::millis(25);
  ReplayLiveSource replay(cfg);
  ASSERT_TRUE(replay.ok());
  const std::uint64_t per_loop = replay.trace_packets();
  const auto stride = replay.loop_stride();
  EXPECT_GT(stride.us(), 0);

  const auto all = drain(replay, 333);
  ASSERT_EQ(all.size(), 3 * per_loop);
  for (std::size_t i = 0; i < per_loop; ++i) {
    const auto base = all[i].ts;
    EXPECT_EQ(all[per_loop + i].ts.us(), (base + stride).us());
    EXPECT_EQ(all[2 * per_loop + i].ts.us(), (base + stride + stride).us());
    EXPECT_EQ(all[per_loop + i].data, all[i].data);
  }
  // Capture time advances monotonically across the loop seam.
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i].ts.us(), all[i - 1].ts.us()) << "packet " << i;
}

TEST(ReplayLiveSource, SkipToResumesMidLoop) {
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.loops = 2;
  ReplayLiveSource full(cfg);
  ASSERT_TRUE(full.ok());
  const auto all = drain(full, 512);

  // Skip into the middle of the second loop: delivery continues with
  // exactly the packets a continuous run would have produced there.
  const std::uint64_t target = full.trace_packets() + 17;
  ReplayLiveSource skipped(cfg);
  ASSERT_TRUE(skipped.ok());
  ASSERT_TRUE(skipped.skip_to(target));
  EXPECT_EQ(skipped.packets_read(), target);
  const auto rest = drain(skipped, 512);
  ASSERT_EQ(rest.size(), all.size() - target);
  for (std::size_t i = 0; i < rest.size(); ++i)
    expect_same_packet(rest[i], all[target + i], i);
}

TEST(ReplayLiveSource, SkipToBeyondBudgetFails) {
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.loops = 1;
  ReplayLiveSource replay(cfg);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay.skip_to(replay.trace_packets() + 1));
  // End-of-budget itself is a valid position (immediate EndOfStream).
  EXPECT_TRUE(replay.skip_to(replay.trace_packets()));
  std::vector<RawPacketView> batch;
  EXPECT_EQ(replay.poll_batch(batch, 16), SourceStatus::EndOfStream);

  // An infinite loop budget accepts any position.
  cfg.loops = 0;
  ReplayLiveSource infinite(cfg);
  ASSERT_TRUE(infinite.ok());
  EXPECT_TRUE(infinite.skip_to(100 * infinite.trace_packets() + 3));
  EXPECT_EQ(infinite.poll_batch(batch, 16), SourceStatus::Batch);
}

TEST(ReplayLiveSource, StallIsIdleUntilReopen) {
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.stall_after_packets = 40;
  ReplayLiveSource replay(cfg);
  ASSERT_TRUE(replay.ok());

  std::vector<RawPacketView> batch;
  std::uint64_t seen = 0;
  SourceStatus status;
  while ((status = replay.poll_batch(batch, 16)) == SourceStatus::Batch)
    seen += batch.size();
  // The source stalls at the trigger, not at end of data.
  EXPECT_EQ(status, SourceStatus::Idle);
  EXPECT_EQ(seen, 40u);
  EXPECT_TRUE(replay.stalled());
  // Idle is sticky until the watchdog reopens the source.
  EXPECT_EQ(replay.poll_batch(batch, 16), SourceStatus::Idle);

  ASSERT_TRUE(replay.reopen());
  EXPECT_FALSE(replay.stalled());
  EXPECT_EQ(replay.reopen_count(), 1u);
  // One-shot trigger: the replay now runs to the real end of stream.
  const auto rest = drain(replay, 512);
  EXPECT_EQ(seen + rest.size(), replay.trace_packets());
}

TEST(ReplayLiveSource, PacingDelaysButNeverChangesContent) {
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  ReplayLiveSource unpaced(cfg);
  ASSERT_TRUE(unpaced.ok());
  const auto expected = drain(unpaced, 512);

  cfg.pace_pps = 2'000'000.0;  // fast enough to finish promptly
  ReplayLiveSource paced(cfg);
  ASSERT_TRUE(paced.ok());
  // The very first poll starts the pacing clock at zero allowance.
  std::vector<RawPacketView> batch;
  EXPECT_EQ(paced.poll_batch(batch, 512), SourceStatus::Idle);
  const auto got = drain(paced, 512);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_same_packet(got[i], expected[i], i);
}

TEST(ReplayLiveSource, PacingRebasesAfterSkipTo) {
  // Regression: pacing used to grant allowance against the *absolute*
  // position, so a crash-recovery skip_to() deep into the stream left
  // the source Idle for position/pace_pps seconds while the wall clock
  // "caught up". Allowance must be relative to the resume point.
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.loops = 0;               // infinite: any skip target is valid
  cfg.pace_pps = 2'000'000.0;  // fast pace — yet catching up from zero
                               // to the skip target would take ~6 days
  ReplayLiveSource replay(cfg);
  ASSERT_TRUE(replay.ok());
  const std::uint64_t target = std::uint64_t{1} << 40;
  ASSERT_TRUE(replay.skip_to(target));

  std::vector<RawPacketView> batch;
  SourceStatus status = SourceStatus::Idle;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (status == SourceStatus::Idle &&
         std::chrono::steady_clock::now() < deadline)
    status = replay.poll_batch(batch, 64);
  ASSERT_EQ(status, SourceStatus::Batch);
  EXPECT_GT(replay.packets_read(), target);
}

TEST(ReplayLiveSource, PacingRebasesAfterReopen) {
  // Companion to the skip_to re-base: a reopen() after a long stall
  // must not grant a burst of stale catch-up allowance, and must not
  // stall either — the pace clock restarts at the resume position.
  ReplayLiveSourceConfig cfg;
  cfg.path = meeting_trace();
  cfg.stall_after_packets = 8;
  cfg.pace_pps = 2'000'000.0;
  ReplayLiveSource replay(cfg);
  ASSERT_TRUE(replay.ok());
  std::vector<RawPacketView> batch;
  std::uint64_t seen = 0;
  while (!replay.stalled()) {
    // Paced polls interleave Idle with Batch; spin until the stall.
    const SourceStatus status = replay.poll_batch(batch, 4);
    ASSERT_NE(status, SourceStatus::Error);
    if (status == SourceStatus::Batch) seen += batch.size();
  }
  ASSERT_EQ(seen, 8u);
  ASSERT_TRUE(replay.reopen());

  SourceStatus status = SourceStatus::Idle;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (status == SourceStatus::Idle &&
         std::chrono::steady_clock::now() < deadline)
    status = replay.poll_batch(batch, 64);
  ASSERT_EQ(status, SourceStatus::Batch);
  EXPECT_GT(replay.packets_read(), seen);
}

TEST(ReplayLiveSource, MissingTraceIsError) {
  ReplayLiveSourceConfig cfg;
  cfg.path = temp_path("does_not_exist.pcap");
  ReplayLiveSource replay(cfg);
  EXPECT_FALSE(replay.ok());
  EXPECT_FALSE(replay.error().empty());
  std::vector<RawPacketView> batch;
  EXPECT_EQ(replay.poll_batch(batch, 16), SourceStatus::Error);
  EXPECT_FALSE(replay.reopen());
}

TEST(LiveSource, UnavailableBackendFailsCleanly) {
  // No privileges / no such interface: the constructor must fail with a
  // diagnostic, never crash, and reopen() must keep failing cleanly.
  LiveSourceConfig cfg;
  cfg.interface = "zpm-test-no-such-interface0";
  LiveSource source(cfg);
  if (source.ok()) GTEST_SKIP() << "unexpectedly privileged environment";
  EXPECT_FALSE(source.error().empty());
  std::vector<RawPacketView> batch;
  EXPECT_EQ(source.poll_batch(batch, 16), SourceStatus::Error);
  EXPECT_FALSE(source.reopen());
}

}  // namespace
}  // namespace zpm::net
