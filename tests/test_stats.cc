// Running statistics, quantiles, correlation, entropy.
#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace zpm::util {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // classic example
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingleSample) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e(1.0 / 16.0);
  e.add(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);  // first sample initializes
  for (int i = 0; i < 200; ++i) e.add(50.0);
  EXPECT_NEAR(e.value(), 50.0, 0.01);
}

TEST(QuantileSketch, QuantilesAndCdf) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(q.cdf_at(50.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(q.cdf_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q.cdf_at(1000.0), 1.0);
}

TEST(QuantileSketch, CdfCurveIsMonotone) {
  QuantileSketch q;
  for (int i = 0; i < 57; ++i) q.add((i * 37) % 101);
  auto curve = q.cdf_curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(Pearson, PerfectPositiveAndNegative) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedAndDegenerate) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> constant = {5, 5, 5, 5};
  EXPECT_EQ(pearson(x, constant), 0.0);  // zero variance -> undefined -> 0
  EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // x^3: nonlinear, monotone
  EXPECT_LT(pearson(x, y), 1.0);
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(ShannonEntropy, UniformIsMaximal) {
  std::vector<std::size_t> uniform(256, 10);
  EXPECT_NEAR(shannon_entropy(uniform), 8.0, 1e-12);
}

TEST(ShannonEntropy, SingleValueIsZero) {
  std::vector<std::size_t> h(256, 0);
  h[42] = 1000;
  EXPECT_DOUBLE_EQ(shannon_entropy(h), 0.0);
}

TEST(ShannonEntropy, TwoEqualValuesIsOneBit) {
  std::vector<std::size_t> h(256, 0);
  h[0] = 500;
  h[255] = 500;
  EXPECT_NEAR(shannon_entropy(h), 1.0, 1e-12);
}

}  // namespace
}  // namespace zpm::util
