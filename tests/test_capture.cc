// P4 capture filter model, anonymizer, resource accounting (§6.1).
#include <gtest/gtest.h>

#include "capture/filter.h"
#include "net/build.h"
#include "proto/stun.h"
#include "sim/wire.h"

namespace zpm::capture {
namespace {

using util::Duration;
using util::Timestamp;

const net::Ipv4Addr kSfu(170, 114, 0, 10);
const net::Ipv4Addr kZc(170, 114, 0, 200);
const net::Ipv4Addr kClient(10, 8, 0, 1);
const net::Ipv4Addr kPeer(98, 0, 0, 9);

CaptureConfig config(bool anonymize = false) {
  CaptureConfig c;
  c.campus_subnets = {net::Ipv4Subnet(net::Ipv4Addr(10, 8, 0, 0), 16)};
  c.anonymize = anonymize;
  return c;
}

net::RawPacket zoom_media(Timestamp t) {
  static util::Rng rng(1);
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Audio;
  spec.payload_type = zoom::pt::kAudioSpeaking;
  spec.payload_bytes = 80;
  auto inner = sim::build_media_payload(spec, rng);
  auto wrapped = sim::wrap_sfu(inner, 1, false);
  return net::build_udp(t, kClient, 40000, kSfu, 8801, wrapped);
}

TEST(CaptureFilter, PassesZoomIpTrafficDropsRest) {
  CaptureFilter filter(config());
  EXPECT_TRUE(filter.process(zoom_media(Timestamp::from_seconds(1))));
  std::vector<std::uint8_t> data(100, 0xaa);
  auto other = net::build_udp(Timestamp::from_seconds(1), kClient, 1234,
                              net::Ipv4Addr(23, 1, 2, 3), 80, data);
  EXPECT_FALSE(filter.process(other));
  EXPECT_EQ(filter.counters().processed, 2u);
  EXPECT_EQ(filter.counters().passed, 1u);
  EXPECT_EQ(filter.counters().dropped, 1u);
  EXPECT_EQ(filter.counters().zoom_ip_matched, 1u);
}

TEST(CaptureFilter, StatefulP2pDetection) {
  CaptureFilter filter(config());
  Timestamp t = Timestamp::from_seconds(10);
  // Before STUN: the P2P flow is invisible.
  std::vector<std::uint8_t> media(60, 0x10);
  auto p2p = net::build_udp(t, kClient, 47000, kPeer, 52000, media);
  EXPECT_FALSE(filter.process(p2p));
  // STUN exchange arms the registers.
  std::array<std::uint8_t, 12> txn{};
  util::ByteWriter stun;
  proto::make_binding_request(txn).serialize(stun);
  EXPECT_TRUE(filter.process(
      net::build_udp(t + Duration::seconds(1), kClient, 47000, kZc, 3478, stun.view())));
  EXPECT_EQ(filter.counters().stun_observed, 1u);
  // Now the same endpoint's flow passes — both directions.
  auto p2p2 = net::build_udp(t + Duration::seconds(2), kClient, 47000, kPeer, 52000,
                             media);
  EXPECT_TRUE(filter.process(p2p2));
  auto p2p3 = net::build_udp(t + Duration::seconds(2.1), kPeer, 52000, kClient, 47000,
                             media);
  EXPECT_TRUE(filter.process(p2p3));
  EXPECT_EQ(filter.counters().p2p_matched, 2u);
}

TEST(CaptureFilter, P2pRegisterTimesOut) {
  CaptureConfig c = config();
  c.p2p_register_timeout = Duration::seconds(5);
  CaptureFilter filter(c);
  Timestamp t = Timestamp::from_seconds(10);
  std::array<std::uint8_t, 12> txn{};
  util::ByteWriter stun;
  proto::make_binding_request(txn).serialize(stun);
  filter.process(net::build_udp(t, kClient, 47000, kZc, 3478, stun.view()));
  std::vector<std::uint8_t> media(60, 0x10);
  auto late = net::build_udp(t + Duration::seconds(20), kClient, 47000, kPeer, 52000,
                             media);
  EXPECT_FALSE(filter.process(late));
}

TEST(CaptureFilter, ResponseDirectionStunAlsoArms) {
  CaptureFilter filter(config());
  Timestamp t = Timestamp::from_seconds(10);
  std::array<std::uint8_t, 12> txn{};
  util::ByteWriter resp;
  proto::make_binding_response(txn, kClient, 47000).serialize(resp);
  EXPECT_TRUE(filter.process(
      net::build_udp(t, kZc, 3478, kClient, 47000, resp.view())));
  std::vector<std::uint8_t> media(60, 0x10);
  EXPECT_TRUE(filter.process(
      net::build_udp(t + Duration::seconds(1), kClient, 47000, kPeer, 52000, media)));
}

TEST(Anonymizer, DeterministicAndPrefixPreserving) {
  PrefixPreservingAnonymizer anon(0x1234);
  auto a1 = anon.anonymize(net::Ipv4Addr(10, 8, 3, 7));
  auto a2 = anon.anonymize(net::Ipv4Addr(10, 8, 3, 7));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, net::Ipv4Addr(10, 8, 3, 7));
  // /24-sharing inputs share exactly a /24 in output.
  auto b = anon.anonymize(net::Ipv4Addr(10, 8, 3, 99));
  EXPECT_EQ(a1.value() >> 8, b.value() >> 8);
  EXPECT_NE(a1.value() & 0xff, b.value() & 0xff);
  // Different /16 diverges earlier.
  auto c = anon.anonymize(net::Ipv4Addr(10, 9, 3, 7));
  EXPECT_EQ(a1.value() >> 24, c.value() >> 24);  // shares /8... prefix bits
  EXPECT_NE(a1.value() >> 8, c.value() >> 8);
}

TEST(Anonymizer, DifferentKeysDifferentMappings) {
  PrefixPreservingAnonymizer anon1(1), anon2(2);
  EXPECT_NE(anon1.anonymize(net::Ipv4Addr(10, 8, 3, 7)),
            anon2.anonymize(net::Ipv4Addr(10, 8, 3, 7)));
}

TEST(Anonymizer, FrameRewriteKeepsChecksumValid) {
  PrefixPreservingAnonymizer anon(7);
  auto pkt = zoom_media(Timestamp::from_seconds(1));
  anon.anonymize_frame(pkt);
  auto view = net::decode_packet(pkt);
  ASSERT_TRUE(view);  // parse still succeeds => checksum & structure intact
  EXPECT_NE(view->ip.src, kClient);
  EXPECT_NE(view->ip.dst, kSfu);
  EXPECT_EQ(view->udp.dst_port, 8801);  // ports untouched
  // Deterministic: same rewrite again yields the double-anonymized ip,
  // but anonymizing an identical copy matches.
  auto pkt2 = zoom_media(Timestamp::from_seconds(1));
  anon.anonymize_frame(pkt2);
  auto view2 = net::decode_packet(pkt2);
  ASSERT_TRUE(view2);
  EXPECT_EQ(view->ip.src, view2->ip.src);
}

TEST(CaptureFilter, AnonymizedOutputStillGroupsBySubnet) {
  CaptureFilter filter(config(/*anonymize=*/true));
  auto out1 = filter.process(zoom_media(Timestamp::from_seconds(1)));
  ASSERT_TRUE(out1);
  auto view = net::decode_packet(*out1);
  ASSERT_TRUE(view);
  EXPECT_NE(view->ip.src, kClient);
}

TEST(Resources, Table5ShapeHolds) {
  CaptureFilter filter(config());
  auto report = filter.resource_report();
  ASSERT_EQ(report.size(), 3u);
  const auto& ip_match = report[0];
  const auto& p2p = report[1];
  const auto& anon = report[2];
  EXPECT_EQ(ip_match.component, "Zoom IP Match");
  // Stage counts as reported in Table 5.
  EXPECT_EQ(ip_match.stages, 2u);
  EXPECT_EQ(p2p.stages, 7u);
  EXPECT_EQ(anon.stages, 11u);
  // Shape: P2P dominates SRAM and hash units; anonymization dominates
  // instructions; IP match is cheapest everywhere.
  EXPECT_GT(p2p.sram, anon.sram);
  EXPECT_GT(p2p.sram, 0.05);
  EXPECT_GT(p2p.hash_units, anon.hash_units);
  EXPECT_GT(anon.instructions, p2p.instructions);
  EXPECT_LT(ip_match.instructions, p2p.instructions);
  EXPECT_EQ(ip_match.hash_units, 0.0);
  // Everything fits comfortably ("less than 15% of most resources").
  for (const auto& u : report) {
    EXPECT_LT(u.tcam, 0.15);
    EXPECT_LT(u.sram, 0.15);
    EXPECT_LT(u.instructions, 0.15);
    EXPECT_LE(u.hash_units, 0.17);
  }
}

TEST(Resources, EstimateUsageMath) {
  SwitchModel model;
  ComponentSpec spec;
  spec.name = "test";
  spec.stages = 3;
  spec.instructions = 96;  // a quarter of 384
  spec.hash_units = 6;     // half of 12
  spec.registers.push_back(RegisterSpec{"r", 1024, 128});
  auto usage = estimate_usage(spec, model);
  EXPECT_DOUBLE_EQ(usage.instructions, 0.25);
  EXPECT_DOUBLE_EQ(usage.hash_units, 0.5);
  double sram_bits = 1024.0 * 128.0;
  double total = 960.0 * 1024.0 * 128.0;
  EXPECT_DOUBLE_EQ(usage.sram, sram_bits / total);
  EXPECT_EQ(usage.tcam, 0.0);
}

}  // namespace
}  // namespace zpm::capture
