// TextTable rendering and CSV escaping.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace zpm::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"Name", "Count"}, {Align::Left, Align::Right});
  t.row({"video", "100"});
  t.row({"a", "5"});
  std::string out = t.render();
  EXPECT_NE(out.find("Name   Count\n"), std::string::npos);
  EXPECT_NE(out.find("video    100"), std::string::npos);
  EXPECT_NE(out.find("a          5"), std::string::npos);
}

TEST(TextTable, SeparatorAndShortRows) {
  TextTable t;
  t.header({"A", "B", "C"});
  t.row({"1"});
  t.separator();
  t.row({"2", "3", "4"});
  std::string out = t.render();
  // Three lines of dashes: one under the header, one separator.
  std::size_t dashes = 0;
  std::istringstream stream(out);
  std::string line;
  while (std::getline(stream, line))
    if (!line.empty() && line.find_first_not_of("- ") == std::string::npos) ++dashes;
  EXPECT_EQ(dashes, 2u);
}

TEST(TextTable, EmptyRendersEmpty) {
  TextTable t;
  EXPECT_TRUE(t.render().empty());
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  // PID-unique: parallel ctest workers share /tmp.
  std::string path = ::testing::TempDir() + "/zpm_csv_test." +
                     std::to_string(::getpid()) + ".csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.row({"plain", "with,comma", "with\"quote", "multi\nline"});
    csv.row_numeric({1.5, 2.0}, 2);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  EXPECT_NE(content.find("plain,\"with,comma\",\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(content.find("1.50,2.00"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zpm::util
