// Campus run driver and table builders.
#include <gtest/gtest.h>

#include "analysis/campus_run.h"
#include "analysis/tables.h"

namespace zpm::analysis {
namespace {

const CampusRunResult& small_run() {
  static const CampusRunResult result = [] {
    CampusRunConfig config;
    config.campus.seed = 99;
    config.campus.duration = util::Duration::seconds(2 * 3600.0);
    config.campus.meetings_per_peak_hour = 4.0;
    config.campus.background_ratio = 1.5;
    config.frame_sample_every = 2;
    return run_campus(config);
  }();
  return result;
}

TEST(CampusRun, PipelineEndToEnd) {
  const auto& r = small_run();
  EXPECT_GT(r.sim_summary.meetings, 1u);
  EXPECT_GT(r.capture.processed, 10'000u);
  EXPECT_GT(r.capture.dropped, 1'000u);    // background filtered out
  EXPECT_GT(r.counters.media_packets, 5'000u);
  EXPECT_GT(r.stream_count, 4u);
  EXPECT_GE(r.meeting_count, 1u);
  EXPECT_FALSE(r.samples.empty());
  EXPECT_FALSE(r.all_packet_rate.empty());
  EXPECT_FALSE(r.zoom_packet_rate.empty());
  EXPECT_LT(r.first_packet, r.last_packet);
}

TEST(CampusRun, AnonymizationDoesNotBreakDetection) {
  // The run anonymizes at the filter; the analyzer still must decode
  // essentially every passed packet (prefix preservation at work).
  const auto& r = small_run();
  EXPECT_GT(r.counters.zoom_packets, r.capture.passed * 95 / 100);
}

TEST(CampusRun, ZoomRateBelowTotalRate) {
  const auto& r = small_run();
  double all = 0, zoom = 0;
  for (const auto& bin : r.all_packet_rate) all += bin.total;
  for (const auto& bin : r.zoom_packet_rate) zoom += bin.total;
  EXPECT_GT(all, zoom);
  EXPECT_GT(zoom, 0.0);
}

TEST(CampusRun, MediaRateDominatedByVideo) {
  const auto& r = small_run();
  auto total_for = [&](zoom::MediaKind kind) {
    double total = 0;
    auto it = r.media_rate.find(static_cast<std::uint8_t>(kind));
    if (it == r.media_rate.end()) return 0.0;
    for (const auto& bin : it->second) total += bin.total;
    return total;
  };
  double video = total_for(zoom::MediaKind::Video);
  double audio = total_for(zoom::MediaKind::Audio);
  EXPECT_GT(video, audio * 3.0);  // Fig. 14: video dominates
}

TEST(Tables, Table2RowsSumAndOrder) {
  const auto& r = small_run();
  auto rows = table2_rows(r.counters);
  ASSERT_GE(rows.size(), 4u);
  // Video first (most packets), offsets per Table 2.
  EXPECT_EQ(rows[0].value, 16);
  EXPECT_EQ(rows[0].offset, 24u);
  double pkt_sum = 0;
  for (const auto& row : rows) pkt_sum += row.pct_packets;
  EXPECT_GT(pkt_sum, 0.80);  // >90% decodable in the paper; >80% here
  EXPECT_LE(pkt_sum, 1.0 + 1e-9);
}

TEST(Tables, Table3RowsKnownTypes) {
  const auto& r = small_run();
  auto rows = table3_rows(r.counters);
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows[0].media_type, "Video (16)");
  EXPECT_EQ(rows[0].rtp_pt, 98);
  double sum = 0;
  bool has_silent = false, has_fec = false;
  for (const auto& row : rows) {
    sum += row.pct_packets;
    if (row.description == "silent mode") has_silent = true;
    if (row.description == "FEC") has_fec = true;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);  // denominators are media packets
  EXPECT_TRUE(has_silent);
  EXPECT_TRUE(has_fec);
}

TEST(CampusRun, SamplesCarryDistributionShapes) {
  const auto& r = small_run();
  std::size_t video = 0, audio = 0, screen_zero_fps = 0, screen = 0;
  for (const auto& s : r.samples) {
    auto kind = static_cast<zoom::MediaKind>(s.kind);
    if (kind == zoom::MediaKind::Video) ++video;
    if (kind == zoom::MediaKind::Audio) ++audio;
    if (kind == zoom::MediaKind::ScreenShare) {
      ++screen;
      if (s.frame_rate == 0.0f) ++screen_zero_fps;
    }
  }
  EXPECT_GT(video, 100u);
  EXPECT_GT(audio, 100u);
  if (screen > 100) {
    // Fig. 15b: a noticeable share of screen-share seconds deliver no
    // frame at all.
    EXPECT_GT(static_cast<double>(screen_zero_fps) / static_cast<double>(screen),
              0.03);
  }
}

TEST(CampusRun, ShardedRunMatchesSerial) {
  // analysis_threads routes through pipeline::ParallelAnalyzer; the full
  // driver output (filter + anonymization + extraction included) must
  // not change.
  CampusRunConfig config;
  config.campus.seed = 7;
  config.campus.duration = util::Duration::seconds(900);
  config.campus.meetings_per_peak_hour = 40.0;
  config.campus.background_ratio = 0.5;
  config.frame_sample_every = 2;
  const CampusRunResult serial = run_campus(config);
  config.analysis_threads = 3;
  const CampusRunResult sharded = run_campus(config);

  EXPECT_EQ(serial.counters, sharded.counters);
  EXPECT_EQ(serial.stream_count, sharded.stream_count);
  EXPECT_EQ(serial.media_count, sharded.media_count);
  EXPECT_EQ(serial.meeting_count, sharded.meeting_count);
  EXPECT_EQ(serial.zoom_flow_count, sharded.zoom_flow_count);
  ASSERT_EQ(serial.samples.size(), sharded.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].kind, sharded.samples[i].kind) << i;
    EXPECT_EQ(serial.samples[i].media_bitrate_bps,
              sharded.samples[i].media_bitrate_bps) << i;
    EXPECT_EQ(serial.samples[i].frame_rate, sharded.samples[i].frame_rate) << i;
    EXPECT_EQ(serial.samples[i].avg_frame_bytes,
              sharded.samples[i].avg_frame_bytes) << i;
    EXPECT_EQ(serial.samples[i].jitter_ms, sharded.samples[i].jitter_ms) << i;
  }
  ASSERT_EQ(serial.frame_sizes.size(), sharded.frame_sizes.size());
  for (const auto& [kind, sizes] : serial.frame_sizes) {
    auto it = sharded.frame_sizes.find(kind);
    ASSERT_NE(it, sharded.frame_sizes.end());
    EXPECT_EQ(sizes, it->second);
  }
}

}  // namespace
}  // namespace zpm::analysis
