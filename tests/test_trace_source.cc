// The zero-copy ingest contract: the mapped pcap/pcapng readers behind
// TraceSource must be observably identical to the streaming readers —
// same packets, same timestamps, same error strings, same analyzer
// output — on clean, byte-swapped, nanosecond, corrupted and truncated
// captures.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "net/build.h"
#include "net/pcap.h"
#include "net/pcapng.h"
#include "net/trace_source.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/campus.h"
#include "sim/meeting.h"

namespace zpm::net {
namespace {

using util::Timestamp;

std::string temp_path(const char* name) {
  // PID-unique: parallel ctest workers share /tmp, and a half-written
  // trace under another worker's mmap is a SIGBUS.
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

RawPacket sample_packet(double t, std::uint8_t fill, std::size_t payload = 40) {
  std::vector<std::uint8_t> data(payload, fill);
  return build_udp(Timestamp::from_seconds(t), Ipv4Addr(10, 0, 0, 1), 1111,
                   Ipv4Addr(20, 0, 0, 2), 2222, data);
}

/// Little-endian / big-endian byte emitter for hand-built captures.
struct Emitter {
  std::string buf;
  bool big = false;
  void u16(std::uint16_t v) {
    if (big) {
      buf.push_back(static_cast<char>(v >> 8));
      buf.push_back(static_cast<char>(v));
    } else {
      buf.push_back(static_cast<char>(v));
      buf.push_back(static_cast<char>(v >> 8));
    }
  }
  void u32(std::uint32_t v) {
    if (big) {
      u16(static_cast<std::uint16_t>(v >> 16));
      u16(static_cast<std::uint16_t>(v));
    } else {
      u16(static_cast<std::uint16_t>(v));
      u16(static_cast<std::uint16_t>(v >> 16));
    }
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    for (auto x : b) buf.push_back(static_cast<char>(x));
  }
  void pcap_header(std::uint32_t magic) {
    u32(magic);
    u16(2);
    u16(4);
    u32(0);      // thiszone
    u32(0);      // sigfigs
    u32(65535);  // snaplen
    u32(1);      // LINKTYPE_ETHERNET
  }
  void record(std::uint32_t sec, std::uint32_t frac,
              const std::vector<std::uint8_t>& frame,
              std::optional<std::uint32_t> orig = {}) {
    u32(sec);
    u32(frac);
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(orig ? *orig : static_cast<std::uint32_t>(frame.size()));
    bytes(frame);
  }
};

/// Drains every packet of a streaming reader plus its final state.
struct Drained {
  std::vector<RawPacket> packets;
  bool ok = false;
  std::string error;
};

Drained drain_streaming(const std::string& path) {
  Drained d;
  // The format sniffer mirrors TraceSource's: pcapng magic first.
  auto source = open_capture(path);
  if (source == nullptr) {
    // Classic reader still reports its header error when sniffing fails.
    PcapReader r(path);
    d.ok = r.ok();
    d.error = r.error();
    return d;
  }
  while (auto pkt = source->next()) d.packets.push_back(std::move(*pkt));
  d.ok = source->ok();
  d.error = source->error();
  return d;
}

Drained drain_mapped(const std::string& path, bool use_batch) {
  Drained d;
  TraceSource source(path);
  if (!source.ok()) {
    d.error = source.error();
    return d;
  }
  EXPECT_TRUE(source.mapped()) << path;
  if (use_batch) {
    std::vector<RawPacketView> batch;
    while (source.next_batch(batch, 7) > 0)
      for (const auto& v : batch) d.packets.push_back(v.to_owned());
  } else {
    while (auto v = source.next()) d.packets.push_back(v->to_owned());
  }
  d.ok = source.ok();
  d.error = source.error();
  return d;
}

void expect_same(const std::string& path) {
  Drained streaming = drain_streaming(path);
  for (bool use_batch : {false, true}) {
    SCOPED_TRACE(use_batch ? "next_batch" : "next");
    Drained mapped = drain_mapped(path, use_batch);
    EXPECT_EQ(streaming.ok, mapped.ok);
    EXPECT_EQ(streaming.error, mapped.error);
    ASSERT_EQ(streaming.packets.size(), mapped.packets.size());
    for (std::size_t i = 0; i < streaming.packets.size(); ++i) {
      EXPECT_EQ(streaming.packets[i].ts, mapped.packets[i].ts) << "packet " << i;
      EXPECT_EQ(streaming.packets[i].data, mapped.packets[i].data)
          << "packet " << i;
      EXPECT_EQ(streaming.packets[i].orig_len, mapped.packets[i].orig_len)
          << "packet " << i;
    }
  }
}

TEST(TraceSource, MappedPcapMatchesStreaming) {
  std::string path = temp_path("zpm_ts_clean.pcap");
  {
    PcapWriter writer(path);
    for (int i = 0; i < 50; ++i)
      writer.write(sample_packet(i * 0.25, static_cast<std::uint8_t>(i),
                                 20 + static_cast<std::size_t>(i) * 7));
  }
  expect_same(path);
  std::remove(path.c_str());
}

TEST(TraceSource, MappedPcapMatchesStreamingOnSwappedEndian) {
  std::string path = temp_path("zpm_ts_be.pcap");
  Emitter e;
  e.big = true;
  e.pcap_header(0xa1b2c3d4);
  e.record(100, 250'000, sample_packet(100.25, 0x5a).data);
  e.record(101, 750'000, sample_packet(101.75, 0x5b).data);
  write_file(path, e.buf);
  expect_same(path);
  std::remove(path.c_str());
}

TEST(TraceSource, MappedPcapMatchesStreamingOnNanosecondMagic) {
  std::string path = temp_path("zpm_ts_ns.pcap");
  Emitter e;
  e.pcap_header(0xa1b23c4d);  // nanosecond-resolution magic
  e.record(10, 123'456'789, sample_packet(10.0, 0x11).data);  // → 123457 µs
  e.record(10, 123'456'499, sample_packet(10.0, 0x12).data);  // → 123456 µs
  write_file(path, e.buf);
  expect_same(path);

  // Both readers round to *nearest* microsecond, not truncate.
  TraceSource source(path);
  auto p1 = source.next();
  auto p2 = source.next();
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->ts.us(), 10'123'457);
  EXPECT_EQ(p2->ts.us(), 10'123'456);
  std::remove(path.c_str());
}

TEST(TraceSource, MappedPcapMatchesStreamingOnSnaplenTruncation) {
  std::string path = temp_path("zpm_ts_snap.pcap");
  {
    PcapWriter writer(path, /*snaplen=*/60);
    writer.write(sample_packet(1.0, 0xcc, 500));
  }
  expect_same(path);
  TraceSource source(path);
  auto pkt = source.next();
  ASSERT_TRUE(pkt);
  EXPECT_TRUE(pkt->is_truncated());
  EXPECT_EQ(pkt->data.size(), 60u);
  std::remove(path.c_str());
}

TEST(TraceSource, MappedPcapMatchesStreamingOnTruncatedTail) {
  // Chop the last record at every byte offset: header cut, body cut and
  // clean boundary must all agree with the streaming reader (same
  // packet count, same ok(), same error string).
  Emitter e;
  e.pcap_header(0xa1b2c3d4);
  e.record(1, 0, sample_packet(1.0, 0xaa).data);
  e.record(2, 0, sample_packet(2.0, 0xbb).data);
  const std::string full = e.buf;
  for (std::size_t cut : {std::size_t{1}, std::size_t{5}, std::size_t{15},
                          std::size_t{17}, std::size_t{40}}) {
    ASSERT_LT(cut, full.size());
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::string path = temp_path("zpm_ts_cut.pcap");
    write_file(path, full.substr(0, full.size() - cut));
    expect_same(path);
    std::remove(path.c_str());
  }
}

TEST(TraceSource, MappedPcapMatchesStreamingOnImplausibleRecord) {
  Emitter e;
  e.pcap_header(0xa1b2c3d4);
  e.record(1, 0, sample_packet(1.0, 0xaa).data);
  e.u32(2);
  e.u32(0);
  e.u32(10 * 1024 * 1024);  // 10 MB record: rejected by both readers
  e.u32(10 * 1024 * 1024);
  std::string path = temp_path("zpm_ts_implausible.pcap");
  write_file(path, e.buf);
  expect_same(path);
  std::remove(path.c_str());
}

TEST(TraceSource, MappedPcapMatchesStreamingOnBadHeader) {
  const std::string cases[] = {std::string("NOTPCAPNOTPCAPNOTPCAPNOT"),
                               std::string("\xd4\xc3", 2)};
  for (const std::string& bytes : cases) {
    std::string path = temp_path("zpm_ts_bad.pcap");
    write_file(path, bytes);
    // Too-short files don't sniff as any format; the full-header case
    // must fail with the same pcap-reader story on both paths.
    TraceSource source(path);
    EXPECT_FALSE(source.ok());
    EXPECT_FALSE(source.next().has_value());
    std::remove(path.c_str());
  }
}

/// Builds a minimal pcapng section: SHB + Ethernet IDB + one EPB per
/// frame (little-endian, microsecond ticks).
std::string build_pcapng(const std::vector<RawPacket>& packets) {
  Emitter e;
  e.u32(0x0a0d0d0a);  // SHB
  e.u32(28);
  e.u32(0x1a2b3c4d);
  e.u16(1);
  e.u16(0);
  e.u32(0xffffffff);
  e.u32(0xffffffff);
  e.u32(28);
  e.u32(0x00000001);  // IDB, Ethernet
  e.u32(20);
  e.u16(1);
  e.u16(0);
  e.u32(65535);
  e.u32(20);
  for (const auto& pkt : packets) {
    auto ticks = static_cast<std::uint64_t>(pkt.ts.us());
    std::uint32_t padded = (static_cast<std::uint32_t>(pkt.data.size()) + 3u) & ~3u;
    std::uint32_t len = 32 + padded;
    e.u32(0x00000006);  // EPB
    e.u32(len);
    e.u32(0);
    e.u32(static_cast<std::uint32_t>(ticks >> 32));
    e.u32(static_cast<std::uint32_t>(ticks));
    e.u32(static_cast<std::uint32_t>(pkt.data.size()));
    e.u32(static_cast<std::uint32_t>(pkt.data.size()));
    e.bytes(pkt.data);
    while (e.buf.size() % 4 != 0) e.buf.push_back(0);
    e.u32(len);
  }
  return e.buf;
}

TEST(TraceSource, MappedPcapngMatchesStreaming) {
  std::vector<RawPacket> packets;
  for (int i = 0; i < 20; ++i)
    packets.push_back(sample_packet(i * 0.5, static_cast<std::uint8_t>(i),
                                    30 + static_cast<std::size_t>(i)));
  std::string path = temp_path("zpm_ts_clean.pcapng");
  write_file(path, build_pcapng(packets));
  expect_same(path);

  TraceSource source(path);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source.mapped());
  std::size_t n = 0;
  while (auto v = source.next()) {
    EXPECT_EQ(v->ts, packets[n].ts);
    ++n;
  }
  EXPECT_EQ(n, packets.size());
  std::remove(path.c_str());
}

TEST(TraceSource, MappedPcapngMatchesStreamingOnTruncatedTail) {
  std::vector<RawPacket> packets = {sample_packet(1.0, 0xaa),
                                    sample_packet(2.0, 0xbb)};
  const std::string full = build_pcapng(packets);
  for (std::size_t cut : {std::size_t{1}, std::size_t{6}, std::size_t{20},
                          std::size_t{39}}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    std::string path = temp_path("zpm_ts_cut.pcapng");
    write_file(path, full.substr(0, full.size() - cut));
    expect_same(path);
    std::remove(path.c_str());
  }
}

TEST(TraceSource, ShortFinalPacketReportsSameErrorAcrossFormats) {
  // Regression: a capture whose last packet body is cut short used to
  // read "truncated record body" from the pcap readers but "truncated
  // block body" from pcapng. Operators diffing runs across container
  // formats should see one story: "truncated packet", from every reader
  // (streaming and mapped, next() and next_batch()).
  const std::vector<RawPacket> packets = {sample_packet(1.0, 0xaa),
                                          sample_packet(2.0, 0xbb)};
  Emitter pcap;
  pcap.pcap_header(0xa1b2c3d4);
  pcap.record(1, 0, packets[0].data);
  pcap.record(2, 0, packets[1].data);
  const struct {
    const char* name;
    std::string full;
  } cases[] = {{"zpm_ts_short.pcap", pcap.buf},
               {"zpm_ts_short.pcapng", build_pcapng(packets)}};
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    std::string path = temp_path(c.name);
    // Cut inside the final packet's body (the trailing 4 bytes of a
    // pcapng EPB are its trailer; 10 lands inside the frame for both).
    write_file(path, c.full.substr(0, c.full.size() - 10));
    Drained streaming = drain_streaming(path);
    EXPECT_FALSE(streaming.ok);
    EXPECT_EQ(streaming.error, "truncated packet");
    EXPECT_EQ(streaming.packets.size(), 1u);
    for (bool use_batch : {false, true}) {
      SCOPED_TRACE(use_batch ? "next_batch" : "next");
      Drained mapped = drain_mapped(path, use_batch);
      EXPECT_FALSE(mapped.ok);
      EXPECT_EQ(mapped.error, "truncated packet");
      EXPECT_EQ(mapped.packets.size(), 1u);
    }
    std::remove(path.c_str());
  }
}

TEST(TraceSource, UnrecognizedAndMissingFiles) {
  std::string path = temp_path("zpm_ts.junk");
  write_file(path, "this is not a capture at all");
  TraceSource junk(path);
  EXPECT_FALSE(junk.ok());
  EXPECT_EQ(junk.error(), "unrecognized capture format");
  EXPECT_FALSE(junk.next().has_value());
  std::remove(path.c_str());

  TraceSource missing("/nonexistent/zpm.pcap");
  EXPECT_FALSE(missing.ok());
  EXPECT_FALSE(missing.next().has_value());

  std::string empty = temp_path("zpm_ts.empty");
  write_file(empty, "");
  TraceSource e(empty);
  EXPECT_FALSE(e.ok());
  std::remove(empty.c_str());
}

/// Runs a serial analyzer over a capture file via the given drain and
/// returns it for comparison.
void analyze_file(const std::string& path, bool mapped, core::Analyzer& out) {
  if (mapped) {
    TraceSource source(path);
    ASSERT_TRUE(source.ok()) << source.error();
    ASSERT_TRUE(source.mapped());
    std::vector<RawPacketView> batch;
    while (source.next_batch(batch, 256) > 0)
      for (const auto& v : batch) out.offer(v);
  } else {
    PcapReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    while (auto pkt = reader.next()) out.offer(*pkt);
  }
  out.finish();
}

void expect_analyzer_equivalent(const std::string& path) {
  core::AnalyzerConfig cfg;
  core::Analyzer streaming(cfg);
  analyze_file(path, /*mapped=*/false, streaming);
  core::Analyzer mapped(cfg);
  analyze_file(path, /*mapped=*/true, mapped);

  EXPECT_EQ(streaming.counters(), mapped.counters());
  EXPECT_EQ(streaming.health(), mapped.health());
  EXPECT_EQ(streaming.zoom_flow_count(), mapped.zoom_flow_count());
  EXPECT_EQ(streaming.streams().size(), mapped.streams().size());
  EXPECT_EQ(streaming.streams().media_count(), mapped.streams().media_count());
  EXPECT_EQ(streaming.meetings().meeting_count(),
            mapped.meetings().meeting_count());
  EXPECT_EQ(streaming.sfu_rtt_samples().size(), mapped.sfu_rtt_samples().size());
}

TEST(TraceSource, AnalyzerOutputIdenticalAcrossReadersOnMeetingTrace) {
  sim::MeetingConfig mc;
  mc.seed = 11;
  mc.duration = util::Duration::seconds(30);
  sim::ParticipantConfig a, b;
  a.ip = Ipv4Addr(10, 8, 0, 1);
  b.ip = Ipv4Addr(98, 0, 0, 3);
  b.on_campus = false;
  mc.participants = {a, b};
  auto trace = sim::run_meeting(mc);
  ASSERT_FALSE(trace.empty());

  std::string path = temp_path("zpm_ts_meeting.pcap");
  {
    PcapWriter writer(path);
    for (const auto& pkt : trace) writer.write(pkt);
  }
  expect_same(path);
  expect_analyzer_equivalent(path);
  std::remove(path.c_str());
}

TEST(TraceSource, PinnedBatchesIntoParallelAnalyzerMatchSerial) {
  // The zpm_analyze --threads flow: mapped TraceSource batches offered
  // with Pinned lifetime, the mapping kept alive past finish().
  // Regression test for a use-after-munmap where the source was scoped
  // tighter than the analyzer drain.
  sim::MeetingConfig mc;
  mc.seed = 13;
  mc.duration = util::Duration::seconds(20);
  sim::ParticipantConfig a, b;
  a.ip = Ipv4Addr(10, 8, 0, 1);
  b.ip = Ipv4Addr(10, 8, 0, 2);
  mc.participants = {a, b};
  auto trace = sim::run_meeting(mc);
  std::string path = temp_path("zpm_ts_pinned.pcap");
  {
    PcapWriter writer(path);
    for (const auto& pkt : trace) writer.write(pkt);
  }

  core::AnalyzerConfig cfg;
  core::Analyzer serial(cfg);
  analyze_file(path, /*mapped=*/true, serial);

  pipeline::ParallelAnalyzerConfig par_cfg;
  par_cfg.analyzer = cfg;
  par_cfg.shards = 2;
  pipeline::ParallelAnalyzer par(par_cfg);
  {
    TraceSource source(path);
    ASSERT_TRUE(source.ok()) << source.error();
    ASSERT_TRUE(source.mapped());
    std::vector<RawPacketView> batch;
    while (source.next_batch(batch, 256) > 0)
      par.offer_batch(batch, pipeline::BatchLifetime::Pinned);
    par.finish();  // must complete while the mapping is still alive
  }

  EXPECT_EQ(serial.counters(), par.counters());
  EXPECT_EQ(serial.streams().size(), par.streams().size());
  EXPECT_EQ(serial.meetings().meeting_count(), par.meetings().meeting_count());
  std::remove(path.c_str());
}

TEST(TraceSource, AnalyzerOutputIdenticalAcrossReadersOnCorruptedTrace) {
  // A hostile campus slice (truncations, bit flips, look-alikes): both
  // readers must deliver byte-identical packets, so analyzer health
  // accounting matches category for category.
  sim::CampusConfig cc;
  cc.seed = 77;
  cc.duration = util::Duration::seconds(60);
  cc.meetings_per_peak_hour = 40.0;
  cc.corruption = sim::CorruptorConfig::hostile(0xF00D);
  sim::CampusSimulation campus(cc);
  std::string path = temp_path("zpm_ts_corrupt.pcap");
  {
    PcapWriter writer(path);
    while (auto pkt = campus.next_packet()) writer.write(*pkt);
  }
  expect_same(path);
  expect_analyzer_equivalent(path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zpm::net
