// RTP media-clock mapping (RTCP SRs, §4.2.3) and passive sampling-rate
// recovery (§5.2).
#include <gtest/gtest.h>

#include "metrics/clock_map.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

TEST(RtcpClockMapper, RecoversClockFromTwoReports) {
  RtcpClockMapper m;
  m.on_sender_report(Timestamp::from_seconds(100.0), 0);
  EXPECT_FALSE(m.estimated_clock_hz());
  m.on_sender_report(Timestamp::from_seconds(110.0), 900'000);  // 90 kHz
  auto hz = m.estimated_clock_hz();
  ASSERT_TRUE(hz);
  EXPECT_NEAR(*hz, 90'000.0, 1.0);
}

TEST(RtcpClockMapper, MapsRtpToWall) {
  RtcpClockMapper m;
  m.on_sender_report(Timestamp::from_seconds(100.0), 0);
  m.on_sender_report(Timestamp::from_seconds(101.0), 90'000);
  // Half a second past the last anchor.
  auto wall = m.to_wall(90'000 + 45'000);
  ASSERT_TRUE(wall);
  EXPECT_NEAR(wall->sec(), 101.5, 1e-6);
  // Before the anchor works too.
  auto earlier = m.to_wall(90'000 - 9'000);
  ASSERT_TRUE(earlier);
  EXPECT_NEAR(earlier->sec(), 100.9, 1e-6);
}

TEST(RtcpClockMapper, ExplicitClockOverridesEstimate) {
  RtcpClockMapper m;
  m.on_sender_report(Timestamp::from_seconds(50.0), 48'000);
  auto wall = m.to_wall(48'000 + 24'000, 48'000.0);
  ASSERT_TRUE(wall);
  EXPECT_NEAR(wall->sec(), 50.5, 1e-6);
  // No estimate possible with one report and no explicit clock.
  EXPECT_FALSE(m.to_wall(48'000));
}

TEST(RtcpClockMapper, SurvivesTimestampWrap) {
  RtcpClockMapper m;
  m.on_sender_report(Timestamp::from_seconds(10.0), 0xffff0000u);
  m.on_sender_report(Timestamp::from_seconds(20.0), 0xffff0000u + 900'000);  // wraps
  auto hz = m.estimated_clock_hz();
  ASSERT_TRUE(hz);
  EXPECT_NEAR(*hz, 90'000.0, 1.0);
}

TEST(ClockRateEstimator, RecoversVideoClockPassively) {
  ClockRateEstimator e;
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 12345;
  for (int i = 0; i < 300; ++i) {
    e.add(t, ts);
    t += Duration::millis(33);
    ts += 2970;  // exactly 90 kHz
  }
  auto raw = e.raw_hz();
  ASSERT_TRUE(raw);
  EXPECT_NEAR(*raw, 90'000.0, 100.0);
  auto snapped = e.snapped_hz();
  ASSERT_TRUE(snapped);
  EXPECT_DOUBLE_EQ(*snapped, 90'000.0);
}

TEST(ClockRateEstimator, SnapsNoisyAudioClock) {
  ClockRateEstimator e;
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 0;
  // 48 kHz with ±2 ms arrival noise.
  for (int i = 0; i < 500; ++i) {
    e.add(t + Duration::micros((i % 5) * 400 - 800), ts);
    t += Duration::millis(20);
    ts += 960;
  }
  auto snapped = e.snapped_hz();
  ASSERT_TRUE(snapped);
  EXPECT_DOUBLE_EQ(*snapped, 48'000.0);
}

TEST(ClockRateEstimator, NonStandardRateReturnedRaw) {
  ClockRateEstimator e;
  Timestamp t = Timestamp::from_seconds(0);
  std::uint32_t ts = 0;
  for (int i = 0; i < 100; ++i) {
    e.add(t, ts);
    t += Duration::millis(10);
    ts += 700;  // 70 kHz: not a standard rate
  }
  auto snapped = e.snapped_hz();
  ASSERT_TRUE(snapped);
  EXPECT_NEAR(*snapped, 70'000.0, 200.0);
}

TEST(ClockRateEstimator, InsufficientDataYieldsNothing) {
  ClockRateEstimator e;
  EXPECT_FALSE(e.raw_hz());
  e.add(Timestamp::from_seconds(1), 100);
  e.add(Timestamp::from_seconds(1.01), 200);  // span < 100 ms
  EXPECT_FALSE(e.raw_hz());
}

}  // namespace
}  // namespace zpm::metrics
