// Zoom server subnet matching and the Appendix-B census methodology.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "zoom/server_db.h"

namespace zpm::zoom {
namespace {

TEST(ServerDb, ContainsMergedIntervals) {
  ServerDb db;
  db.add(*net::Ipv4Subnet::parse("10.0.0.0/24"));
  db.add(*net::Ipv4Subnet::parse("10.0.1.0/24"));  // adjacent -> merged
  db.add(*net::Ipv4Subnet::parse("192.168.0.0/16"));
  EXPECT_TRUE(db.contains(net::Ipv4Addr(10, 0, 0, 200)));
  EXPECT_TRUE(db.contains(net::Ipv4Addr(10, 0, 1, 1)));
  EXPECT_FALSE(db.contains(net::Ipv4Addr(10, 0, 2, 1)));
  EXPECT_TRUE(db.contains(net::Ipv4Addr(192, 168, 255, 255)));
  EXPECT_FALSE(db.contains(net::Ipv4Addr(192, 169, 0, 0)));
  EXPECT_EQ(db.address_count(), 512u + 65536u);
}

TEST(ServerDb, OfficialListCoversSimulatorAllocations) {
  const auto& db = ServerDb::official();
  // The simulator draws MMR/ZC addresses from 170.114/16 (Appendix B).
  EXPECT_TRUE(db.contains(net::Ipv4Addr(170, 114, 0, 10)));
  EXPECT_TRUE(db.contains(net::Ipv4Addr(170, 114, 200, 1)));
  EXPECT_FALSE(db.contains(net::Ipv4Addr(8, 8, 8, 8)));
  EXPECT_FALSE(db.contains(net::Ipv4Addr(10, 8, 0, 1)));
  EXPECT_GT(db.address_count(), 100'000u);
}

TEST(ServerNames, ParsesSchemeConformantNames) {
  auto parsed = parse_server_name("zoomny1234mmr.ny.zoom.us");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->location, "ny");
  EXPECT_EQ(parsed->id, 1234);
  EXPECT_EQ(parsed->kind, ServerKind::Mmr);

  auto zc = parse_server_name("zoomam7zc.am.zoom.us");
  ASSERT_TRUE(zc);
  EXPECT_EQ(zc->location, "am");
  EXPECT_EQ(zc->kind, ServerKind::Zc);
}

TEST(ServerNames, RejectsNonConformantNames) {
  EXPECT_FALSE(parse_server_name("www.zoom.us"));
  EXPECT_FALSE(parse_server_name("zoomny12.ny.zoom.us"));        // no type
  EXPECT_FALSE(parse_server_name("zoomnymmr.ny.zoom.us"));       // no id
  EXPECT_FALSE(parse_server_name("zoomny1mmr.ca.zoom.us"));      // loc mismatch
  EXPECT_FALSE(parse_server_name("zoom1ny1mmr.ny.zoom.us"));     // bad loc
  EXPECT_FALSE(parse_server_name("zoomny1mmr.ny.zoom.com"));     // bad suffix
}

TEST(Census, SiteTotalsMatchTable7) {
  const auto& sites = census_sites();
  int mmrs = 0, zcs = 0;
  for (const auto& s : sites) {
    mmrs += s.mmrs;
    zcs += s.zcs;
  }
  EXPECT_EQ(mmrs, 5452);  // Table 7 total MMRs
  EXPECT_EQ(zcs, 256);    // Table 7 total ZCs
  EXPECT_EQ(sites.size(), 14u);
}

TEST(Census, SynthesizeAndTallyReproducesCounts) {
  util::Rng rng(1);
  auto records = synthesize_infrastructure(rng, /*noise_count=*/100);
  EXPECT_EQ(records.size(), 5452u + 256u + 100u);
  auto tallies = census_tally(records);
  // Noise records must be excluded; every site recovered exactly.
  int mmrs = 0, zcs = 0;
  for (const auto& t : tallies) {
    mmrs += t.mmrs;
    zcs += t.zcs;
  }
  EXPECT_EQ(mmrs, 5452);
  EXPECT_EQ(zcs, 256);
  // Ordered by MMR count: California first (1410), New York second.
  ASSERT_GE(tallies.size(), 2u);
  EXPECT_EQ(tallies[0].mmrs, 1410);
  EXPECT_EQ(tallies[1].mmrs, 1280);
}

TEST(Census, AllSynthesizedServerIpsAreInOfficialDb) {
  util::Rng rng(2);
  auto records = synthesize_infrastructure(rng, 0);
  const auto& db = ServerDb::official();
  for (std::size_t i = 0; i < records.size(); i += 97)
    EXPECT_TRUE(db.contains(records[i].ip)) << records[i].ip.to_string();
}

}  // namespace
}  // namespace zpm::zoom
