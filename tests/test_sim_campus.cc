// Campus-day generator: schedule shape, merging, background traffic.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "sim/campus.h"
#include "zoom/server_db.h"

namespace zpm::sim {
namespace {

using util::Duration;
using util::Timestamp;

CampusConfig small_config(std::uint64_t seed = 11) {
  CampusConfig c;
  c.seed = seed;
  c.duration = Duration::seconds(2 * 3600.0);
  c.meetings_per_peak_hour = 6.0;
  c.background_ratio = 1.0;
  return c;
}

TEST(DiurnalWeight, PeaksDuringWorkHoursDipsAtNight) {
  EXPECT_GT(diurnal_weight(10), 0.9);
  EXPECT_GT(diurnal_weight(14), 0.9);
  EXPECT_LT(diurnal_weight(12), diurnal_weight(11));  // lunch dip
  EXPECT_LT(diurnal_weight(3), 0.05);
  EXPECT_LT(diurnal_weight(21), diurnal_weight(16));  // evening decline
}

TEST(CampusSimulation, PacketsOrderedAndMixed) {
  CampusSimulation campus(small_config());
  Timestamp prev = Timestamp::from_micros(0);
  std::uint64_t zoom = 0, bg = 0;
  while (auto pkt = campus.next_packet()) {
    EXPECT_GE(pkt->ts, prev);
    prev = pkt->ts;
    if (campus.last_was_background()) ++bg;
    else ++zoom;
  }
  EXPECT_GT(zoom, 10'000u);
  EXPECT_GT(bg, 1'000u);
  EXPECT_EQ(campus.summary().zoom_packets, zoom);
  EXPECT_EQ(campus.summary().background_packets, bg);
  EXPECT_GE(campus.summary().meetings, 2u);
  EXPECT_GE(campus.summary().participants, 2 * campus.summary().meetings);
}

TEST(CampusSimulation, BackgroundNeverMatchesZoomSubnets) {
  CampusSimulation campus(small_config(12));
  const auto& db = zoom::ServerDb::official();
  int checked = 0;
  while (auto pkt = campus.next_packet()) {
    if (!campus.last_was_background()) continue;
    auto view = net::decode_packet(*pkt);
    ASSERT_TRUE(view);
    EXPECT_FALSE(db.contains(view->ip.src));
    EXPECT_FALSE(db.contains(view->ip.dst));
    if (++checked > 3000) break;
  }
  EXPECT_GT(checked, 100);
}

TEST(CampusSimulation, MeetingConfigsSane) {
  CampusSimulation campus(small_config(13));
  for (const auto& mc : campus.meeting_configs()) {
    EXPECT_GE(mc.participants.size(), 2u);
    EXPECT_TRUE(mc.participants[0].on_campus);  // first always visible
    EXPECT_GE(mc.duration.sec(), 120.0);
    EXPECT_TRUE(zoom::ServerDb::official().contains(mc.sfu_ip));
    EXPECT_TRUE(zoom::ServerDb::official().contains(mc.zone_controller_ip));
    if (mc.p2p_switch_after) EXPECT_EQ(mc.participants.size(), 2u);
  }
}


TEST(CampusSimulation, SubHourDurationStillSchedulesMeetings) {
  CampusConfig c;
  c.seed = 31;
  c.duration = Duration::seconds(900.0);  // 15 minutes
  c.meetings_per_peak_hour = 12.0;
  c.background_ratio = 0.0;
  CampusSimulation campus(c);
  std::uint64_t packets = 0;
  while (campus.next_packet() && packets < 50'000) ++packets;
  EXPECT_GE(campus.summary().meetings, 1u);
  EXPECT_GT(packets, 1'000u);
  // Every meeting fits inside the covered window.
  for (const auto& mc : campus.meeting_configs()) {
    EXPECT_GE(mc.start, c.day_start);
    EXPECT_LE((mc.start + mc.duration).us(), (c.day_start + c.duration).us());
  }
}

TEST(CampusSimulation, DeterministicForFixedSeed) {
  auto run = [] {
    CampusConfig c = small_config(77);
    c.duration = Duration::seconds(1200.0);
    CampusSimulation campus(c);
    std::uint64_t n = 0;
    while (campus.next_packet()) ++n;
    return n;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace zpm::sim
