// Stateful STUN-based P2P detection (§4.1).
#include <gtest/gtest.h>

#include "core/p2p_detector.h"

namespace zpm::core {
namespace {

using util::Duration;
using util::Timestamp;

Timestamp at(double s) { return Timestamp::from_seconds(s); }

TEST(P2pDetector, CandidateWithinTimeout) {
  P2pDetector d(Duration::seconds(60.0));
  net::Ipv4Addr client(10, 8, 0, 5);
  d.on_stun_exchange(at(100), client, 45000);
  EXPECT_TRUE(d.is_candidate(at(110), client, 45000));
  EXPECT_TRUE(d.is_candidate(at(159), client, 45000));
  EXPECT_FALSE(d.is_candidate(at(161), client, 45000));  // expired
  EXPECT_FALSE(d.is_candidate(at(110), client, 45001));  // wrong port
  EXPECT_FALSE(d.is_candidate(at(110), net::Ipv4Addr(10, 8, 0, 6), 45000));
}

TEST(P2pDetector, PacketBeforeStunNotMatched) {
  P2pDetector d;
  net::Ipv4Addr client(10, 8, 0, 5);
  d.on_stun_exchange(at(100), client, 45000);
  EXPECT_FALSE(d.is_candidate(at(99), client, 45000));
}

TEST(P2pDetector, RepeatedStunRefreshesTimeout) {
  P2pDetector d(Duration::seconds(10.0));
  net::Ipv4Addr client(10, 8, 0, 5);
  d.on_stun_exchange(at(100), client, 45000);
  d.on_stun_exchange(at(108), client, 45000);
  EXPECT_TRUE(d.is_candidate(at(117), client, 45000));
}

TEST(P2pDetector, ConfirmedFlowsOutliveTimeout) {
  P2pDetector d(Duration::seconds(5.0));
  net::FiveTuple flow{net::Ipv4Addr(10, 8, 0, 5), net::Ipv4Addr(98, 0, 1, 2),
                      45000, 51000, 17};
  d.confirm_flow(flow);
  EXPECT_TRUE(d.is_confirmed(flow));
  // Both directions are the same confirmed flow.
  EXPECT_TRUE(d.is_confirmed(flow.reversed()));
  EXPECT_EQ(d.confirmed_flows(), 1u);
}

TEST(P2pDetector, ExpireDropsStaleCandidates) {
  P2pDetector d(Duration::seconds(10.0));
  d.on_stun_exchange(at(100), net::Ipv4Addr(1, 1, 1, 1), 1);
  d.on_stun_exchange(at(200), net::Ipv4Addr(2, 2, 2, 2), 2);
  EXPECT_EQ(d.candidates(), 2u);
  d.expire(at(205));
  EXPECT_EQ(d.candidates(), 1u);
}

}  // namespace
}  // namespace zpm::core
