// The epoch engine's determinism contract: rotation is packet-exact —
// epoch records are pure functions of (packet stream, configuration),
// independent of how the stream is chopped into batches — eviction at
// rotation is health-accounted, and the record codec round-trips
// byte-identically and rejects truncation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "analysis/epoch.h"
#include "net/pcap.h"
#include "net/trace_source.h"
#include "sim/meeting.h"

namespace zpm::analysis {
namespace {

/// One short meeting, loaded once as owned packets (pinned storage).
const std::vector<net::RawPacket>& meeting_packets() {
  static const std::vector<net::RawPacket> packets = [] {
    // PID-unique: parallel ctest workers share /tmp.
    const std::string path = ::testing::TempDir() + "/epoch_meeting." +
                             std::to_string(::getpid()) + ".pcap";
    sim::MeetingConfig mc;
    mc.seed = 23;
    mc.start = util::Timestamp::from_seconds(1'700'000'000);
    mc.duration = util::Duration::seconds(20);
    sim::ParticipantConfig a, b, c;
    a.ip = net::Ipv4Addr(10, 8, 1, 20);
    b.ip = net::Ipv4Addr(10, 8, 2, 31);
    c.ip = net::Ipv4Addr(98, 0, 0, 3);
    c.on_campus = false;
    mc.participants = {a, b, c};
    sim::MeetingSim sim(mc);
    net::PcapWriter writer(path);
    while (auto pkt = sim.next_packet()) writer.write(*pkt);
    EXPECT_TRUE(writer.ok());

    std::vector<net::RawPacket> out;
    net::TraceSource source(path);
    EXPECT_TRUE(source.ok());
    while (auto view = source.next()) out.push_back(view->to_owned());
    EXPECT_GT(out.size(), 2000u);
    return out;
  }();
  return packets;
}

std::vector<net::RawPacketView> views_of(const std::vector<net::RawPacket>& pkts) {
  std::vector<net::RawPacketView> views;
  views.reserve(pkts.size());
  for (const auto& p : pkts)
    views.push_back(net::RawPacketView{p.ts, p.data, p.orig_len});
  return views;
}

/// Runs the whole stream through an engine in `batch`-sized chunks and
/// returns every completed epoch (flush included).
std::vector<EpochReport> run_epochs(const EpochEngineConfig& config,
                                    std::size_t batch) {
  const auto views = views_of(meeting_packets());
  EpochEngine engine(config);
  std::vector<EpochReport> completed;
  for (std::size_t off = 0; off < views.size(); off += batch) {
    const std::size_t n = std::min(batch, views.size() - off);
    engine.offer(std::span<const net::RawPacketView>(views).subspan(off, n),
                 pipeline::BatchLifetime::Pinned, completed);
  }
  if (auto last = engine.flush()) completed.push_back(std::move(*last));
  return completed;
}

std::vector<std::uint8_t> encode(const EpochReport& report) {
  util::ByteWriter w;
  encode_epoch_report(report, w);
  return w.take();
}

TEST(EpochEngine, RotationIsPacketExactAcrossBatchSizes) {
  EpochEngineConfig config;
  config.limits.max_packets = 700;
  config.limits.max_span = util::Duration::micros(0);

  const auto baseline = run_epochs(config, 4096);
  ASSERT_GT(baseline.size(), 3u);
  for (std::size_t i = 0; i + 1 < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].packets, 700u) << "epoch " << i;
    EXPECT_EQ(baseline[i].seq, i);
  }
  // Global packet indices tile the stream with no gaps or overlaps.
  std::uint64_t expect_first = 0;
  for (const auto& rep : baseline) {
    EXPECT_EQ(rep.first_packet, expect_first);
    expect_first += rep.packets;
  }
  EXPECT_EQ(expect_first, meeting_packets().size());

  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{3}, std::size_t{257}, std::size_t{701}}) {
    const auto got = run_epochs(config, batch);
    ASSERT_EQ(got.size(), baseline.size()) << "batch " << batch;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(got[i] == baseline[i]) << "batch " << batch << " epoch " << i;
      EXPECT_EQ(encode(got[i]), encode(baseline[i]))
          << "batch " << batch << " epoch " << i;
    }
  }
}

TEST(EpochEngine, ShardedRecordsMatchSerialWithoutSketchTier) {
  // With the sketch tier disabled the records are shard-invariant
  // end-to-end (the tier's eviction pattern is the one legitimately
  // shard-dependent piece — see epoch.h).
  EpochEngineConfig config;
  config.limits.max_packets = 900;
  config.limits.max_span = util::Duration::micros(0);
  config.flow_memory_budget = 0;

  const auto serial = run_epochs(config, 512);
  config.shards = 4;
  const auto sharded = run_epochs(config, 512);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(encode(serial[i]), encode(sharded[i])) << "epoch " << i;
}

TEST(EpochEngine, ShardedAnalyzerFieldsMatchSerialWithSketchTier) {
  EpochEngineConfig config;
  config.limits.max_packets = 900;
  config.limits.max_span = util::Duration::micros(0);

  const auto serial = run_epochs(config, 512);
  config.shards = 4;
  const auto sharded = run_epochs(config, 512);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].counters.zoom_packets, sharded[i].counters.zoom_packets);
    EXPECT_EQ(serial[i].stream_count, sharded[i].stream_count);
    EXPECT_EQ(serial[i].media_count, sharded[i].media_count);
    EXPECT_EQ(serial[i].meeting_count, sharded[i].meeting_count);
    EXPECT_EQ(serial[i].zoom_flow_count, sharded[i].zoom_flow_count);
    EXPECT_EQ(serial[i].packets, sharded[i].packets);
  }
}

TEST(EpochEngine, SpanTriggerRotatesOnCaptureTime) {
  EpochEngineConfig config;
  config.limits.max_packets = 0;
  config.limits.max_span = util::Duration::seconds(5.0);

  const auto epochs = run_epochs(config, 512);
  ASSERT_GE(epochs.size(), 3u);  // 20 s meeting, 5 s windows
  for (std::size_t i = 0; i + 1 < epochs.size(); ++i) {
    // Completed epochs stay within the span; the packet that would
    // stretch past it opens the next epoch instead.
    EXPECT_LT((epochs[i].last_ts - epochs[i].first_ts).us(),
              config.limits.max_span.us())
        << "epoch " << i;
    EXPECT_GE((epochs[i + 1].first_ts - epochs[i].first_ts).us(),
              config.limits.max_span.us())
        << "epoch " << i;
  }
}

TEST(EpochEngine, EvictionIsHealthAccounted) {
  EpochEngineConfig config;
  config.limits.max_packets = 1500;
  config.limits.max_span = util::Duration::micros(0);

  bool saw_flows = false;
  for (const auto& rep : run_epochs(config, 512)) {
    EXPECT_EQ(rep.health.epoch_evicted_flows, rep.zoom_flow_count);
    EXPECT_EQ(rep.health.epoch_evicted_meetings, rep.meeting_count);
    // Nondeterministic gauges are zeroed in the durable record.
    EXPECT_EQ(rep.health.ring_wait_spins, 0u);
    EXPECT_EQ(rep.health.source_stalls, 0u);
    saw_flows = saw_flows || rep.zoom_flow_count > 0;
  }
  EXPECT_TRUE(saw_flows) << "trace produced no Zoom flow state to evict";
}

TEST(EpochEngine, LimitChangeIsImmediateStagedConfigWaits) {
  EpochEngineConfig config;
  config.limits.max_packets = 1'000'000;
  config.limits.max_span = util::Duration::micros(0);
  const auto views = views_of(meeting_packets());
  EpochEngine engine(config);
  std::vector<EpochReport> completed;

  engine.offer(std::span<const net::RawPacketView>(views).subspan(0, 100),
               pipeline::BatchLifetime::Pinned, completed);
  EXPECT_TRUE(completed.empty());

  // Shrinking the packet limit below what's already buffered rotates on
  // the very next packet (SIGHUP responsiveness).
  EpochLimits limits = config.limits;
  limits.max_packets = 50;
  engine.set_limits(limits);
  auto staged = engine.config().analyzer;
  engine.stage_config(staged, /*frontend=*/false, /*flow_memory_budget=*/0);
  EXPECT_TRUE(engine.config().frontend) << "staged change must not pre-empt";

  engine.offer(std::span<const net::RawPacketView>(views).subspan(100, 100),
               pipeline::BatchLifetime::Pinned, completed);
  ASSERT_FALSE(completed.empty());
  EXPECT_EQ(completed[0].packets, 100u);  // closed at the boundary, intact
  // The staged engine change took effect when epoch 1 opened.
  EXPECT_FALSE(engine.config().frontend);
  EXPECT_EQ(engine.config().flow_memory_budget, 0u);
  // Live limits survive the staged swap.
  EXPECT_EQ(engine.config().limits.max_packets, 50u);
}

TEST(EpochEngine, FlushOnEmptyEpochIsNullopt) {
  EpochEngineConfig config;
  EpochEngine engine(config);
  EXPECT_FALSE(engine.flush().has_value());

  const auto views = views_of(meeting_packets());
  std::vector<EpochReport> completed;
  engine.offer(std::span<const net::RawPacketView>(views).subspan(0, 10),
               pipeline::BatchLifetime::Pinned, completed);
  auto rep = engine.flush();
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->packets, 10u);
  EXPECT_FALSE(engine.flush().has_value());
  EXPECT_EQ(engine.next_seq(), 1u);
}

TEST(EpochReportCodec, RoundTripsAndRejectsTruncation) {
  EpochEngineConfig config;
  config.limits.max_packets = 1200;
  config.limits.max_span = util::Duration::micros(0);
  const auto epochs = run_epochs(config, 512);
  ASSERT_FALSE(epochs.empty());

  for (const auto& rep : epochs) {
    const auto bytes = encode(rep);
    util::ByteReader r(bytes);
    EpochReport decoded;
    ASSERT_TRUE(decode_epoch_report(r, decoded));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_TRUE(decoded == rep);
    EXPECT_EQ(encode(decoded), bytes);
  }

  // Every truncation must fail cleanly, never crash or accept.
  const auto bytes = encode(epochs[0]);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    util::ByteReader r(std::span<const std::uint8_t>(bytes).subspan(0, len));
    EpochReport decoded;
    EXPECT_FALSE(decode_epoch_report(r, decoded) && r.remaining() == 0)
        << "accepted truncation at " << len;
  }
}

}  // namespace
}  // namespace zpm::analysis
