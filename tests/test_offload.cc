// Data-plane metric offload (capture/offload.h):
//
//  * switch-primitive unit behavior — power-of-two bucket boundaries,
//    histogram add/merge, the jitter EWMA + spin-bit probe against the
//    exact-sample OffloadReference, collision/eviction accounting under
//    register pressure;
//  * the report codec (sentinel, per-histogram sample-sum invariant,
//    truncation rejection);
//  * the host contract — analyzer output identical with the offload on
//    or off for uncovered traffic (serial and 4-shard, clean and
//    hostile traces, down to the encoded epoch record), and for covered
//    media flows the counting path unchanged while the per-packet
//    estimator work (copy-matcher RTT sampling) is actually skipped;
//  * bucketed histograms vs the exact per-packet CDF on a meeting
//    trace: bit-identical to the reference, quantiles within one
//    bucket width;
//  * epoch + snapshot round trips with the offload fields populated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/epoch.h"
#include "analysis/snapshot.h"
#include "capture/batch_filter.h"
#include "capture/offload.h"
#include "core/analyzer.h"
#include "net/packet.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/campus.h"
#include "sim/corruptor.h"
#include "sim/meeting.h"
#include "util/bytes.h"
#include "zoom/constants.h"

namespace zpm::capture {
namespace {

using util::Timestamp;

constexpr std::size_t kBatch = 256;

std::vector<net::RawPacketView> views_of(const std::vector<net::RawPacket>& trace,
                                         std::size_t begin, std::size_t end) {
  std::vector<net::RawPacketView> batch;
  batch.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) batch.push_back(net::as_view(trace[i]));
  return batch;
}

/// Campus background only: the 30 s window clamps every scheduled
/// meeting below the 2-minute floor, so the trace carries STUN,
/// look-alikes and bulk background but no server-port SFU media —
/// nothing the offload can cover.
std::vector<net::RawPacket> uncovered_trace(bool hostile) {
  sim::CampusConfig cc;
  cc.seed = 99;
  cc.duration = util::Duration::seconds(30);
  cc.meetings_per_peak_hour = 30.0;
  cc.background_ratio = 1.0;
  if (hostile) cc.corruption = sim::CorruptorConfig::hostile(0xBEEF);
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));
  return trace;
}

std::vector<net::RawPacket> meeting_trace() {
  sim::MeetingConfig mc;
  mc.seed = 31;
  mc.duration = util::Duration::seconds(40);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  c.ip = net::Ipv4Addr(98, 0, 0, 3);
  c.on_campus = false;
  b.send_screen_share = true;
  mc.participants = {a, b, c};
  return sim::run_meeting(mc);
}

OffloadFields media_fields(std::uint32_t ssrc, std::uint8_t direction,
                           std::uint16_t seq, std::uint32_t rtp_ts) {
  OffloadFields f;
  f.direction = direction;
  f.media_type = static_cast<std::uint8_t>(zoom::MediaEncapType::Video);
  f.seq = seq;
  f.rtp_ts = rtp_ts;
  f.ssrc = ssrc;
  f.clock_hz = zoom::kVideoClockHz;
  f.payload_bytes = 900;
  return f;
}

// ---------------------------------------------------------------------------
// Switch primitives

TEST(OffloadBucket, PowerOfTwoBoundaries) {
  EXPECT_EQ(offload_bucket(0), 0u);
  EXPECT_EQ(offload_bucket(1), 0u);
  EXPECT_EQ(offload_bucket(2), 1u);
  EXPECT_EQ(offload_bucket(3), 1u);
  EXPECT_EQ(offload_bucket(4), 2u);
  EXPECT_EQ(offload_bucket(7), 2u);
  EXPECT_EQ(offload_bucket(8), 3u);
  EXPECT_EQ(offload_bucket(1023), 9u);
  EXPECT_EQ(offload_bucket(1024), 10u);
  // Top bucket is open-ended: everything >= 2^15 us.
  EXPECT_EQ(offload_bucket((std::uint64_t{1} << 15) - 1), 14u);
  EXPECT_EQ(offload_bucket(std::uint64_t{1} << 15), 15u);
  EXPECT_EQ(offload_bucket(std::uint64_t{1} << 40), 15u);
  // Every value lands in the bucket whose [2^b, 2^(b+1)) range holds it.
  for (std::uint64_t us = 0; us < 70'000; us += 7) {
    const std::size_t b = offload_bucket(us);
    if (b < kOffloadBuckets - 1)
      EXPECT_LT(us, std::uint64_t{1} << (b + 1)) << us;
    if (b > 0) EXPECT_GE(us, std::uint64_t{1} << b) << us;
  }
}

TEST(OffloadHistogram, AddMergeAndEquality) {
  OffloadHistogram a, b;
  a.add(3);
  a.add(3);
  a.add(100);
  b.add(40'000);
  EXPECT_EQ(a.buckets[1], 2u);
  EXPECT_EQ(a.buckets[6], 1u);
  EXPECT_EQ(a.samples, 3u);
  a.merge(b);
  EXPECT_EQ(a.buckets[15], 1u);
  EXPECT_EQ(a.samples, 4u);
  OffloadHistogram c = a;
  EXPECT_TRUE(c == a);
  c.add(1);
  EXPECT_FALSE(c == a);
}

TEST(DataPlaneOffload, JitterPathMatchesExactReference) {
  DataPlaneOffload offload;
  OffloadReference reference{};
  // One stream, deterministic delta pattern wobbling around 33 ms; the
  // first packet seeds the slot, the second seeds the EWMA, samples
  // exist from the third on.
  std::int64_t t = 1'000'000;
  for (int i = 0; i < 200; ++i) {
    const auto f = media_fields(7, zoom::kSfuDirToSfu,
                                static_cast<std::uint16_t>(i),
                                static_cast<std::uint32_t>(i) * 3000);
    offload.on_media_packet(Timestamp::from_micros(t), f);
    reference.on_media_packet(Timestamp::from_micros(t), f);
    t += 33'000 + (i % 7) * 900 - 2'700;
  }
  const auto got = offload.report();
  EXPECT_TRUE(got == reference.report());
  EXPECT_EQ(got.jitter.samples, 198u);
  EXPECT_EQ(got.covered_packets, 200u);
}

TEST(DataPlaneOffload, ProbeMeasuresSfuForwardingRtt) {
  DataPlaneOffload offload;
  // Upstream copy arms the probe; the SFU's forwarded copy (same
  // (ssrc, seq, ts) triple, opposite direction) reads it 8 ms later.
  offload.on_media_packet(Timestamp::from_micros(10'000),
                          media_fields(7, zoom::kSfuDirToSfu, 42, 99));
  offload.on_media_packet(Timestamp::from_micros(18'000),
                          media_fields(7, zoom::kSfuDirFromSfu, 42, 99));
  auto rep = offload.report();
  EXPECT_EQ(rep.probe_arms, 1u);
  EXPECT_EQ(rep.rtt.samples, 1u);
  EXPECT_EQ(rep.rtt.buckets[offload_bucket(8'000)], 1u);

  // A forwarded copy whose triple was never armed reads nothing; the
  // match also invalidated the slot, so a duplicate copy reads nothing.
  offload.on_media_packet(Timestamp::from_micros(20'000),
                          media_fields(7, zoom::kSfuDirFromSfu, 43, 99));
  offload.on_media_packet(Timestamp::from_micros(21'000),
                          media_fields(7, zoom::kSfuDirFromSfu, 42, 99));
  EXPECT_EQ(offload.report().rtt.samples, 1u);
}

TEST(DataPlaneOffload, RegisterPressureIsAccountedAndMatchesReference) {
  // Minimum register sizing (16 slots each): hundreds of distinct
  // streams force collision-overwrite churn in every array. The exact
  // counts are hash-dependent; the contract is that they are counted,
  // and identically so by the reference.
  OffloadConfig small;
  small.flow_slots = 1;
  small.probe_slots = 1;
  DataPlaneOffload offload(small);
  OffloadReference reference(small);
  std::int64_t t = 0;
  for (std::uint32_t s = 0; s < 400; ++s) {
    for (int i = 0; i < 3; ++i) {
      const auto f = media_fields(1000 + s, zoom::kSfuDirToSfu,
                                  static_cast<std::uint16_t>(i),
                                  static_cast<std::uint32_t>(i) * 3000);
      offload.on_media_packet(Timestamp::from_micros(t), f);
      reference.on_media_packet(Timestamp::from_micros(t), f);
      t += 500;
    }
  }
  const auto rep = offload.report();
  EXPECT_TRUE(rep == reference.report());
  EXPECT_GT(rep.flow_evictions, 0u);
  EXPECT_GT(rep.probe_collisions, 0u);
  EXPECT_GT(rep.collisions(), rep.probe_collisions);  // telemetry adds its own
}

// ---------------------------------------------------------------------------
// Report codec

TEST(OffloadCodec, RoundTripsAndRejectsMalformedFraming) {
  OffloadReport rep;
  rep.jitter.add(5);
  rep.jitter.add(700);
  rep.rtt.add(12'000);
  rep.covered_packets = 3;
  rep.probe_arms = 2;
  rep.probe_collisions = 1;
  rep.flow_evictions = 4;
  rep.telemetry_collisions = 5;

  util::ByteWriter w;
  encode_offload_report(rep, w);
  const auto bytes = w.take();
  {
    util::ByteReader r(bytes);
    const auto decoded = decode_offload_report(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(*decoded == rep);
    EXPECT_EQ(r.remaining(), 0u);
  }
  // Truncation at any prefix fails cleanly.
  for (std::size_t len = 0; len < bytes.size(); len += 9) {
    util::ByteReader r(std::span(bytes.data(), len));
    EXPECT_FALSE(decode_offload_report(r).has_value()) << "len " << len;
  }
  // Wrong bucket-count sentinel.
  auto bad = bytes;
  bad[3] = 17;
  util::ByteReader r1(bad);
  EXPECT_FALSE(decode_offload_report(r1).has_value());
  // Histogram sample counter disagreeing with its bucket sum.
  bad = bytes;
  bad[4 + 16 * 8 + 7] ^= 1;  // jitter.samples low byte
  util::ByteReader r2(bad);
  EXPECT_FALSE(decode_offload_report(r2).has_value());
}

// ---------------------------------------------------------------------------
// Host contract: identity for uncovered traffic, skipped work for covered

/// Serial pass through a front end, honoring the covered flag exactly
/// like the zpm_analyze dispatch loop.
void run_serial(const std::vector<net::RawPacket>& trace, core::Analyzer& analyzer,
                BatchFilter& filter) {
  BatchVerdicts verdicts;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    filter.classify(batch, verdicts);
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (verdicts.verdicts[j] == Verdict::Reject)
        analyzer.account_frontend_rejected(batch[j]);
      else
        analyzer.offer(batch[j], verdicts.verdicts[j] == Verdict::Admit &&
                                     (verdicts.flags[j] & kFlagOffloadCovered) != 0);
    }
  }
  analyzer.finish();
}

/// Single-epoch encoded record for a trace (limits disabled, flush).
std::vector<std::uint8_t> encoded_epoch(const std::vector<net::RawPacket>& trace,
                                        std::size_t shards, bool offload) {
  analysis::EpochEngineConfig ec;
  ec.shards = shards;
  ec.frontend = true;
  ec.flow_memory_budget = 0;
  ec.dataplane_offload = offload;
  ec.limits.max_packets = 0;
  ec.limits.max_span = util::Duration::micros(0);
  analysis::EpochEngine engine(std::move(ec));
  std::vector<analysis::EpochReport> completed;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    engine.offer(batch, pipeline::BatchLifetime::Pinned, completed);
  }
  EXPECT_TRUE(completed.empty());
  auto rep = engine.flush();
  util::ByteWriter w;
  if (rep) analysis::encode_epoch_report(*rep, w);
  return w.take();
}

TEST(OffloadIdentity, UncoveredTrafficIsByteIdenticalOnOrOff) {
  for (const bool hostile : {false, true}) {
    SCOPED_TRACE(hostile ? "hostile" : "clean");
    const auto trace = uncovered_trace(hostile);
    ASSERT_GT(trace.size(), 1000u);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const auto off = encoded_epoch(trace, shards, false);
      const auto on = encoded_epoch(trace, shards, true);
      ASSERT_FALSE(off.empty());
      EXPECT_EQ(off, on);
    }
    // Nothing in this trace is coverable, so the flag never fired.
    BatchFilterConfig fc;
    fc.dataplane_offload = true;
    BatchFilter filter(fc);
    core::Analyzer analyzer{core::AnalyzerConfig{}};
    run_serial(trace, analyzer, filter);
    EXPECT_EQ(filter.stats().offload_covered, 0u);
    EXPECT_EQ(filter.offload_report().covered_packets, 0u);
  }
}

TEST(OffloadCovered, CountingPathUnchangedEstimatorWorkSkipped) {
  const auto trace = meeting_trace();
  core::AnalyzerConfig cfg;

  auto run = [&](bool offload_on) {
    BatchFilterConfig fc;
    fc.server_db = cfg.server_db;
    fc.dataplane_offload = offload_on;
    BatchFilter filter(fc);
    core::Analyzer analyzer(cfg);
    run_serial(trace, analyzer, filter);
    return std::pair<core::Analyzer, FrontEndStats>{std::move(analyzer),
                                                    filter.stats()};
  };
  auto [off, off_stats] = run(false);
  auto [on, on_stats] = run(true);

  // The counting path (packet/frame/loss/stream/meeting bookkeeping) is
  // untouched by coverage.
  EXPECT_EQ(off.counters(), on.counters());
  EXPECT_EQ(off.zoom_flow_count(), on.zoom_flow_count());
  EXPECT_EQ(off.streams().size(), on.streams().size());
  EXPECT_EQ(off.streams().media_count(), on.streams().media_count());
  EXPECT_EQ(off.meetings().meeting_count(), on.meetings().meeting_count());

  // Every server-leg media packet in a meeting trace is coverable, and
  // the copy-matcher work those packets used to feed is actually gone.
  EXPECT_GT(on_stats.offload_covered, 0u);
  EXPECT_EQ(off_stats.offload_covered, 0u);
  EXPECT_GT(off.sfu_rtt_samples().size(), 0u);
  EXPECT_EQ(on.sfu_rtt_samples().size(), 0u);
}

TEST(OffloadCovered, ShardedHistogramMergeCoversEveryPacket) {
  const auto trace = meeting_trace();
  auto covered_at = [&](std::size_t shards) {
    BatchFilterConfig fc;
    fc.shards = shards;
    fc.dataplane_offload = true;
    BatchFilter filter(fc);
    pipeline::ParallelAnalyzerConfig pc;
    pc.shards = shards;
    pipeline::ParallelAnalyzer par(pc);
    BatchVerdicts verdicts;
    for (std::size_t i = 0; i < trace.size(); i += kBatch) {
      auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
      filter.classify(batch, verdicts);
      par.offer_batch(batch, pipeline::BatchLifetime::Pinned, verdicts);
    }
    par.finish();
    return filter.offload_report();
  };
  const auto serial = covered_at(1);
  const auto sharded = covered_at(4);
  // Coverage is a pure per-packet predicate: shard-count invariant.
  EXPECT_EQ(serial.covered_packets, sharded.covered_packets);
  EXPECT_GT(serial.covered_packets, 0u);
  // The merged per-shard registers account every covered packet's
  // probe arm (stream-to-shard routing keeps a stream's packets on one
  // instance; only slot-collision churn may differ across counts).
  EXPECT_EQ(serial.probe_arms, sharded.probe_arms);
}

// ---------------------------------------------------------------------------
// Bucketed CDF vs exact per-packet CDF

TEST(OffloadCdf, BucketedHistogramsMatchExactReferenceOnMeetingTrace) {
  const auto trace = meeting_trace();
  BatchFilterConfig fc;
  fc.shards = 1;
  fc.dataplane_offload = true;
  BatchFilter filter(fc);
  OffloadReference reference{};
  BatchVerdicts verdicts;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    filter.classify(batch, verdicts);
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (verdicts.verdicts[j] != Verdict::Admit ||
          (verdicts.flags[j] & kFlagOffloadCovered) == 0)
        continue;
      const auto f = extract_offload_fields(batch[j].data);
      ASSERT_TRUE(f.has_value());  // coverage implies extractable fields
      reference.on_media_packet(batch[j].ts, *f);
    }
  }
  const auto hist = filter.offload_report();
  EXPECT_TRUE(hist == reference.report());
  ASSERT_GT(hist.jitter.samples, 100u);
  ASSERT_GT(hist.rtt.samples, 100u);

  // Quantile estimates from the bucketed histogram sit within one
  // bucket width of the exact per-packet CDF.
  auto check_quantiles = [](const OffloadHistogram& h,
                            std::vector<std::uint64_t> exact) {
    std::sort(exact.begin(), exact.end());
    for (const double q : {0.5, 0.9, 0.99}) {
      const auto idx =
          static_cast<std::size_t>(q * static_cast<double>(exact.size() - 1));
      std::uint64_t cum = 0;
      std::size_t bucket = kOffloadBuckets - 1;
      for (std::size_t b = 0; b < kOffloadBuckets; ++b) {
        cum += h.buckets[b];
        if (cum >= idx + 1) {
          bucket = b;
          break;
        }
      }
      EXPECT_EQ(offload_bucket(exact[idx]), bucket) << "q=" << q;
    }
  };
  check_quantiles(hist.jitter, reference.jitter_samples_us());
  check_quantiles(hist.rtt, reference.rtt_samples_us());
}

// ---------------------------------------------------------------------------
// Epoch + snapshot round trips with offload fields populated

TEST(OffloadEpoch, RecordCarriesHistogramsAndRoundTrips) {
  const auto trace = meeting_trace();
  analysis::EpochEngineConfig ec;
  ec.frontend = true;
  ec.flow_memory_budget = 0;
  ec.dataplane_offload = true;
  ec.limits.max_packets = 0;
  ec.limits.max_span = util::Duration::micros(0);
  analysis::EpochEngine engine(std::move(ec));
  std::vector<analysis::EpochReport> completed;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    engine.offer(batch, pipeline::BatchLifetime::Pinned, completed);
  }
  auto rep = engine.flush();
  ASSERT_TRUE(rep.has_value());

  // The record's offload section is the filter's merged report, and the
  // health accounting mirrors it.
  EXPECT_GT(rep->offload.covered_packets, 0u);
  EXPECT_GT(rep->offload.jitter.samples, 0u);
  EXPECT_GT(rep->offload.rtt.samples, 0u);
  EXPECT_EQ(rep->health.offload_covered_packets, rep->offload.covered_packets);
  EXPECT_EQ(rep->health.offload_collisions, rep->offload.collisions());
  EXPECT_EQ(rep->health.offload_evictions, rep->offload.flow_evictions);

  util::ByteWriter w;
  analysis::encode_epoch_report(*rep, w);
  const auto bytes = w.take();
  util::ByteReader r(bytes);
  analysis::EpochReport decoded;
  ASSERT_TRUE(analysis::decode_epoch_report(r, decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(decoded == *rep);
  EXPECT_TRUE(decoded.offload == rep->offload);
  util::ByteWriter w2;
  analysis::encode_epoch_report(decoded, w2);
  EXPECT_EQ(w2.take(), bytes);

  // Snapshot wrapper (version 3): the offload-bearing record and the
  // offload health counters survive the full save-format round trip.
  analysis::SnapshotData snap;
  snap.next_epoch_seq = 1;
  snap.packets_consumed = trace.size();
  snap.cumulative_health = rep->health;
  snap.recent_epochs.push_back(*rep);
  analysis::SnapshotData restored;
  ASSERT_TRUE(analysis::parse_snapshot(analysis::encode_snapshot(snap), restored));
  EXPECT_EQ(restored, snap);

  analysis::EpochReport from_file;
  ASSERT_TRUE(
      analysis::parse_epoch_file(analysis::encode_epoch_file(*rep), from_file));
  EXPECT_TRUE(from_file == *rep);
}

}  // namespace
}  // namespace zpm::capture
