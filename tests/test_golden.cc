// Golden wire-format fixtures: hand-written hex packets pin the exact
// byte layout of the Zoom encapsulations so an accidental format change
// in parser OR serializer fails loudly.
#include <gtest/gtest.h>

#include "proto/rtcp.h"
#include "util/bytes.h"
#include "zoom/classify.h"

namespace zpm::zoom {
namespace {

// A server-based Zoom video packet, byte by byte:
//   SFU encap:   05 | bbcc | 00 01 00 00 | 04
//   media encap: 10 | 8×undoc | 99aa | 22334455 | 6×undoc | 6677 | 03
//   RTP:         80 | e2 (M=1, PT=98) | 1111 | 22334455 | 0000cafe
//   FU-A:        5c (NRI=2, type 28) | 41 (E, NAL 1)
//   payload:     de ad be ef
const char* kGoldenServerVideo =
    "05 bbcc 00010000 04"
    "10 0708090a0b0c0d0e 99aa 22334455 0f1011121314 6677 03"
    "80 e2 1111 22334455 0000cafe"
    "5c 41"
    "deadbeef";

TEST(Golden, ServerVideoPacketDissects) {
  auto bytes = util::from_hex(kGoldenServerVideo);
  ASSERT_FALSE(bytes.empty());
  auto zp = dissect(bytes, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Media);
  ASSERT_TRUE(zp->sfu);
  EXPECT_EQ(zp->sfu->type, 0x05);
  EXPECT_EQ(zp->sfu->sequence, 0xbbcc);
  EXPECT_TRUE(zp->sfu->is_from_sfu());
  ASSERT_TRUE(zp->media);
  EXPECT_EQ(zp->media->type, 16);
  EXPECT_EQ(zp->media->sequence, 0x99aa);
  EXPECT_EQ(zp->media->timestamp, 0x22334455u);
  EXPECT_EQ(zp->media->frame_sequence, 0x6677);
  EXPECT_EQ(zp->media->packets_in_frame, 3);
  ASSERT_TRUE(zp->rtp);
  EXPECT_TRUE(zp->rtp->marker);
  EXPECT_EQ(zp->rtp->payload_type, 98);
  EXPECT_EQ(zp->rtp->sequence, 0x1111);
  EXPECT_EQ(zp->rtp->timestamp, 0x22334455u);
  EXPECT_EQ(zp->rtp->ssrc, 0x0000cafeu);
  ASSERT_TRUE(zp->fu_a);
  EXPECT_EQ(zp->fu_a->indicator.nri, 2);
  EXPECT_TRUE(zp->fu_a->fu.end);
  EXPECT_EQ(util::to_hex(zp->rtp_payload), "deadbeef");
}

// P2P audio packet (no SFU encap):
//   media encap: 0f | 8×undoc | 0102 | 0a0b0c0d | 4×undoc (19 bytes)
//   RTP:         80 | 70 (PT=112) | 2222 | 0a0b0c0d | 00001001
//   payload:     0102030405
const char* kGoldenP2pAudio =
    "0f 1112131415161718 0102 0a0b0c0d 191a1b1c"
    "80 f0 2222 0a0b0c0d 00001001"
    "0102030405";

TEST(Golden, P2pAudioPacketDissects) {
  auto bytes = util::from_hex(kGoldenP2pAudio);
  ASSERT_FALSE(bytes.empty());
  auto zp = dissect(bytes, Transport::P2P);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Media);
  EXPECT_FALSE(zp->sfu);
  EXPECT_EQ(zp->media->type, 15);
  EXPECT_EQ(zp->media->sequence, 0x0102);
  EXPECT_EQ(zp->rtp->payload_type, 112);
  EXPECT_TRUE(zp->rtp->marker);
  EXPECT_EQ(zp->rtp->ssrc, 0x1001u);
  EXPECT_EQ(zp->rtp_payload.size(), 5u);
}

// RTCP SR+SDES (type 34):
//   media encap: 22 | 8×undoc | 0001 | 00000001 | 1×undoc (16 bytes)
//   RTCP SR:     80 c8 0006 | ssrc 00000042 | ntp 83aa7e80 00000000
//                | rtpts 00015f90 | pkts 00000064 | octets 00010000
//   RTCP SDES:   81 ca 0002 | 00000042 | 00000000
const char* kGoldenRtcp =
    "22 1112131415161718 0001 00000001 19"
    "80 c8 0006 00000042 83aa7e80 00000000 00015f90 00000064 00010000"
    "81 ca 0002 00000042 00000000";

TEST(Golden, RtcpSrSdesPacketDissects) {
  auto bytes = util::from_hex(kGoldenRtcp);
  ASSERT_FALSE(bytes.empty());
  auto zp = dissect(bytes, Transport::P2P);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Rtcp);
  EXPECT_EQ(zp->media->type, 34);
  ASSERT_EQ(zp->rtcp.size(), 2u);
  const auto& sr = std::get<proto::SenderReport>(zp->rtcp[0]);
  EXPECT_EQ(sr.sender_ssrc, 0x42u);
  EXPECT_EQ(sr.rtp_timestamp, 90000u);
  EXPECT_EQ(sr.packet_count, 100u);
  EXPECT_EQ(sr.octet_count, 65536u);
  // NTP 0x83aa7e80 = 2208988800 = the Unix epoch.
  EXPECT_EQ(sr.ntp.to_unix().us(), 0);
  const auto& sdes = std::get<proto::Sdes>(zp->rtcp[1]);
  ASSERT_EQ(sdes.chunks.size(), 1u);
  EXPECT_TRUE(sdes.chunks[0].items.empty());
}

// STUN binding request to a zone controller.
const char* kGoldenStun = "0001 0000 2112a442 0102030405060708090a0b0c";

TEST(Golden, StunBindingRequestDissects) {
  auto bytes = util::from_hex(kGoldenStun);
  auto zp = dissect_stun(bytes);
  ASSERT_TRUE(zp);
  ASSERT_TRUE(zp->stun);
  EXPECT_TRUE(zp->stun->is_request());
  EXPECT_EQ(util::to_hex(zp->stun->transaction_id), "0102030405060708090a0b0c");
}

}  // namespace
}  // namespace zpm::zoom
