// IPv4 address / subnet parsing and containment.
#include <gtest/gtest.h>

#include "net/addr.h"

namespace zpm::net {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("170.114.0.10");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->value(), 0xaa72000au);
  EXPECT_EQ(a->to_string(), "170.114.0.10");
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4).to_string(), "1.2.3.4");
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1), *Ipv4Addr::parse("10.0.0.1"));
}

TEST(Ipv4Subnet, ContainsAndSize) {
  auto s = Ipv4Subnet::parse("170.114.0.0/16");
  ASSERT_TRUE(s);
  EXPECT_TRUE(s->contains(Ipv4Addr(170, 114, 255, 255)));
  EXPECT_TRUE(s->contains(Ipv4Addr(170, 114, 0, 0)));
  EXPECT_FALSE(s->contains(Ipv4Addr(170, 115, 0, 0)));
  EXPECT_EQ(s->size(), 65536u);
  EXPECT_EQ(s->to_string(), "170.114.0.0/16");
}

TEST(Ipv4Subnet, NonCanonicalBaseIsMasked) {
  Ipv4Subnet s(Ipv4Addr(10, 1, 2, 3), 24);
  EXPECT_EQ(s.base(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_TRUE(s.contains(Ipv4Addr(10, 1, 2, 200)));
}

TEST(Ipv4Subnet, EdgePrefixLengths) {
  Ipv4Subnet whole(Ipv4Addr(0, 0, 0, 0), 0);
  EXPECT_TRUE(whole.contains(Ipv4Addr(255, 255, 255, 255)));
  Ipv4Subnet host(Ipv4Addr(8, 8, 8, 8), 32);
  EXPECT_TRUE(host.contains(Ipv4Addr(8, 8, 8, 8)));
  EXPECT_FALSE(host.contains(Ipv4Addr(8, 8, 8, 9)));
  EXPECT_EQ(host.size(), 1u);
}

TEST(Ipv4Subnet, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Subnet::parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Subnet::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Subnet::parse("10.0.0.0/x"));
  EXPECT_FALSE(Ipv4Subnet::parse("10.0/8"));
}

TEST(MacAddr, Format) {
  MacAddr m{{0x02, 0x5a, 0xff, 0x00, 0x10, 0x01}};
  EXPECT_EQ(m.to_string(), "02:5a:ff:00:10:01");
}

}  // namespace
}  // namespace zpm::net
