// The capture front end's two contracts (capture/batch_filter.h):
//
//  1. Bit identity — analyzer output is identical with the front end on
//     or off, scalar or SIMD probe, serial or sharded (1/2/4), on clean
//     and hostile traces. The only permitted difference is the
//     frontend_rejected health counter itself (and ring_wait_spins,
//     which is timing-dependent by documentation).
//  2. Conservative verdicts — Reject only for packets the analyzer
//     would provably ignore; look-alike port squatters are never
//     flagged Zoom-shaped; everything uncertain falls back to the full
//     decode path.
//
// Plus the stage-2 routing contract: FlowDispatchTable's owner shard is
// exactly std::hash<net::FiveTuple> % shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "capture/batch_filter.h"
#include "core/analyzer.h"
#include "net/build.h"
#include "net/packet.h"
#include "pipeline/parallel_analyzer.h"
#include "proto/stun.h"
#include "sim/campus.h"
#include "sim/corruptor.h"
#include "sim/meeting.h"
#include "zoom/constants.h"

namespace zpm::capture {
namespace {

using util::Timestamp;

constexpr std::size_t kBatch = 256;

/// ring_wait_spins is documented nondeterministic; frontend_rejected is
/// the front end's own (expected) delta. Everything else must match.
core::AnalyzerHealth normalized(core::AnalyzerHealth h) {
  h.frontend_rejected = 0;
  h.ring_wait_spins = 0;
  return h;
}

std::vector<net::RawPacketView> views_of(const std::vector<net::RawPacket>& trace,
                                         std::size_t begin, std::size_t end) {
  std::vector<net::RawPacketView> batch;
  batch.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) batch.push_back(net::as_view(trace[i]));
  return batch;
}

/// Serial analyzer pass, optionally screened by a front end.
void run_serial(const std::vector<net::RawPacket>& trace, core::Analyzer& analyzer,
                BatchFilter* filter) {
  BatchVerdicts verdicts;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    if (filter == nullptr) {
      for (const auto& view : batch) analyzer.offer(view);
      continue;
    }
    filter->classify(batch, verdicts);
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (verdicts.verdicts[j] == Verdict::Reject)
        analyzer.account_frontend_rejected(batch[j]);
      else
        analyzer.offer(batch[j]);
    }
  }
  analyzer.finish();
}

/// Sharded pass, optionally with front-end verdicts.
void run_parallel(const std::vector<net::RawPacket>& trace,
                  pipeline::ParallelAnalyzer& par, BatchFilter* filter) {
  BatchVerdicts verdicts;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    if (filter == nullptr) {
      par.offer_batch(batch, pipeline::BatchLifetime::Pinned);
    } else {
      filter->classify(batch, verdicts);
      par.offer_batch(batch, pipeline::BatchLifetime::Pinned, verdicts);
    }
  }
  par.finish();
}

std::vector<net::RawPacket> meeting_trace() {
  sim::MeetingConfig mc;
  mc.seed = 31;
  mc.duration = util::Duration::seconds(40);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  c.ip = net::Ipv4Addr(98, 0, 0, 3);
  c.on_campus = false;
  b.send_screen_share = true;
  mc.participants = {a, b, c};
  return sim::run_meeting(mc);
}

std::vector<net::RawPacket> hostile_campus_trace() {
  // Campus background + corruptor output alone carries no real Zoom
  // media (the scheduler drops meetings clamped under 2 minutes, and a
  // 45 s window clamps them all), so a genuine meeting is merged into
  // the same window: the front end must keep admitting the real traffic
  // while the hostile mix tries to confuse it.
  sim::CampusConfig cc;
  cc.seed = 99;
  cc.duration = util::Duration::seconds(45);
  cc.meetings_per_peak_hour = 30.0;
  cc.background_ratio = 1.0;  // plenty of front-end-rejectable traffic
  cc.corruption = sim::CorruptorConfig::hostile(0xBEEF);
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));

  sim::MeetingConfig mc;
  mc.seed = 31;
  mc.start = cc.day_start + util::Duration::seconds(2);
  mc.duration = util::Duration::seconds(40);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  c.ip = net::Ipv4Addr(98, 0, 0, 3);
  c.on_campus = false;
  b.send_screen_share = true;
  mc.participants = {a, b, c};
  auto meeting = sim::run_meeting(mc);

  // Two-pointer interleave by timestamp. The corruptor intentionally
  // leaves timestamp regressions in the campus stream, so this is a
  // deterministic weave rather than a std::merge of sorted ranges.
  std::vector<net::RawPacket> merged;
  merged.reserve(trace.size() + meeting.size());
  std::size_t i = 0, j = 0;
  while (i < trace.size() || j < meeting.size()) {
    bool take_campus = j == meeting.size() ||
                       (i < trace.size() && trace[i].ts <= meeting[j].ts);
    merged.push_back(std::move(take_campus ? trace[i++] : meeting[j++]));
  }
  return merged;
}

void expect_serial_equal(const core::Analyzer& a, const core::Analyzer& b) {
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_EQ(normalized(a.health()), normalized(b.health()));
  EXPECT_EQ(a.zoom_flow_count(), b.zoom_flow_count());
  EXPECT_EQ(a.streams().size(), b.streams().size());
  EXPECT_EQ(a.streams().media_count(), b.streams().media_count());
  EXPECT_EQ(a.meetings().meeting_count(), b.meetings().meeting_count());
  EXPECT_EQ(a.sfu_rtt_samples().size(), b.sfu_rtt_samples().size());
}

void check_bit_identity(const std::vector<net::RawPacket>& trace) {
  // Serial reference: front end off.
  core::AnalyzerConfig cfg;
  core::Analyzer baseline(cfg);
  run_serial(trace, baseline, nullptr);

  // Serial with front end, scalar and SIMD probes.
  for (auto mode : {BatchFilter::Mode::ForceScalar, BatchFilter::Mode::ForceSimd}) {
    SCOPED_TRACE(mode == BatchFilter::Mode::ForceScalar ? "serial/scalar"
                                                        : "serial/simd");
    BatchFilter filter(BatchFilterConfig{cfg.server_db, 1}, mode);
    core::Analyzer screened(cfg);
    run_serial(trace, screened, &filter);
    expect_serial_equal(baseline, screened);
    EXPECT_EQ(screened.health().frontend_rejected, filter.stats().rejected);
  }

  // Sharded, front end on vs off, at 1/2/4 shards.
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    pipeline::ParallelAnalyzerConfig par_cfg;
    par_cfg.analyzer = cfg;
    par_cfg.shards = shards;

    pipeline::ParallelAnalyzer plain(par_cfg);
    run_parallel(trace, plain, nullptr);

    BatchFilter filter(BatchFilterConfig{cfg.server_db, shards});
    pipeline::ParallelAnalyzer screened(par_cfg);
    run_parallel(trace, screened, &filter);

    EXPECT_EQ(baseline.counters(), plain.counters());
    EXPECT_EQ(baseline.counters(), screened.counters());
    EXPECT_EQ(normalized(baseline.health()), normalized(plain.health()));
    EXPECT_EQ(normalized(baseline.health()), normalized(screened.health()));
    EXPECT_EQ(screened.health().frontend_rejected, filter.stats().rejected);
    EXPECT_EQ(baseline.zoom_flow_count(), screened.zoom_flow_count());
    EXPECT_EQ(baseline.streams().size(), screened.streams().size());
    EXPECT_EQ(baseline.streams().media_count(), screened.media_count());
    EXPECT_EQ(baseline.meetings().meeting_count(),
              screened.meetings().meeting_count());
    EXPECT_EQ(baseline.sfu_rtt_samples().size(), screened.sfu_rtt_samples().size());
    if (const auto& v = screened.strict_violation(); v || baseline.strict_violation())
      FAIL() << "unexpected strict violation (strict mode is off)";
  }
}

TEST(BatchFilter, BitIdentityOnCleanMeetingTrace) {
  check_bit_identity(meeting_trace());
}

TEST(BatchFilter, BitIdentityOnHostileCampusTrace) {
  auto trace = hostile_campus_trace();
  ASSERT_GT(trace.size(), 1000u);
  check_bit_identity(trace);
}

TEST(BatchFilter, FrontEndActuallyRejectsBackgroundTraffic) {
  // The identity above would hold trivially for a filter that admits
  // everything; the campus mix must exercise all three verdicts.
  auto trace = hostile_campus_trace();
  BatchFilter filter(BatchFilterConfig{});
  BatchVerdicts verdicts;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    filter.classify(batch, verdicts);
  }
  const FrontEndStats& s = filter.stats();
  EXPECT_EQ(s.packets, trace.size());
  EXPECT_GT(s.rejected, 0u);
  EXPECT_GT(s.admitted, 0u);
  EXPECT_GT(s.zoom_shaped, 0u);
  EXPECT_GT(s.full_parse, 0u);  // hostile mix mangles headers
  EXPECT_EQ(s.admitted + s.rejected + s.full_parse, s.packets);
  EXPECT_GT(filter.flow_count(), 0u);
}

TEST(BatchFilter, ScalarAndSimdVerdictsBitIdentical) {
  auto trace = hostile_campus_trace();
  BatchFilter scalar(BatchFilterConfig{}, BatchFilter::Mode::ForceScalar);
  BatchFilter simd(BatchFilterConfig{}, BatchFilter::Mode::ForceSimd);
  BatchVerdicts vs, vv;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    scalar.classify(batch, vs);
    simd.classify(batch, vv);
    ASSERT_EQ(vs, vv) << "batch starting at packet " << i;
  }
  EXPECT_EQ(scalar.stats().admitted, simd.stats().admitted);
  EXPECT_EQ(scalar.stats().rejected, simd.stats().rejected);
  EXPECT_EQ(scalar.stats().full_parse, simd.stats().full_parse);
  EXPECT_GT(simd.stats().simd_batches, 0u);
  EXPECT_EQ(simd.stats().scalar_batches, 0u);
}

// ---------------------------------------------------------------------------
// Verdict rules on hand-built packets

const net::Ipv4Addr kCampus(10, 8, 0, 1);
const net::Ipv4Addr kOther(23, 1, 2, 3);
const net::Ipv4Addr kZoomServer(170, 114, 0, 10);

BatchVerdicts classify_one(BatchFilter& filter, const net::RawPacket& pkt) {
  std::vector<net::RawPacketView> batch = {net::as_view(pkt)};
  BatchVerdicts v;
  filter.classify(batch, v);
  return v;
}

std::vector<std::uint8_t> zoom_audio_payload() {
  // SFU encap type 5, media encap type 15 (audio), RTP PT 112
  // (speaking) at the documented offset.
  std::vector<std::uint8_t> p(8 + zoom::media_payload_offset(15) + 12, 0);
  p[0] = zoom::kSfuTypeMedia;
  p[8] = 15;
  p[8 + zoom::media_payload_offset(15)] = 0x80;      // RTP v2
  p[8 + zoom::media_payload_offset(15) + 1] = 112;   // Table 3 audio PT
  return p;
}

TEST(BatchFilter, ServerTrafficIsAdmitted) {
  BatchFilter filter(BatchFilterConfig{});
  auto v = classify_one(
      filter, net::build_udp(Timestamp::from_seconds(1), kCampus, 40000,
                             kZoomServer, zoom::kServerMediaPort,
                             zoom_audio_payload()));
  EXPECT_EQ(v.verdicts[0], Verdict::Admit);
  EXPECT_TRUE(v.flags[0] & kFlagZoomShaped);
  EXPECT_FALSE(v.flags[0] & kFlagStunPort);
}

TEST(BatchFilter, UnrelatedUdpAndTcpAreRejected) {
  BatchFilter filter(BatchFilterConfig{});
  std::vector<std::uint8_t> payload(64, 0x42);
  auto udp = classify_one(filter,
                          net::build_udp(Timestamp::from_seconds(1), kCampus, 40000,
                                         kOther, 53, payload));
  EXPECT_EQ(udp.verdicts[0], Verdict::Reject);
  auto tcp = classify_one(
      filter, net::build_tcp(Timestamp::from_seconds(2), kCampus, 40000, kOther,
                             443, 1, 1, 0x18, payload));
  EXPECT_EQ(tcp.verdicts[0], Verdict::Reject);
  EXPECT_EQ(filter.stats().rejected, 2u);
}

TEST(BatchFilter, TcpToServerIsAdmitted) {
  BatchFilter filter(BatchFilterConfig{});
  std::vector<std::uint8_t> payload(32, 0);
  auto v = classify_one(
      filter, net::build_tcp(Timestamp::from_seconds(1), kCampus, 40000,
                             kZoomServer, 443, 1, 1, 0x18, payload));
  EXPECT_EQ(v.verdicts[0], Verdict::Admit);
}

TEST(BatchFilter, StunExchangeArmsP2pCandidateEndpoints) {
  BatchFilter filter(BatchFilterConfig{});
  // Without the STUN exchange this P2P-looking flow would be rejected.
  std::vector<std::uint8_t> media(100, 0x10);
  auto before = classify_one(
      filter, net::build_udp(Timestamp::from_seconds(1), kCampus, 50000, kOther,
                             50001, media));
  EXPECT_EQ(before.verdicts[0], Verdict::Reject);

  // Campus host talks STUN with a Zoom zone controller; the filter must
  // arm the campus endpoint even though it only probes fixed offsets.
  std::vector<std::uint8_t> stun = {0x00, 0x01, 0x00, 0x00,
                                    0x21, 0x12, 0xa4, 0x42,
                                    1,    2,    3,    4,
                                    5,    6,    7,    8,
                                    9,    10,   11,   12};
  auto bind = classify_one(
      filter, net::build_udp(Timestamp::from_seconds(2), kCampus, 50000,
                             kZoomServer, zoom::kStunServerPort, stun));
  EXPECT_EQ(bind.verdicts[0], Verdict::Admit);
  EXPECT_TRUE(bind.flags[0] & kFlagStunPort);
  EXPECT_TRUE(bind.flags[0] & kFlagZoomShaped);
  EXPECT_GE(filter.candidate_endpoint_count(), 2u);

  // The same P2P flow is now admitted (the analyzer may count it).
  auto after = classify_one(
      filter, net::build_udp(Timestamp::from_seconds(3), kCampus, 50000, kOther,
                             50001, media));
  EXPECT_EQ(after.verdicts[0], Verdict::Admit);
}

TEST(BatchFilter, UncertainLayoutsFallBackToFullParse) {
  BatchFilter filter(BatchFilterConfig{});
  std::vector<net::RawPacketView> batch;
  std::vector<std::vector<std::uint8_t>> frames;

  // Non-IPv4 ethertype (ARP).
  frames.push_back(std::vector<std::uint8_t>(60, 0));
  frames.back()[12] = 0x08;
  frames.back()[13] = 0x06;
  // IPv4 with options (ihl 6): decodable, but not probe-clean.
  auto with_options =
      net::build_udp(Timestamp::from_seconds(1), kCampus, 1111, kOther, 2222,
                     std::vector<std::uint8_t>(40, 0))
          .data;
  with_options[14] = 0x46;
  frames.push_back(with_options);
  // Fragment (offset 8).
  auto fragment =
      net::build_udp(Timestamp::from_seconds(1), kCampus, 1111, kOther, 2222,
                     std::vector<std::uint8_t>(40, 0))
          .data;
  fragment[21] = 0x01;
  frames.push_back(fragment);
  // Frame too short for a full UDP header.
  frames.push_back(std::vector<std::uint8_t>(30, 0));
  frames.back()[12] = 0x08;
  frames.back()[13] = 0x00;
  frames.back()[14] = 0x45;
  frames.back()[23] = 17;
  // Fuzzer find: clean-looking IPv4 prefix with a plausible total
  // length but the frame cut inside the address fields (n in [24, 34))
  // — the probe must bail out before dereferencing the addresses.
  frames.push_back(std::vector<std::uint8_t>(32, 0));
  frames.back()[12] = 0x08;
  frames.back()[13] = 0x00;
  frames.back()[14] = 0x45;
  frames.back()[17] = 40;  // total_length = 40
  frames.back()[23] = 17;

  for (const auto& f : frames)
    batch.push_back(net::RawPacketView{Timestamp::from_seconds(1), f, 0});
  BatchVerdicts v;
  filter.classify(batch, v);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(v.verdicts[i], Verdict::FullParse) << "frame " << i;
  EXPECT_EQ(filter.stats().full_parse, batch.size());
}

TEST(BatchFilter, LookAlikePortSquattersAreNeverZoomShaped) {
  // sim::TraceCorruptor's look-alikes: campus hosts talking garbage UDP
  // on ports 8801/3478, half toward unrelated external addresses, half
  // toward Zoom server space. None may be flagged Zoom-shaped, and the
  // external-address squatters must never be admitted at all unless a
  // (port-3478) exchange armed their endpoint — in which case they get
  // a full parse downstream, not a silent Zoom classification.
  sim::CorruptorConfig cc;
  cc.seed = 0x10CA1;
  cc.lookalike_prob = 1.0;
  sim::TraceCorruptor corruptor(cc);
  std::vector<net::RawPacket> emitted;
  std::vector<std::uint8_t> benign(64, 0x33);
  for (int i = 0; i < 400; ++i) {
    corruptor.process(net::build_udp(Timestamp::from_seconds(i), kCampus, 9000,
                                     kOther, 9001, benign),
                      emitted);
  }
  ASSERT_GT(corruptor.stats().lookalikes_injected, 100u);

  const zoom::ServerDb& db = zoom::ServerDb::official();
  BatchFilter filter(BatchFilterConfig{});
  BatchVerdicts v;
  std::size_t lookalikes = 0;
  for (const auto& pkt : emitted) {
    auto verdicts = classify_one(filter, pkt);
    auto view = net::decode_packet(pkt.ts, pkt.data);
    ASSERT_TRUE(view);
    bool zoom_port = view->l4 == net::L4Proto::Udp &&
                     (view->udp.src_port == zoom::kServerMediaPort ||
                      view->udp.dst_port == zoom::kServerMediaPort ||
                      view->udp.src_port == zoom::kStunServerPort ||
                      view->udp.dst_port == zoom::kStunServerPort);
    if (!zoom_port) continue;  // the benign carrier packet
    ++lookalikes;
    EXPECT_FALSE(verdicts.flags[0] & kFlagZoomShaped)
        << "garbage payload flagged as Zoom-shaped";
    bool server_involved = db.contains(view->ip.src) || db.contains(view->ip.dst);
    bool stun_port = view->udp.src_port == zoom::kStunServerPort ||
                     view->udp.dst_port == zoom::kStunServerPort;
    if (!server_involved && !stun_port) {
      // External 8801 squatter: nothing can have armed it.
      EXPECT_NE(verdicts.verdicts[0], Verdict::Admit)
          << "external port squatter silently admitted";
    }
  }
  EXPECT_GT(lookalikes, 100u);
}

// ---------------------------------------------------------------------------
// Sketch tier: screening parity + promotion path

TEST(BatchFilter, SketchTierNeverChangesVerdictsOrReports) {
  // Same hostile trace, tier off vs on: verdict/flag/shard/slot arrays
  // must match packet for packet (the tier only observes rejects), and
  // the downstream report must stay bit-identical — health included,
  // since sketch churn is accounted filter-side, not analyzer-side.
  auto trace = hostile_campus_trace();
  core::AnalyzerConfig cfg;

  BatchFilterConfig plain_cfg{cfg.server_db, 4};
  BatchFilterConfig sketch_cfg{cfg.server_db, 4};
  sketch_cfg.flow_memory_budget = 1 << 20;
  BatchFilter plain(plain_cfg);
  BatchFilter sketched(sketch_cfg);
  ASSERT_FALSE(plain.sketch_enabled());
  ASSERT_TRUE(sketched.sketch_enabled());

  BatchVerdicts vp, vs;
  for (std::size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = views_of(trace, i, std::min(trace.size(), i + kBatch));
    plain.classify(batch, vp);
    sketched.classify(batch, vs);
    ASSERT_EQ(vp.verdicts, vs.verdicts) << "batch at " << i;
    ASSERT_EQ(vp.flags, vs.flags) << "batch at " << i;
    ASSERT_EQ(vp.shard, vs.shard) << "batch at " << i;
    ASSERT_EQ(vp.slot, vs.slot) << "batch at " << i;
    ASSERT_TRUE(vp.promotions.empty());  // disabled tier never promotes
  }

  // The tier summarized exactly the rejected packets.
  const sketch::TierReport report = sketched.sketch_report(10);
  EXPECT_EQ(report.stats.absorbed_packets, sketched.stats().rejected);
  EXPECT_GT(report.stats.absorbed_packets, 0u);
  EXPECT_FALSE(report.heavy_hitters.empty());

  // End-to-end: analyzer reports identical with tier on/off; the only
  // health difference the tier may ever cause is via the CLI's explicit
  // sketch_evicted injection, which is not part of this path.
  core::Analyzer base(cfg), with_tier(cfg);
  BatchFilter f1(plain_cfg), f2(sketch_cfg);
  run_serial(trace, base, &f1);
  run_serial(trace, with_tier, &f2);
  expect_serial_equal(base, with_tier);
  EXPECT_EQ(base.health(), with_tier.health());  // incl. frontend_rejected
  EXPECT_EQ(with_tier.health().sketch_evicted, 0u);
}

TEST(BatchFilter, LateAdmittedFlowIsPromotedWithCarriedAggregate) {
  // A P2P-looking flow is rejected (absorbed by the tier) until a STUN
  // exchange arms its endpoint; the first admit must surface a promotion
  // carrying the tier's pre-admission aggregate.
  BatchFilterConfig cfg{};
  cfg.shards = 4;
  cfg.flow_memory_budget = 256 << 10;
  BatchFilter filter(cfg);

  std::vector<std::uint8_t> media(100, 0x10);
  const net::FiveTuple p2p_flow =
      net::FiveTuple{kCampus, kOther, 50000, 50001, 17}.canonical();
  std::uint64_t pre_bytes = 0;
  for (int i = 0; i < 5; ++i) {
    auto pkt = net::build_udp(Timestamp::from_seconds(1 + i), kCampus, 50000,
                              kOther, 50001, media);
    pre_bytes += pkt.data.size();
    auto v = classify_one(filter, pkt);
    ASSERT_EQ(v.verdicts[0], Verdict::Reject);
    ASSERT_TRUE(v.promotions.empty());
  }

  std::vector<std::uint8_t> stun = {0x00, 0x01, 0x00, 0x00, 0x21, 0x12, 0xa4,
                                    0x42, 1,    2,    3,    4,    5,    6,
                                    7,    8,    9,    10,   11,   12};
  classify_one(filter, net::build_udp(Timestamp::from_seconds(10), kCampus,
                                      50000, kZoomServer,
                                      zoom::kStunServerPort, stun));

  auto admitted = classify_one(
      filter, net::build_udp(Timestamp::from_seconds(11), kCampus, 50000,
                             kOther, 50001, media));
  ASSERT_EQ(admitted.verdicts[0], Verdict::Admit);
  ASSERT_EQ(admitted.promotions.size(), 1u);
  const BatchVerdicts::Promotion& promo = admitted.promotions[0];
  EXPECT_EQ(promo.flow, p2p_flow);
  EXPECT_EQ(promo.shard, admitted.shard[0]);
  EXPECT_EQ(promo.carried.packets, 5u);
  EXPECT_EQ(promo.carried.bytes, pre_bytes);

  // Promotion removed the flow from the tier's heavy table; a repeat
  // admit of the same flow is no longer "inserted" and promotes nothing.
  auto again = classify_one(
      filter, net::build_udp(Timestamp::from_seconds(12), kCampus, 50000,
                             kOther, 50001, media));
  ASSERT_EQ(again.verdicts[0], Verdict::Admit);
  EXPECT_TRUE(again.promotions.empty());

  // Demotion hands the flow back: the tier re-absorbs the aggregate and
  // counts the churn in sketch_evicted().
  const std::uint64_t churn_before = filter.sketch_evicted();
  EXPECT_TRUE(filter.demote_flow(p2p_flow, sketch::FlowStats{6, 600}));
  EXPECT_EQ(filter.sketch_evicted(), churn_before + 1);
  EXPECT_FALSE(filter.demote_flow(p2p_flow, sketch::FlowStats{}))
      << "second demotion of an unknown flow must fail";
}

TEST(BatchFilter, SketchEvictionChurnIsAccounted) {
  // A tiny budget and thousands of distinct rejected flows force
  // SpaceSaving evictions; sketch_evicted() must expose them.
  BatchFilterConfig cfg{};
  cfg.shards = 2;
  cfg.flow_memory_budget = 2;  // minimum tables per shard
  BatchFilter filter(cfg);
  std::vector<std::uint8_t> payload(64, 0x42);
  std::vector<net::RawPacket> pkts;
  for (std::uint32_t n = 0; n < 2000; ++n) {
    pkts.push_back(net::build_udp(
        Timestamp::from_seconds(1), kCampus,
        static_cast<std::uint16_t>(20000 + (n >> 8)), kOther,
        static_cast<std::uint16_t>(30000 + (n & 0xff)), payload));
  }
  std::vector<net::RawPacketView> batch;
  for (const auto& p : pkts) batch.push_back(net::as_view(p));
  BatchVerdicts v;
  filter.classify(batch, v);
  ASSERT_EQ(filter.stats().rejected, pkts.size());
  EXPECT_GT(filter.sketch_evicted(), 0u);
}

// ---------------------------------------------------------------------------
// FlowDispatchTable

TEST(FlowDispatchTable, OwnerShardMatchesStdHashAndSlotsAreStable) {
  FlowDispatchTable table(16);  // small: forces several growth cycles
  util::Rng rng(7);
  std::vector<net::FiveTuple> flows;
  for (int i = 0; i < 5000; ++i) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr(rng.next_u32());
    t.dst_ip = net::Ipv4Addr(rng.next_u32());
    t.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    t.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    t.protocol = rng.chance(0.5) ? net::kIpProtoUdp : net::kIpProtoTcp;
    flows.push_back(t.canonical());
  }
  constexpr std::size_t kShards = 4;
  std::vector<FlowDispatchTable::Hit> first;
  for (const auto& flow : flows) {
    auto hit = table.lookup_or_insert(flow, kShards);
    EXPECT_EQ(hit.shard, std::hash<net::FiveTuple>{}(flow) % kShards);
    first.push_back(hit);
  }
  EXPECT_LE(table.size(), flows.size());
  // Second pass: same slot, same shard, no new entries.
  const std::size_t size_after_first = table.size();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto hit = table.lookup_or_insert(flows[i], kShards);
    EXPECT_EQ(hit.shard, first[i].shard);
    EXPECT_EQ(hit.slot, first[i].slot);
  }
  EXPECT_EQ(table.size(), size_after_first);
}

}  // namespace
}  // namespace zpm::capture
