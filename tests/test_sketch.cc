// zpm::sketch unit coverage: count-min error bounds (including
// adversarial keys engineered to collide), SpaceSaving heavy-hitter
// semantics, the promote/demote round trip and its eviction accounting,
// and the cross-shard merge. The integration-level bit-identity and
// screening-parity contracts live in test_batch_filter.cc; the
// million-flow recall/footprint assertions in bench/bench_sketch.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "net/five_tuple.h"
#include "sketch/sketch.h"
#include "util/rng.h"

namespace zpm::sketch {
namespace {

net::PackedFlowKey key_of(std::uint32_t n) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr(10, 8, static_cast<std::uint8_t>(n >> 8),
                           static_cast<std::uint8_t>(n));
  t.dst_ip = net::Ipv4Addr(23, 1, 2, 3);
  t.src_port = static_cast<std::uint16_t>(10000 + (n >> 16));
  t.dst_port = static_cast<std::uint16_t>(40000 + (n & 0x3fff));
  t.protocol = 17;
  return net::PackedFlowKey(t.canonical());
}

// ---------------------------------------------------------------------------
// CountMinSketch

TEST(CountMinSketch, NeverUndercountsAndIsExactWithoutCollisions) {
  CountMinSketch cm(64 << 10);
  util::Rng rng(3);
  std::map<std::uint64_t, FlowStats> truth;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t hash = net::canonical_flow_hash(key_of(rng.next_u32()));
    const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
    cm.add(hash, 1, bytes);
    truth[hash].packets += 1;
    truth[hash].bytes += bytes;
  }
  // 200 keys over a 64 KiB sketch: far under capacity, every estimate is
  // an upper bound and almost surely exact.
  for (const auto& [hash, want] : truth) {
    const FlowStats got = cm.estimate(hash);
    EXPECT_GE(got.packets, want.packets);
    EXPECT_GE(got.bytes, want.bytes);
  }
}

TEST(CountMinSketch, AdversarialRowCollisionsStayUpperBounds) {
  // Kirsch–Mitzenmacher derives row indices from (low32, high32|1) of
  // one hash. Adversarial keys: identical low 32 bits, so row 0 is a
  // single shared cell for every key — the worst collision pattern the
  // scheme admits — while the other rows diverge via high bits.
  CountMinSketch cm(16 << 10);
  constexpr int kKeys = 64;
  constexpr std::uint64_t kLow = 0x1234abcdu;
  std::vector<std::uint64_t> hashes;
  for (int i = 0; i < kKeys; ++i)
    hashes.push_back((static_cast<std::uint64_t>(i * 2 + 1) << 32) | kLow);

  std::vector<std::uint64_t> want_packets(kKeys, 0);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      // Skewed: key i gets i+1 packets per round.
      for (int rep = 0; rep <= i; ++rep) {
        cm.add(hashes[i], 1, 100);
        ++want_packets[i];
      }
    }
  }
  for (int i = 0; i < kKeys; ++i) {
    const FlowStats est = cm.estimate(hashes[i]);
    EXPECT_GE(est.packets, want_packets[i]) << "key " << i;
    EXPECT_GE(est.bytes, want_packets[i] * 100) << "key " << i;
    // Conservative update with 3 non-degenerate rows: the overestimate
    // must stay within the additive bound sum(all)/width per row; with
    // only 64 hot keys this is far below total traffic. Sanity-bound it
    // at 2x truth for the heavy half of the keys.
    if (i >= kKeys / 2)
      EXPECT_LE(est.packets, want_packets[i] * 2) << "key " << i;
  }
}

TEST(CountMinSketch, RowsAreCacheLineAligned) {
  for (std::size_t budget : {std::size_t{4096}, std::size_t{64 << 10}}) {
    CountMinSketch cm(budget);
    EXPECT_EQ(cm.width() & (cm.width() - 1), 0u) << "width not a power of two";
    EXPECT_GE(cm.width(), 64u);
    EXPECT_LE(cm.memory_bytes(),
              budget + CountMinSketch::kRows * 64 + 2 * 64);
  }
}

// ---------------------------------------------------------------------------
// HeavyTable

TEST(HeavyTable, TracksTopFlowsWithSpaceSavingBound) {
  constexpr std::size_t kCapacity = 32;
  HeavyTable table(kCapacity);
  util::Rng rng(11);
  std::map<std::uint32_t, std::uint64_t> truth;
  std::uint64_t total_bytes = 0;
  // Heavy-tailed: flow 0 alone draws ~17% of offers (u^3 skew), far
  // above the total/capacity eviction ceiling asserted below.
  for (int round = 0; round < 4000; ++round) {
    const double u = rng.uniform();
    const auto n = static_cast<std::uint32_t>(u * u * u * 200);
    const net::PackedFlowKey key = key_of(n);
    table.offer(key, net::canonical_flow_hash(key), 1, 1000);
    truth[n] += 1000;
    total_bytes += 1000;
  }
  EXPECT_EQ(table.size(), kCapacity);

  // SpaceSaving invariants: counted bytes never undercount the true
  // bytes of the tracked key, and error_bytes bounds the inflation.
  for (const HeavyTable::Entry& e : table.top()) {
    std::uint32_t n = 0xffffffff;
    for (const auto& [cand, bytes] : truth)
      if (key_of(cand) == e.key) n = cand;
    ASSERT_NE(n, 0xffffffffu);
    EXPECT_GE(e.bytes, truth[n]);
    EXPECT_LE(e.bytes - e.error_bytes, truth[n]);
    // Classic guarantee: min-counter (and so any error) <= total / capacity.
    EXPECT_LE(e.error_bytes, total_bytes / kCapacity);
  }

  // The classic SpaceSaving guarantee: every flow whose true volume
  // exceeds total/capacity — the ceiling on any counter that could be
  // evicted — must be tracked. (Flows below that bar may or may not
  // survive; no assertion either way.)
  std::size_t guaranteed = 0;
  for (const auto& [n, bytes] : truth) {
    if (bytes <= total_bytes / kCapacity) continue;
    ++guaranteed;
    const net::PackedFlowKey key = key_of(n);
    EXPECT_NE(table.find(key, net::canonical_flow_hash(key)), nullptr)
        << "flow " << n << " (" << bytes << " B > total/capacity) missing";
  }
  EXPECT_GE(guaranteed, 1u);  // the skew must actually exercise the bound
}

TEST(HeavyTable, EraseFreesCapacityAndKeepsProbeChainsIntact) {
  HeavyTable table(8);
  std::vector<net::PackedFlowKey> keys;
  for (std::uint32_t n = 0; n < 8; ++n) {
    keys.push_back(key_of(n));
    table.offer(keys.back(), net::canonical_flow_hash(keys.back()), 1, 100 + n);
  }
  ASSERT_EQ(table.size(), 8u);
  // Erase half (every other key), then verify the remainder is still
  // findable — backward-shift deletion must not break probe chains.
  for (std::uint32_t n = 0; n < 8; n += 2)
    EXPECT_TRUE(table.erase(keys[n], net::canonical_flow_hash(keys[n])));
  EXPECT_EQ(table.size(), 4u);
  for (std::uint32_t n = 0; n < 8; ++n) {
    const HeavyTable::Entry* e = table.find(keys[n], net::canonical_flow_hash(keys[n]));
    if (n % 2 == 0)
      EXPECT_EQ(e, nullptr) << "erased key " << n << " still present";
    else
      ASSERT_NE(e, nullptr) << "survivor key " << n << " lost";
  }
  // Freed entries are reusable without eviction.
  for (std::uint32_t n = 100; n < 104; ++n) {
    const net::PackedFlowKey key = key_of(n);
    EXPECT_FALSE(table.offer(key, net::canonical_flow_hash(key), 1, 1));
  }
  EXPECT_EQ(table.size(), 8u);
}

// ---------------------------------------------------------------------------
// FlowTier: promotion / demotion round trip + accounting

TEST(FlowTier, PromoteDemoteRoundTripCarriesAggregates) {
  FlowTier tier(256 << 10);
  const net::PackedFlowKey key = key_of(7);
  const std::uint64_t hash = net::canonical_flow_hash(key);
  for (int i = 0; i < 10; ++i) tier.absorb(key, hash, 500);
  ASSERT_GE(tier.tracked_flows(), 1u);

  // Promotion hands out the exact heavy-table aggregate and drops the
  // flow from the table.
  const FlowStats carried = tier.promote(key, hash);
  EXPECT_EQ(carried, (FlowStats{10, 5000}));
  EXPECT_EQ(tier.stats().promotions, 1u);

  // Demotion folds the (grown) aggregate back; the tier's estimate must
  // cover it and the totals must count it.
  const FlowStats grown{25, 12000};
  tier.demote(key, hash, grown);
  EXPECT_EQ(tier.stats().demotions, 1u);
  const FlowStats est = tier.estimate(key, hash);
  EXPECT_GE(est.packets, grown.packets);
  EXPECT_GE(est.bytes, grown.bytes);
  EXPECT_EQ(tier.stats().absorbed_packets, 10u + 25u);
  EXPECT_EQ(tier.stats().absorbed_bytes, 5000u + 12000u);

  // A second promotion returns at least the demoted aggregate.
  const FlowStats again = tier.promote(key, hash);
  EXPECT_GE(again.packets, grown.packets);
  EXPECT_GE(again.bytes, grown.bytes);
}

TEST(FlowTier, PromotingUnknownFlowReturnsZerosAndIsNotCounted) {
  FlowTier tier(64 << 10);
  const net::PackedFlowKey key = key_of(99);
  const FlowStats carried = tier.promote(key, net::canonical_flow_hash(key));
  EXPECT_EQ(carried, FlowStats{});
  EXPECT_EQ(tier.stats().promotions, 0u);
}

TEST(FlowTier, EvictionsAreCountedUnderPressure) {
  // Minimal budget -> 16-entry heavy table; far more distinct flows than
  // that must produce SpaceSaving evictions, all accounted.
  FlowTier tier(1);
  for (std::uint32_t n = 0; n < 500; ++n) {
    const net::PackedFlowKey key = key_of(n);
    tier.absorb(key, net::canonical_flow_hash(key), 100);
  }
  EXPECT_EQ(tier.stats().absorbed_packets, 500u);
  EXPECT_GT(tier.stats().evictions, 0u);
  EXPECT_LE(tier.tracked_flows(), 16u);
  // Eviction inheritance marks uncertainty.
  bool saw_error = false;
  for (const HeavyHitter& hh : tier.heavy_hitters(16))
    saw_error = saw_error || hh.error_bytes > 0;
  EXPECT_TRUE(saw_error);
}

TEST(FlowTier, FootprintStaysWithinBudget) {
  for (std::size_t budget : {std::size_t{256} << 10, std::size_t{1} << 20,
                             std::size_t{4} << 20}) {
    FlowTier tier(budget);
    EXPECT_LE(tier.memory_bytes(), budget + budget / 4)
        << "budget " << budget;
    EXPECT_GE(tier.memory_bytes(), budget / 8) << "budget " << budget;
    EXPECT_EQ(tier.budget_bytes(), budget);
  }
}

// ---------------------------------------------------------------------------
// merge_tiers

TEST(MergeTiers, ConcatenatesDisjointShardsRankedByBytes) {
  FlowTier a(64 << 10), b(64 << 10);
  // Shard-disjoint flows (as canonical-hash routing guarantees).
  for (std::uint32_t n = 0; n < 10; ++n) {
    const net::PackedFlowKey key = key_of(n);
    FlowTier& tier = n % 2 == 0 ? a : b;
    for (std::uint32_t rep = 0; rep <= n; ++rep)
      tier.absorb(key, net::canonical_flow_hash(key), 1000);
  }
  const TierReport report = merge_tiers({&a, &b}, 5);
  ASSERT_EQ(report.heavy_hitters.size(), 5u);
  for (std::size_t i = 1; i < report.heavy_hitters.size(); ++i)
    EXPECT_LE(report.heavy_hitters[i].bytes, report.heavy_hitters[i - 1].bytes);
  // Top flow is rank 9 (10 reps x 1000 bytes), which lives in tier b.
  EXPECT_EQ(net::PackedFlowKey(report.heavy_hitters[0].flow),
            net::PackedFlowKey(key_of(9).unpack()));
  EXPECT_EQ(report.heavy_hitters[0].bytes, 10'000u);
  EXPECT_EQ(report.stats.absorbed_packets,
            a.stats().absorbed_packets + b.stats().absorbed_packets);
}

}  // namespace
}  // namespace zpm::sketch
