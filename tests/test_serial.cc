// RFC 1982-style serial arithmetic: the foundation of every
// sequence-number computation in the analyzer.
#include <gtest/gtest.h>

#include "util/serial.h"

namespace zpm::util {
namespace {

TEST(SerialDiff, BasicOrdering16) {
  EXPECT_EQ(serial_diff<std::uint16_t>(100, 105), 5);
  EXPECT_EQ(serial_diff<std::uint16_t>(105, 100), -5);
  EXPECT_EQ(serial_diff<std::uint16_t>(7, 7), 0);
}

TEST(SerialDiff, WrapsCorrectly16) {
  // 65535 -> 2 is 3 steps forward, not 65533 back.
  EXPECT_EQ(serial_diff<std::uint16_t>(65535, 2), 3);
  EXPECT_EQ(serial_diff<std::uint16_t>(2, 65535), -3);
}

TEST(SerialDiff, WrapsCorrectly32) {
  EXPECT_EQ(serial_diff<std::uint32_t>(0xffffffffu, 1u), 2);
  EXPECT_EQ(serial_diff<std::uint32_t>(1u, 0xffffffffu), -2);
}

TEST(SerialLess, AcrossWrapBoundary) {
  EXPECT_TRUE(serial_less<std::uint16_t>(65530, 5));
  EXPECT_FALSE(serial_less<std::uint16_t>(5, 65530));
  EXPECT_TRUE(serial_less_equal<std::uint16_t>(5, 5));
}

TEST(SerialExtender, MonotoneSequenceExtendsLinearly) {
  SerialExtender<std::uint16_t> ext;
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(ext.extend(static_cast<std::uint16_t>(i)), i);
}

TEST(SerialExtender, ExtendsThroughMultipleWraps) {
  SerialExtender<std::uint16_t> ext;
  std::int64_t expected = 65500;
  ext.extend(65500);
  // Walk forward 200000 steps in increments of 97, crossing the 16-bit
  // boundary several times.
  std::int64_t v = 65500;
  for (int i = 0; i < 2100; ++i) {
    v += 97;
    expected = v;
    EXPECT_EQ(ext.extend(static_cast<std::uint16_t>(v & 0xffff)), expected);
  }
  EXPECT_GT(ext.highest(), 3 * 65536);
}

TEST(SerialExtender, ReorderedPacketFromBeforeWrapExtendsBackwards) {
  SerialExtender<std::uint16_t> ext;
  EXPECT_EQ(ext.extend(65534), 65534);
  EXPECT_EQ(ext.extend(3), 65539);      // wrapped forward
  EXPECT_EQ(ext.extend(65535), 65535);  // late straggler, same cycle
  EXPECT_EQ(ext.highest(), 65539);
}

TEST(SerialExtender, Timestamp32Wrap) {
  SerialExtender<std::uint32_t> ext;
  std::uint32_t near_top = 0xffffff00u;
  EXPECT_EQ(ext.extend(near_top), static_cast<std::int64_t>(near_top));
  EXPECT_EQ(ext.extend(0x00000100u),
            static_cast<std::int64_t>(near_top) + 0x200);
}

}  // namespace
}  // namespace zpm::util
