// Jitter-buffer stall prediction (§5.5 extension).
#include <gtest/gtest.h>

#include "metrics/stall.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

FrameRecord frame_at(double completed_s, double pkt_time_ms) {
  FrameRecord f;
  f.completed = Timestamp::from_seconds(completed_s);
  f.first_packet = f.completed - Duration::millis(1);
  if (pkt_time_ms > 0) f.packetization_time = Duration::millis(
      static_cast<std::int64_t>(pkt_time_ms));
  return f;
}

TEST(StallPredictor, SteadyDeliveryKeepsBufferStable) {
  StallPredictor p;
  // 30 fps: frames every 33 ms covering 33 ms each.
  for (int i = 0; i < 300; ++i) p.on_frame(frame_at(i * 0.033, 33));
  EXPECT_EQ(p.stall_events(), 0u);
  EXPECT_FALSE(p.at_risk());
  EXPECT_NEAR(p.buffer_level_ms(), 150.0, 5.0);
}

TEST(StallPredictor, SlowDeliveryDrainsAndStalls) {
  StallPredictor p;
  // Frames cover 33 ms of media but arrive every 50 ms: drains
  // 17 ms/frame; the 150 ms buffer empties after ~9 frames.
  int first_stall = -1;
  for (int i = 0; i < 40; ++i) {
    p.on_frame(frame_at(i * 0.050, 33));
    if (first_stall < 0 && p.stall_events() > 0) first_stall = i;
  }
  EXPECT_GT(p.stall_events(), 0u);
  EXPECT_GE(first_stall, 7);
  EXPECT_LE(first_stall, 12);
  EXPECT_GT(p.stalled_ms(), 0.0);
}

TEST(StallPredictor, AtRiskBeforeStalling) {
  StallPredictor p;
  p.on_frame(frame_at(0.0, 33));
  // Drain most of the buffer without fully emptying it.
  p.on_frame(frame_at(0.150, 33));  // -117 ms
  EXPECT_EQ(p.stall_events(), 0u);
  EXPECT_TRUE(p.at_risk());
}

TEST(StallPredictor, RecoversAfterRebuffering) {
  StallPredictor p;
  for (int i = 0; i < 20; ++i) p.on_frame(frame_at(i * 0.060, 33));  // drains
  std::uint32_t stalls = p.stall_events();
  EXPECT_GT(stalls, 0u);
  // Healthy delivery afterwards: no further stalls.
  double t = 20 * 0.060;
  for (int i = 0; i < 200; ++i) p.on_frame(frame_at(t + i * 0.033, 33));
  EXPECT_EQ(p.stall_events(), stalls);
  EXPECT_FALSE(p.at_risk());
}

TEST(StallPredictor, BufferCapBoundsFastDelivery) {
  StallPredictor p;
  // Burst: frames covering 100 ms arrive every 5 ms.
  for (int i = 0; i < 50; ++i) p.on_frame(frame_at(i * 0.005, 100));
  EXPECT_LE(p.buffer_level_ms(), 600.0);
}

TEST(StallPredictor, FramesWithoutPacketizationTimeOnlyDrain) {
  StallPredictor p;
  p.on_frame(frame_at(0.0, 0));
  p.on_frame(frame_at(0.050, 0));  // no media contributed, 50 ms drained
  EXPECT_NEAR(p.buffer_level_ms(), 100.0, 1.0);
}

}  // namespace
}  // namespace zpm::metrics
