// Sequence-based loss / duplicate / reorder accounting (§5.5).
#include <gtest/gtest.h>

#include "metrics/loss.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

Timestamp at(double s) { return Timestamp::from_seconds(s); }

TEST(SeqTracker, CleanStreamHasNoEvents) {
  SeqTracker t;
  for (std::uint16_t s = 100; s < 200; ++s) t.on_packet(at(s * 0.01), s);
  t.finish();
  const auto& c = t.counters();
  EXPECT_EQ(c.received, 100u);
  EXPECT_EQ(c.unique, 100u);
  EXPECT_EQ(c.duplicates, 0u);
  EXPECT_EQ(c.reordered, 0u);
  EXPECT_EQ(c.gap_packets, 0u);
  EXPECT_EQ(t.loss_fraction(), 0.0);
}

TEST(SeqTracker, DetectsDuplicates) {
  SeqTracker t;
  t.on_packet(at(0.0), 1);
  t.on_packet(at(0.1), 2);
  t.on_packet(at(0.2), 2);  // duplicate (Zoom retransmission seen twice)
  t.finish();
  EXPECT_EQ(t.counters().duplicates, 1u);
  EXPECT_EQ(t.counters().unique, 2u);
}

TEST(SeqTracker, ReorderFillsHole) {
  SeqTracker t;
  t.on_packet(at(0.0), 10);
  t.on_packet(at(0.01), 12);  // 11 missing
  t.on_packet(at(0.02), 11);  // late arrival fills it
  t.finish();
  const auto& c = t.counters();
  EXPECT_EQ(c.reordered, 1u);
  EXPECT_EQ(c.gap_packets, 0u);
  EXPECT_EQ(c.unique, 3u);
}

TEST(SeqTracker, UnfilledHoleBecomesLossAtFinish) {
  SeqTracker t;
  t.on_packet(at(0.0), 1);
  t.on_packet(at(0.1), 3);  // 2 never arrives
  t.finish();
  EXPECT_EQ(t.counters().gap_packets, 1u);
  EXPECT_NEAR(t.loss_fraction(), 1.0 / 3.0, 1e-9);
}

TEST(SeqTracker, HoleAgesOutOfWindow) {
  SeqTracker t(/*window=*/16);
  t.on_packet(at(0.0), 0);
  t.on_packet(at(0.001), 2);  // hole at 1
  for (std::uint16_t s = 3; s < 40; ++s) t.on_packet(at(s * 0.001), s);
  // Hole fell out of the 16-packet window long ago.
  EXPECT_EQ(t.counters().gap_packets, 1u);
}

TEST(SeqTracker, LateRetransmissionFlaggedBeyondRtoThreshold) {
  SeqTracker t;
  t.on_packet(at(0.0), 1);
  t.on_packet(at(0.005), 3);  // hole at 2 opens at t=5 ms
  // Arrives 250 ms later with a 30 ms RTT hint: way past rtt+100 ms.
  t.on_packet(at(0.255), 2, Duration::millis(30));
  EXPECT_EQ(t.counters().suspected_retransmissions, 1u);
  EXPECT_EQ(t.counters().reordered, 1u);
}

TEST(SeqTracker, FastReorderNotFlaggedAsRetransmission) {
  SeqTracker t;
  t.on_packet(at(0.0), 1);
  t.on_packet(at(0.001), 3);
  t.on_packet(at(0.003), 2, Duration::millis(30));  // 2 ms late: plain reorder
  EXPECT_EQ(t.counters().suspected_retransmissions, 0u);
  EXPECT_EQ(t.counters().reordered, 1u);
}

TEST(SeqTracker, SurvivesSequenceWrap) {
  SeqTracker t;
  std::uint16_t s = 65500;
  for (int i = 0; i < 100; ++i) t.on_packet(at(i * 0.01), s++);
  t.finish();
  EXPECT_EQ(t.counters().unique, 100u);
  EXPECT_EQ(t.counters().gap_packets, 0u);
}

TEST(SeqTracker, LossAcrossWrapBoundary) {
  SeqTracker t;
  t.on_packet(at(0.0), 65534);
  t.on_packet(at(0.1), 65535);
  t.on_packet(at(0.2), 1);  // 0 lost across the wrap
  t.finish();
  EXPECT_EQ(t.counters().gap_packets, 1u);
}

}  // namespace
}  // namespace zpm::metrics
