// Full-frame decoding: the builder/decoder pair the simulator and
// analyzer communicate through.
#include <gtest/gtest.h>

#include "net/build.h"
#include "net/packet.h"

namespace zpm::net {
namespace {

using util::Timestamp;

TEST(PacketDecode, UdpRoundTrip) {
  auto payload = util::from_hex("05 0001 00010000 00" /* sfu-ish bytes */);
  auto pkt = build_udp(Timestamp::from_seconds(12.5), Ipv4Addr(10, 8, 0, 1), 40000,
                       Ipv4Addr(170, 114, 0, 10), 8801, payload);
  auto view = decode_packet(pkt);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->l4, L4Proto::Udp);
  EXPECT_EQ(view->ip.src, Ipv4Addr(10, 8, 0, 1));
  EXPECT_EQ(view->udp.dst_port, 8801);
  EXPECT_EQ(view->ts.sec(), 12.5);
  ASSERT_EQ(view->l4_payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), view->l4_payload.begin()));
  EXPECT_EQ(view->five_tuple().protocol, kIpProtoUdp);
  EXPECT_EQ(view->wire_length(), pkt.data.size());
}

TEST(PacketDecode, TcpRoundTrip) {
  std::vector<std::uint8_t> payload(37, 0x17);
  auto pkt = build_tcp(Timestamp::from_seconds(1), Ipv4Addr(10, 8, 0, 2), 50000,
                       Ipv4Addr(170, 114, 0, 10), 443, 1000, 2000,
                       kTcpAck | kTcpPsh, payload);
  auto view = decode_packet(pkt);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->l4, L4Proto::Tcp);
  EXPECT_EQ(view->tcp.seq, 1000u);
  EXPECT_EQ(view->tcp.ack, 2000u);
  EXPECT_EQ(view->l4_payload.size(), 37u);
  EXPECT_EQ(view->src_port(), 50000);
  EXPECT_EQ(view->dst_port(), 443);
}

TEST(PacketDecode, RejectsNonIpv4EtherType) {
  auto pkt = build_udp(Timestamp::from_seconds(0), Ipv4Addr(1, 1, 1, 1), 1,
                       Ipv4Addr(2, 2, 2, 2), 2, {});
  pkt.data[12] = 0x86;  // IPv6 ethertype
  pkt.data[13] = 0xdd;
  EXPECT_FALSE(decode_packet(pkt));
}

TEST(PacketDecode, RejectsNonFirstFragment) {
  auto pkt = build_udp(Timestamp::from_seconds(0), Ipv4Addr(1, 1, 1, 1), 1,
                       Ipv4Addr(2, 2, 2, 2), 2, {});
  // Set fragment offset bits in the IP header (bytes 20-21 of frame).
  pkt.data[20] = 0x00;
  pkt.data[21] = 0x10;
  EXPECT_FALSE(decode_packet(pkt));
}

TEST(PacketDecode, RejectsTruncatedFrame) {
  auto pkt = build_udp(Timestamp::from_seconds(0), Ipv4Addr(1, 1, 1, 1), 1,
                       Ipv4Addr(2, 2, 2, 2), 2, {});
  pkt.data.resize(20);  // cut inside the IP header
  EXPECT_FALSE(decode_packet(pkt));
}

TEST(PacketDecode, EthernetPaddingNotMistakenForPayload) {
  // 10-byte UDP payload, then 6 bytes of Ethernet padding.
  std::vector<std::uint8_t> payload(10, 0x55);
  auto pkt = build_udp(Timestamp::from_seconds(0), Ipv4Addr(1, 1, 1, 1), 1,
                       Ipv4Addr(2, 2, 2, 2), 2, payload);
  pkt.data.insert(pkt.data.end(), 6, 0x00);
  auto view = decode_packet(pkt);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->l4_payload.size(), 10u);
}

TEST(PacketDecode, MacForIsDeterministicAndLocal) {
  auto m1 = mac_for(Ipv4Addr(10, 8, 1, 2));
  auto m2 = mac_for(Ipv4Addr(10, 8, 1, 2));
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1.bytes[0] & 0x02, 0x02);  // locally administered bit
}

}  // namespace
}  // namespace zpm::net
