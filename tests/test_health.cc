// AnalyzerHealth accounting: all-clear on clean traces, per-category
// counters that explain every dropped record on hostile traces,
// bit-identical serial/sharded merging, strict mode and flow quarantine.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "net/build.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/campus.h"
#include "sim/corruptor.h"
#include "util/spsc_ring.h"

namespace zpm::core {
namespace {

const net::Ipv4Addr kClient(10, 8, 0, 1);
const net::Ipv4Addr kServer(170, 114, 0, 10);  // inside ServerDb::official()

std::vector<net::RawPacket> campus_trace(
    std::optional<sim::CorruptorConfig> corruption = std::nullopt) {
  sim::CampusConfig cc;
  cc.seed = 77;
  cc.duration = util::Duration::seconds(180);
  cc.meetings_per_peak_hour = 60.0;
  cc.background_ratio = 0.5;
  cc.corruption = corruption;
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));
  return trace;
}

AnalyzerHealth run_serial(const std::vector<net::RawPacket>& trace,
                          AnalyzerConfig cfg = {}) {
  Analyzer analyzer(cfg);
  for (const auto& pkt : trace) analyzer.offer(pkt);
  analyzer.finish();
  return analyzer.health();
}

TEST(AnalyzerHealth_, CleanCampusTraceIsAllClear) {
  auto health = run_serial(campus_trace());
  EXPECT_TRUE(health.all_clear());
  EXPECT_EQ(health.dropped_records(), 0u);
}

TEST(AnalyzerHealth_, CorruptedTraceCountersMatchManualCounts) {
  auto trace = campus_trace(sim::CorruptorConfig::hostile(0xFEED));

  // Independently recount the observations the analyzer claims to make
  // at its global-order point: snaplen truncation and ts regressions.
  std::uint64_t truncated = 0;
  std::uint64_t regressions = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].is_truncated()) ++truncated;
    if (i > 0 && trace[i].ts < trace[i - 1].ts) ++regressions;
  }
  ASSERT_GT(truncated, 0u);
  ASSERT_GT(regressions, 0u);

  auto health = run_serial(trace);
  EXPECT_EQ(health.snaplen_truncated, truncated);
  EXPECT_EQ(health.non_monotonic_ts, regressions);
  // The hostile mix mangles headers and payloads, so Zoom-layer parse
  // failures must surface instead of crashing or silently skewing.
  EXPECT_GT(health.dropped_records(), 0u);
  EXPECT_FALSE(health.all_clear());
}

TEST(AnalyzerHealth_, SerialAndShardedBitIdenticalOnCorruptedTrace) {
  auto trace = campus_trace(sim::CorruptorConfig::hostile(0xFEED));
  auto serial = run_serial(trace);

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    pipeline::ParallelAnalyzerConfig cfg;
    cfg.shards = shards;
    pipeline::ParallelAnalyzer par(cfg);
    for (const auto& pkt : trace) par.offer(pkt);
    par.finish();
    AnalyzerHealth merged = par.health();
    // Backpressure spins are the one timing-dependent field.
    merged.ring_wait_spins = 0;
    EXPECT_EQ(serial, merged);
  }
}

TEST(AnalyzerHealth_, StrictModeReportsFirstViolation) {
  // Three clean-looking unknown-media packets, then a record whose
  // server payload is shorter than the 8-byte SFU encap.
  auto ts = [](int i) {
    return util::Timestamp::from_seconds(10) + util::Duration::millis(20 * i);
  };
  std::vector<net::RawPacket> trace;
  for (int i = 0; i < 3; ++i)
    trace.push_back(net::build_udp(
        ts(i), kClient, 45000, kServer, 8801,
        std::vector<std::uint8_t>{0x05, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                  24, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  trace.push_back(net::build_udp(ts(3), kClient, 45001, kServer, 8801,
                                 std::vector<std::uint8_t>{0x05, 0x00, 0x01}));

  AnalyzerConfig cfg;
  cfg.strict = true;
  Analyzer analyzer(cfg);
  for (const auto& pkt : trace) analyzer.offer(pkt);
  analyzer.finish();
  ASSERT_TRUE(analyzer.strict_violation().has_value());
  EXPECT_EQ(analyzer.strict_violation()->category, "bad-sfu-encap");
  EXPECT_EQ(analyzer.strict_violation()->sequence, 4u);
  EXPECT_EQ(analyzer.strict_violation()->ts, ts(3));

  // The sharded engine must agree on the earliest violation.
  pipeline::ParallelAnalyzerConfig par_cfg;
  par_cfg.analyzer = cfg;
  par_cfg.shards = 2;
  pipeline::ParallelAnalyzer par(par_cfg);
  for (const auto& pkt : trace) par.offer(pkt);
  par.finish();
  ASSERT_TRUE(par.strict_violation().has_value());
  EXPECT_EQ(par.strict_violation()->category, "bad-sfu-encap");
  EXPECT_EQ(par.strict_violation()->sequence, 4u);
}

TEST(AnalyzerHealth_, RepeatedlyMalformedFlowIsQuarantined) {
  auto ts = [](int i) {
    return util::Timestamp::from_seconds(10) + util::Duration::millis(20 * i);
  };
  std::vector<net::RawPacket> trace;
  for (int i = 0; i < 10; ++i)
    trace.push_back(net::build_udp(ts(i), kClient, 45000, kServer, 8801,
                                   std::vector<std::uint8_t>{0x05, 0x00, 0x01}));

  AnalyzerConfig cfg;
  cfg.quarantine_threshold = 4;
  auto health = run_serial(trace, cfg);
  EXPECT_EQ(health.bad_sfu_encap, 4u);       // counted until the threshold
  EXPECT_EQ(health.quarantined_flows, 1u);   // then the flow is cut off
  EXPECT_EQ(health.quarantined_packets, 6u);  // and the rest skipped
}

TEST(AnalyzerHealth_, WellFormedTrafficResetsMalformedStreak) {
  auto ts = [](int i) {
    return util::Timestamp::from_seconds(10) + util::Duration::millis(20 * i);
  };
  // Alternating malformed / well-formed-unknown packets on one flow:
  // the streak never reaches the threshold, so nothing is quarantined.
  std::vector<net::RawPacket> trace;
  for (int i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> payload;
    if (i % 2 == 0) {
      payload = {0x05, 0x00, 0x01};  // truncated SFU encap
    } else {
      payload = {0x05, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                 24,   1,    2,    3,    4,    5,    6,    7};  // unknown type
    }
    trace.push_back(net::build_udp(ts(i), kClient, 45000, kServer, 8801, payload));
  }
  AnalyzerConfig cfg;
  cfg.quarantine_threshold = 4;
  auto health = run_serial(trace, cfg);
  EXPECT_EQ(health.bad_sfu_encap, 10u);
  EXPECT_EQ(health.quarantined_flows, 0u);
  EXPECT_EQ(health.quarantined_packets, 0u);
}

TEST(AnalyzerHealth_, RingWaitSpinsSurfaceBackpressure) {
  // A deliberately tiny ring with a slow consumer: the producer must
  // record at least one full-ring wait.
  util::SpscRing<int> ring(2);
  std::thread consumer([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    while (ring.pop()) {
    }
  });
  for (int i = 0; i < 64; ++i) ring.push(i);
  ring.close();
  consumer.join();
  EXPECT_GT(ring.push_wait_spins(), 0u);
}

}  // namespace
}  // namespace zpm::core
