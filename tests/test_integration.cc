// End-to-end integration: simulator wire bytes -> capture filter ->
// analyzer -> metrics, checked against the simulator's ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include <unistd.h>

#include <cstdio>

#include "capture/anonymizer.h"
#include "capture/filter.h"
#include "core/analyzer.h"
#include "net/pcapng.h"
#include "sim/meeting.h"

namespace zpm {
namespace {

using util::Duration;
using util::Timestamp;

sim::ParticipantConfig participant(std::uint8_t host, bool on_campus) {
  sim::ParticipantConfig p;
  p.ip = on_campus ? net::Ipv4Addr(10, 8, 0, host) : net::Ipv4Addr(98, 0, 0, host);
  p.on_campus = on_campus;
  return p;
}

core::AnalyzerConfig analyzer_config() {
  core::AnalyzerConfig c;
  return c;
}

sim::MeetingConfig base_meeting(std::uint64_t seed, double seconds) {
  sim::MeetingConfig mc;
  mc.seed = seed;
  mc.start = Timestamp::from_seconds(5000);
  mc.duration = Duration::seconds(seconds);
  mc.participants = {participant(1, true), participant(2, true)};
  return mc;
}

core::Analyzer analyze(sim::MeetingSim& sim, core::AnalyzerConfig cfg = analyzer_config()) {
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();
  return analyzer;
}

TEST(Integration, TwoPartyServerMeetingFullyRecovered) {
  sim::MeetingSim sim(base_meeting(100, 60.0));
  auto analyzer = analyze(sim);
  const auto& c = analyzer.counters();

  // Everything the monitor saw was recognized as Zoom.
  EXPECT_EQ(c.total_packets, sim.stats().monitor_packets);
  EXPECT_EQ(c.zoom_packets, c.total_packets);
  EXPECT_GT(c.media_packets, 3000u);
  EXPECT_GT(c.rtcp_packets, 100u);

  // One meeting, two active participants.
  auto meetings = analyzer.meetings().meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0]->active_participants(), 2u);

  // Streams: 2 participants x (audio + video) x (uplink + downlink copy)
  // = 8 wire streams carrying 4 distinct media.
  EXPECT_EQ(analyzer.streams().media_count(), 4u);
  EXPECT_EQ(analyzer.streams().size(), 8u);
}

TEST(Integration, RttEstimateMatchesConfiguredPath) {
  auto mc = base_meeting(101, 45.0);
  mc.participants[0].access_path.base_delay_ms = 2.0;
  mc.participants[0].access_path.jitter_ms = 0.3;
  mc.participants[0].wan_path.base_delay_ms = 15.0;
  mc.participants[0].wan_path.jitter_ms = 0.8;
  mc.participants[1].wan_path.base_delay_ms = 15.0;
  sim::MeetingSim sim(mc);
  auto analyzer = analyze(sim);
  // §5.3 method 1 measures monitor<->SFU RTT: 2 x wan one-way ≈ 30 ms
  // plus jitter. Hundreds of samples over 45 s.
  const auto& samples = analyzer.sfu_rtt_samples();
  ASSERT_GT(samples.size(), 200u);
  double sum = 0;
  for (const auto& s : samples) sum += s.rtt.ms();
  double mean = sum / static_cast<double>(samples.size());
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 40.0);
}

TEST(Integration, FrameRateEstimateTracksGroundTruth) {
  auto mc = base_meeting(102, 60.0);
  mc.collect_qos = true;
  sim::MeetingSim sim(mc);
  auto analyzer = analyze(sim);

  // Mean ground-truth video frame rate at the receivers.
  double qos_sum = 0;
  std::size_t qos_n = 0;
  for (const auto& q : sim.qos_samples()) {
    qos_sum += q.frame_rate;
    ++qos_n;
  }
  ASSERT_GT(qos_n, 20u);
  double qos_mean = qos_sum / static_cast<double>(qos_n);

  // Mean estimated frame rate over downlink video streams.
  double est_sum = 0;
  std::size_t est_n = 0;
  for (const auto& stream : analyzer.streams().streams()) {
    if (stream->kind != zoom::MediaKind::Video) continue;
    if (stream->direction != core::StreamDirection::FromSfu) continue;
    for (const auto& sec : stream->metrics->seconds()) {
      est_sum += sec.frame_rate_fps;
      ++est_n;
    }
  }
  ASSERT_GT(est_n, 40u);
  double est_mean = est_sum / static_cast<double>(est_n);
  EXPECT_NEAR(est_mean, qos_mean, 3.0) << "estimator diverges from client truth";
}

TEST(Integration, CongestionVisibleInJitterAndLatency) {
  auto mc = base_meeting(103, 90.0);
  sim::CongestionEpisode ep;
  ep.start = mc.start + Duration::seconds(40.0);
  ep.end = ep.start + Duration::seconds(15.0);
  ep.extra_delay_ms = 45.0;
  ep.extra_loss = 0.02;
  mc.participants[0].congestion.push_back(ep);
  sim::MeetingSim sim(mc);
  auto analyzer = analyze(sim);

  // Compare RTT samples inside vs. outside the episode.
  double in_sum = 0, out_sum = 0;
  std::size_t in_n = 0, out_n = 0;
  for (const auto& s : analyzer.sfu_rtt_samples()) {
    if (s.when >= ep.start && s.when <= ep.end) {
      in_sum += s.rtt.ms();
      ++in_n;
    } else {
      out_sum += s.rtt.ms();
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 20u);
  ASSERT_GT(out_n, 100u);
  EXPECT_GT(in_sum / static_cast<double>(in_n),
            out_sum / static_cast<double>(out_n) + 15.0);
}

TEST(Integration, P2pMeetingDetectedViaStun) {
  auto mc = base_meeting(104, 50.0);
  mc.participants[1] = participant(9, false);
  mc.p2p_switch_after = Duration::seconds(10.0);
  sim::MeetingSim sim(mc);
  auto analyzer = analyze(sim);
  const auto& c = analyzer.counters();
  EXPECT_GT(c.stun_packets, 0u);
  EXPECT_GT(c.p2p_udp_packets, 500u);
  EXPECT_EQ(c.p2p_false_positives, 0u);
  // The P2P flow and the earlier server flows group into ONE meeting
  // via the duplicate-stream match across the mode switch (§4.3).
  auto meetings = analyzer.meetings().meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_TRUE(meetings[0]->saw_p2p);
}

TEST(Integration, PassiveParticipantInvisible) {
  // Fig. 9 left: a participant with no media streams is not counted.
  auto mc = base_meeting(105, 30.0);
  auto passive = participant(3, true);
  passive.send_audio = false;
  passive.send_video = false;
  mc.participants.push_back(passive);
  sim::MeetingSim sim(mc);
  auto analyzer = analyze(sim);
  auto meetings = analyzer.meetings().meetings();
  ASSERT_EQ(meetings.size(), 1u);
  // Only the two senders are observed as active; the passive third
  // participant received media (downlink streams to its IP exist!) —
  // those downlinks DO reveal it. Truly invisible is the off-campus
  // passive case:
  EXPECT_GE(meetings[0]->active_participants(), 2u);

  auto mc2 = base_meeting(106, 30.0);
  auto off_passive = participant(9, false);
  off_passive.send_audio = false;
  off_passive.send_video = false;
  mc2.participants.push_back(off_passive);
  sim::MeetingSim sim2(mc2);
  auto analyzer2 = analyze(sim2);
  auto meetings2 = analyzer2.meetings().meetings();
  ASSERT_EQ(meetings2.size(), 1u);
  EXPECT_EQ(meetings2[0]->active_participants(), 2u);  // third invisible
}

TEST(Integration, CaptureFilterPreservesAnalysis) {
  // Full pipeline with the P4 filter (no anonymization): the analyzer
  // must see exactly the Zoom packets.
  auto mc = base_meeting(107, 30.0);
  mc.participants[1] = participant(9, false);
  mc.p2p_switch_after = Duration::seconds(8.0);
  sim::MeetingSim sim(mc);

  capture::CaptureConfig cap_cfg;
  cap_cfg.campus_subnets = {net::Ipv4Subnet(net::Ipv4Addr(10, 8, 0, 0), 16)};
  cap_cfg.anonymize = false;
  capture::CaptureFilter filter(cap_cfg);
  core::Analyzer analyzer(analyzer_config());
  std::uint64_t offered = 0;
  while (auto pkt = sim.next_packet()) {
    ++offered;
    if (auto kept = filter.process(*pkt)) analyzer.offer(*kept);
  }
  analyzer.finish();
  // The filter keeps every monitor packet of a pure-Zoom trace.
  EXPECT_EQ(filter.counters().passed, offered);
  EXPECT_GT(analyzer.counters().p2p_udp_packets, 100u);
}

TEST(Integration, LossShowsUpAsDuplicatesOrGaps) {
  auto mc = base_meeting(108, 40.0);
  for (auto& p : mc.participants) {
    p.wan_path.loss = 0.02;
    p.access_path.loss = 0.004;
  }
  sim::MeetingSim sim(mc);
  auto analyzer = analyze(sim);
  std::uint64_t dups = 0, gaps = 0, reordered = 0;
  for (const auto& stream : analyzer.streams().streams()) {
    auto loss = stream->metrics->total_loss();
    dups += loss.duplicates;
    gaps += loss.gap_packets;
    reordered += loss.reordered;
  }
  // Retransmissions manifest as duplicates/reorderings at the monitor
  // ("we rarely see entirely lost packets in our trace but rather
  // duplicates", §5.5).
  EXPECT_GT(dups + reordered + gaps, 20u);
}


TEST(Integration, AnonymizationIsTransparentToAnalysis) {
  // Prefix-preserving anonymization with an equally-anonymized subnet
  // configuration must yield identical detection results (§6.1: the
  // paper analyzed anonymized traces).
  auto mc = base_meeting(109, 20.0);
  std::vector<net::RawPacket> trace;
  {
    sim::MeetingSim sim(mc);
    while (auto pkt = sim.next_packet()) trace.push_back(std::move(*pkt));
  }

  core::Analyzer plain(analyzer_config());
  for (const auto& pkt : trace) plain.offer(pkt);
  plain.finish();

  capture::PrefixPreservingAnonymizer anon(0xfeedface);
  core::AnalyzerConfig anon_cfg;
  std::vector<net::Ipv4Subnet> anon_servers;
  for (const auto& subnet : zoom::ServerDb::official().subnets())
    anon_servers.emplace_back(anon.anonymize(subnet.base()), subnet.prefix_len());
  anon_cfg.server_db = zoom::ServerDb(anon_servers);
  core::Analyzer masked(anon_cfg);
  for (auto pkt : trace) {
    anon.anonymize_frame(pkt);
    masked.offer(pkt);
  }
  masked.finish();

  EXPECT_EQ(plain.counters().zoom_packets, masked.counters().zoom_packets);
  EXPECT_EQ(plain.counters().media_packets, masked.counters().media_packets);
  EXPECT_EQ(plain.counters().rtcp_packets, masked.counters().rtcp_packets);
  EXPECT_EQ(plain.streams().size(), masked.streams().size());
  EXPECT_EQ(plain.meetings().meeting_count(), masked.meetings().meeting_count());
}

TEST(Integration, PcapRoundTripPreservesAnalysis) {
  // Writing the monitor trace to a pcap file and reading it back must
  // not change a single analysis result (lossless capture I/O).
  auto mc = base_meeting(110, 15.0);
  // PID-unique: parallel ctest workers share /tmp.
  std::string path = ::testing::TempDir() + "/zpm_integration." +
                     std::to_string(::getpid()) + ".pcap";
  core::Analyzer direct(analyzer_config());
  {
    sim::MeetingSim sim(mc);
    net::PcapWriter writer(path);
    while (auto pkt = sim.next_packet()) {
      direct.offer(*pkt);
      writer.write(*pkt);
    }
  }
  direct.finish();

  core::Analyzer from_file(analyzer_config());
  auto source = net::open_capture(path);
  ASSERT_NE(source, nullptr);
  while (auto pkt = source->next()) from_file.offer(*pkt);
  from_file.finish();
  std::remove(path.c_str());

  EXPECT_EQ(direct.counters().zoom_packets, from_file.counters().zoom_packets);
  EXPECT_EQ(direct.counters().media_packets, from_file.counters().media_packets);
  EXPECT_EQ(direct.streams().size(), from_file.streams().size());
  EXPECT_EQ(direct.sfu_rtt_samples().size(), from_file.sfu_rtt_samples().size());
}

}  // namespace
}  // namespace zpm
