// Frame assembly and both frame-rate estimation methods (§5.2).
#include <gtest/gtest.h>

#include <vector>

#include "metrics/frames.h"

namespace zpm::metrics {
namespace {

using util::Duration;
using util::Timestamp;

struct Collector {
  std::vector<FrameRecord> frames;
  FrameAssembler::FrameCallback cb() {
    return [this](const FrameRecord& f) { frames.push_back(f); };
  }
};

TEST(FrameAssembler, CompletesOnExpectedCount) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(1.0);
  // 3-packet frame, packets slightly spread in time.
  fa.on_packet(t, 100, 90000, false, 1000, 3);
  fa.on_packet(t + Duration::millis(1), 101, 90000, false, 1000, 3);
  EXPECT_TRUE(c.frames.empty());
  fa.on_packet(t + Duration::millis(2), 102, 90000, true, 1000, 3);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].packets, 3u);
  EXPECT_EQ(c.frames[0].payload_bytes, 3000u);
  EXPECT_TRUE(c.frames[0].saw_marker);
  EXPECT_EQ(c.frames[0].delay().ms(), 2.0);
  EXPECT_FALSE(c.frames[0].packetization_time);  // first frame: no delta
}

TEST(FrameAssembler, OutOfOrderPacketsStillComplete) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(2.0);
  fa.on_packet(t, 12, 1000, true, 400, 3);
  fa.on_packet(t + Duration::millis(1), 10, 1000, false, 400, 3);
  fa.on_packet(t + Duration::millis(2), 11, 1000, false, 400, 3);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].packets, 3u);
}

TEST(FrameAssembler, DuplicatePacketCountedOnce) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(3.0);
  fa.on_packet(t, 1, 5000, false, 100, 2);
  fa.on_packet(t + Duration::millis(1), 1, 5000, false, 100, 2);  // dup
  EXPECT_TRUE(c.frames.empty());
  fa.on_packet(t + Duration::millis(2), 2, 5000, true, 100, 2);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].payload_bytes, 200u);
}

TEST(FrameAssembler, EncoderFpsFromTimestampDelta) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(4.0);
  // Two 1-packet frames 3000 RTP ticks apart -> 30 fps encoder rate.
  fa.on_packet(t, 1, 90000, true, 100, 1);
  fa.on_packet(t + Duration::millis(33), 2, 93000, true, 100, 1);
  ASSERT_EQ(c.frames.size(), 2u);
  ASSERT_TRUE(c.frames[1].encoder_fps);
  EXPECT_NEAR(*c.frames[1].encoder_fps, 30.0, 1e-9);
  ASSERT_TRUE(c.frames[1].packetization_time);
  EXPECT_NEAR(c.frames[1].packetization_time->ms(), 33.33, 0.01);
}

TEST(FrameAssembler, MarkerModeRequiresContiguousSequences) {
  Collector c;
  FrameAssembler fa(CompletionMode::MarkerBit, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(5.0);
  // Marker arrives but the middle packet is missing: incomplete.
  fa.on_packet(t, 10, 7000, false, 100, 0);
  fa.on_packet(t + Duration::millis(1), 12, 7000, true, 100, 0);
  EXPECT_TRUE(c.frames.empty());
  // The hole fills late: now complete.
  fa.on_packet(t + Duration::millis(5), 11, 7000, false, 100, 0);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].packets, 3u);
}

TEST(FrameAssembler, LatePacketForCompletedFrameIgnored) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(6.0);
  fa.on_packet(t, 1, 100, true, 50, 1);
  // A retransmitted copy arrives after completion: no new frame.
  fa.on_packet(t + Duration::millis(150), 1, 100, true, 50, 1);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(fa.frames_completed(), 1u);
}

TEST(FrameAssembler, ExpireStaleDropsAbandonedPartials) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(7.0);
  fa.on_packet(t, 1, 100, false, 50, 3);  // never completes
  EXPECT_EQ(fa.partial_frames(), 1u);
  fa.expire_stale(t + Duration::seconds(10.0));
  EXPECT_EQ(fa.partial_frames(), 0u);
  EXPECT_TRUE(c.frames.empty());
}

TEST(FrameAssembler, SequenceWrapInsideFrame) {
  Collector c;
  FrameAssembler fa(CompletionMode::ExpectedCount, 90000, c.cb());
  Timestamp t = Timestamp::from_seconds(8.0);
  fa.on_packet(t, 65535, 100, false, 10, 2);
  fa.on_packet(t + Duration::millis(1), 0, 100, true, 10, 2);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].packets, 2u);
}

TEST(FrameRateWindow, CountsCompletionsInLastSecond) {
  FrameRateWindow w;
  Timestamp t = Timestamp::from_seconds(10.0);
  for (int i = 0; i < 30; ++i)
    w.on_frame_completed(t + Duration::millis(i * 33));
  // All 30 frames within the last second at t+1s.
  EXPECT_EQ(w.rate(t + Duration::millis(990)), 30u);
  // Half the frames have aged out half a second later.
  std::uint32_t later = w.rate(t + Duration::millis(1500));
  EXPECT_GT(later, 10u);
  EXPECT_LT(later, 20u);
  EXPECT_EQ(w.rate(t + Duration::seconds(5.0)), 0u);
}

}  // namespace
}  // namespace zpm::metrics
