// The snapshot failure model: restore succeeds *exactly* or fails
// cleanly — truncation, bit flips, bad magic/version/length/checksum
// and trailing garbage are all rejected with the caller's data
// untouched, and a failed write never clobbers an existing good
// snapshot. Plus the FlowTier image: deserialization is geometry-
// checked and all-or-nothing.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/snapshot.h"
#include "net/five_tuple.h"
#include "net/headers.h"
#include "sketch/sketch.h"

namespace zpm::analysis {
namespace {

std::string temp_path(const char* name) {
  // PID-unique: parallel ctest workers share /tmp.
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

void write_bytes(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A report with every field populated, so codecs are exercised end to
/// end (sparse tallies included).
EpochReport sample_report(std::uint64_t seq) {
  EpochReport rep;
  rep.seq = seq;
  rep.first_packet = seq * 1000;
  rep.packets = 1000;
  rep.first_ts = util::Timestamp::from_seconds(100.0 + static_cast<double>(seq));
  rep.last_ts = rep.first_ts + util::Duration::seconds(0.9);
  rep.counters.total_packets = 1000;
  rep.counters.zoom_packets = 400;
  rep.counters.zoom_bytes = 123456;
  rep.counters.encap_tally[7] = {12, 3400};
  rep.counters.encap_tally[255] = {1, 99};
  rep.counters.payload_tally[0] = {5, 500};
  rep.counters.payload_tally[767] = {2, 80};
  rep.health.truncated_l2 = 3;
  rep.health.frontend_rejected = 600;
  rep.health.epoch_evicted_flows = 4;
  rep.health.epoch_evicted_meetings = 1;
  rep.stream_count = 6;
  rep.media_count = 4;
  rep.meeting_count = 1;
  rep.zoom_flow_count = 4;
  rep.tier_stats.absorbed_packets = 600;
  rep.tier_stats.absorbed_bytes = 48000;
  rep.tier_stats.promotions = 2;
  sketch::HeavyHitter h;
  h.flow = net::FiveTuple{net::Ipv4Addr(10, 8, 0, 1), net::Ipv4Addr(8, 8, 8, 8),
                          1234, 443, net::kIpProtoTcp};
  h.packets = 55;
  h.bytes = 7200;
  h.error_bytes = 31;
  rep.heavy_hitters.push_back(h);
  return rep;
}

SnapshotData sample_snapshot() {
  SnapshotData data;
  data.next_epoch_seq = 3;
  data.packets_consumed = 3000;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const auto rep = sample_report(s);
    data.cumulative_counters.merge(rep.counters);
    data.cumulative_health.merge(rep.health);
    data.recent_epochs.push_back(rep);
  }
  data.background_tier = {0xde, 0xad, 0xbe, 0xef, 0x01};
  return data;
}

TEST(Snapshot, RoundTripIsExact) {
  const auto data = sample_snapshot();
  const auto bytes = encode_snapshot(data);
  SnapshotData parsed;
  ASSERT_TRUE(parse_snapshot(bytes, parsed));
  EXPECT_TRUE(parsed == data);
  // Determinism: equal data encodes to equal bytes.
  EXPECT_EQ(encode_snapshot(parsed), bytes);
}

TEST(Snapshot, EveryTruncationRejected) {
  const auto bytes = encode_snapshot(sample_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SnapshotData parsed;
    EXPECT_FALSE(parse_snapshot(
        std::span<const std::uint8_t>(bytes).subspan(0, len), parsed))
        << "accepted truncation at " << len;
  }
}

TEST(Snapshot, EverySingleBitFlipRejected) {
  const auto bytes = encode_snapshot(sample_snapshot());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = bytes;
      mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ (1u << bit));
      SnapshotData parsed;
      EXPECT_FALSE(parse_snapshot(mutated, parsed))
          << "accepted flip at byte " << i << " bit " << bit;
    }
  }
}

TEST(Snapshot, TrailingGarbageRejected) {
  auto bytes = encode_snapshot(sample_snapshot());
  bytes.push_back(0x00);
  SnapshotData parsed;
  EXPECT_FALSE(parse_snapshot(bytes, parsed));
}

TEST(Snapshot, WrongMagicAndVersionRejected) {
  auto bytes = encode_snapshot(sample_snapshot());
  {
    auto m = bytes;
    m[0] = 'X';
    SnapshotData parsed;
    EXPECT_FALSE(parse_snapshot(m, parsed));
  }
  {
    auto m = bytes;
    m[7] = static_cast<std::uint8_t>(m[7] + 1);  // version (u32be at 4..7)
    SnapshotData parsed;
    EXPECT_FALSE(parse_snapshot(m, parsed));
  }
  // An epoch file is not a snapshot and vice versa (distinct magics).
  const auto epoch_bytes = encode_epoch_file(sample_report(0));
  SnapshotData parsed;
  EXPECT_FALSE(parse_snapshot(epoch_bytes, parsed));
  EpochReport rep;
  EXPECT_FALSE(parse_epoch_file(bytes, rep));
}

TEST(Snapshot, LoadStatusesAndAtomicSave) {
  const std::string path = temp_path("snap_statuses.bin");
  std::remove(path.c_str());

  SnapshotData data;
  std::string error;
  EXPECT_EQ(load_snapshot(path, data, &error), RestoreStatus::Missing);

  const auto original = sample_snapshot();
  ASSERT_TRUE(save_snapshot(original, path, &error)) << error;
  // No temp file may linger after a successful atomic write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  EXPECT_EQ(load_snapshot(path, data, &error), RestoreStatus::Ok);
  EXPECT_TRUE(data == original);

  // Corrupt on disk -> Corrupt status, caller's data untouched.
  auto bytes = encode_snapshot(original);
  bytes[bytes.size() / 2] ^= 0x40;
  write_bytes(path, bytes);
  SnapshotData untouched = original;
  EXPECT_EQ(load_snapshot(path, untouched, &error), RestoreStatus::Corrupt);
  EXPECT_TRUE(untouched == original);
}

TEST(EpochFile, RoundTripAndCorruptionRejected) {
  const std::string path = temp_path("epoch_file.bin");
  const auto rep = sample_report(42);
  std::string error;
  ASSERT_TRUE(save_epoch_report(rep, path, &error)) << error;
  EpochReport loaded;
  ASSERT_TRUE(load_epoch_report(path, loaded, &error)) << error;
  EXPECT_TRUE(loaded == rep);

  auto bytes = encode_epoch_file(rep);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EpochReport parsed;
    EXPECT_FALSE(parse_epoch_file(
        std::span<const std::uint8_t>(bytes).subspan(0, len), parsed))
        << "accepted truncation at " << len;
  }
}

// ---------------------------------------------------------------------------
// FlowTier persistence (the snapshot's background_tier payload)

sketch::FlowTier populated_tier(std::size_t budget) {
  sketch::FlowTier tier(budget);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const net::FiveTuple flow{
        net::Ipv4Addr(10, 8, 0, 1),
        net::Ipv4Addr(93, 184, 216, static_cast<std::uint8_t>(i % 250)),
        static_cast<std::uint16_t>(10000 + i), 443, net::kIpProtoUdp};
    const net::PackedFlowKey key(flow);
    const auto hash = net::canonical_flow_hash(key);
    for (int n = 0; n < 3; ++n)
      tier.absorb(key, hash, 200 + i);
  }
  return tier;
}

std::vector<std::uint8_t> tier_bytes(const sketch::FlowTier& tier) {
  util::ByteWriter w;
  tier.serialize(w);
  return w.take();
}

TEST(FlowTierImage, RoundTripIsExact) {
  const auto tier = populated_tier(std::size_t{64} << 10);
  const auto bytes = tier_bytes(tier);

  sketch::FlowTier restored(std::size_t{64} << 10);
  util::ByteReader r(bytes);
  ASSERT_TRUE(restored.deserialize(r));
  EXPECT_EQ(r.remaining(), 0u);
  // Equal state -> equal image -> equal reports.
  EXPECT_EQ(tier_bytes(restored), bytes);
  EXPECT_EQ(restored.stats(), tier.stats());
  EXPECT_EQ(restored.tracked_flows(), tier.tracked_flows());
  EXPECT_EQ(restored.heavy_hitters(8), tier.heavy_hitters(8));
}

TEST(FlowTierImage, GeometryMismatchRejected) {
  const auto bytes = tier_bytes(populated_tier(std::size_t{64} << 10));
  sketch::FlowTier other(std::size_t{128} << 10);  // different geometry
  util::ByteReader r(bytes);
  EXPECT_FALSE(other.deserialize(r));
}

TEST(FlowTierImage, TruncationRejected) {
  const auto bytes = tier_bytes(populated_tier(std::size_t{16} << 10));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    sketch::FlowTier tier(std::size_t{16} << 10);
    util::ByteReader r(std::span<const std::uint8_t>(bytes).subspan(0, len));
    EXPECT_FALSE(tier.deserialize(r) && r.remaining() == 0)
        << "accepted truncation at " << len;
  }
}

}  // namespace
}  // namespace zpm::analysis
