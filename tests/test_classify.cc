// End-to-end Zoom packet dissection (§4.2) over simulator-built bytes.
#include <gtest/gtest.h>

#include "sim/wire.h"
#include "zoom/classify.h"

namespace zpm::zoom {
namespace {

util::Rng& rng() {
  static util::Rng r(42);
  return r;
}

sim::MediaPacketSpec video_spec() {
  sim::MediaPacketSpec spec;
  spec.encap_type = MediaEncapType::Video;
  spec.payload_type = pt::kVideoMain;
  spec.ssrc = 0x1001;
  spec.rtp_seq = 100;
  spec.rtp_timestamp = 90000;
  spec.marker = true;
  spec.frame_sequence = 7;
  spec.packets_in_frame = 3;
  spec.payload_bytes = 500;
  return spec;
}

TEST(Dissect, ServerVideoPacket) {
  auto inner = sim::build_media_payload(video_spec(), rng());
  auto wrapped = sim::wrap_sfu(inner, 55, /*from_sfu=*/true);
  auto zp = dissect(wrapped, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Media);
  ASSERT_TRUE(zp->sfu);
  EXPECT_EQ(zp->sfu->sequence, 55);
  EXPECT_TRUE(zp->sfu->is_from_sfu());
  ASSERT_TRUE(zp->media);
  EXPECT_EQ(zp->media->type, 16);
  EXPECT_EQ(zp->media->packets_in_frame, 3);
  ASSERT_TRUE(zp->rtp);
  EXPECT_EQ(zp->rtp->ssrc, 0x1001u);
  EXPECT_EQ(zp->rtp->payload_type, pt::kVideoMain);
  EXPECT_TRUE(zp->rtp->marker);
  EXPECT_EQ(zp->media_kind(), MediaKind::Video);
  EXPECT_EQ(zp->ssrc(), 0x1001u);
  // Video payload begins with the FU-A bytes which are stripped off.
  ASSERT_TRUE(zp->fu_a);
  EXPECT_EQ(zp->rtp_payload.size(), 500u - 2u);
}

TEST(Dissect, P2pAudioPacket) {
  sim::MediaPacketSpec spec;
  spec.encap_type = MediaEncapType::Audio;
  spec.payload_type = pt::kAudioSpeaking;
  spec.ssrc = 0x2002;
  spec.rtp_seq = 7;
  spec.rtp_timestamp = 48000;
  spec.payload_bytes = 90;
  auto payload = sim::build_media_payload(spec, rng());
  auto zp = dissect(payload, Transport::P2P);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Media);
  EXPECT_FALSE(zp->sfu);  // no SFU encapsulation on P2P
  EXPECT_EQ(zp->media_kind(), MediaKind::Audio);
  EXPECT_EQ(zp->rtp_payload.size(), 90u);
  EXPECT_FALSE(zp->fu_a);
}

TEST(Dissect, ScreenSharePacket) {
  sim::MediaPacketSpec spec;
  spec.encap_type = MediaEncapType::ScreenShare;
  spec.payload_type = pt::kScreenShareMain;
  spec.ssrc = 0x3003;
  spec.payload_bytes = 333;
  auto inner = sim::build_media_payload(spec, rng());
  auto wrapped = sim::wrap_sfu(inner, 1, false);
  auto zp = dissect(wrapped, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->media_kind(), MediaKind::ScreenShare);
  EXPECT_EQ(zp->rtp_payload.size(), 333u);
}

TEST(Dissect, RtcpSrWithSdes) {
  proto::SenderReport sr;
  sr.sender_ssrc = 0x4004;
  sr.rtp_timestamp = 1234;
  sr.packet_count = 10;
  auto inner = sim::build_rtcp_payload(0x4004, sr, /*include_sdes=*/true, 9, rng());
  auto wrapped = sim::wrap_sfu(inner, 2, true);
  auto zp = dissect(wrapped, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Rtcp);
  ASSERT_TRUE(zp->media);
  EXPECT_EQ(zp->media->type, 34);  // SR + SDES
  ASSERT_EQ(zp->rtcp.size(), 2u);
  EXPECT_EQ(zp->ssrc(), 0x4004u);
}

TEST(Dissect, RtcpSrOnly) {
  proto::SenderReport sr;
  sr.sender_ssrc = 0x5005;
  auto inner = sim::build_rtcp_payload(0x5005, sr, /*include_sdes=*/false, 9, rng());
  auto wrapped = sim::wrap_sfu(inner, 2, false);
  auto zp = dissect(wrapped, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->media->type, 33);
  ASSERT_EQ(zp->rtcp.size(), 1u);
}

TEST(Dissect, OddSfuTypeIsUnknownSfu) {
  auto inner = sim::build_media_payload(video_spec(), rng());
  auto wrapped = sim::wrap_sfu(inner, 3, false, /*sfu_type=*/0x01);
  auto zp = dissect(wrapped, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::UnknownSfu);
  EXPECT_FALSE(zp->media);
}

TEST(Dissect, UnknownMediaTypeOnServerIsUnknownMedia) {
  auto inner = sim::build_unknown_payload(30, 77, 120, rng());
  auto wrapped = sim::wrap_sfu(inner, 3, false);
  auto zp = dissect(wrapped, Transport::ServerBased);
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::UnknownMedia);
}

TEST(Dissect, NonZoomP2pPayloadRejected) {
  // The false-positive filter of §4.1: random payloads on a candidate
  // P2P flow must not be classified as Zoom.
  std::vector<std::uint8_t> garbage(100, 0x41);
  EXPECT_FALSE(dissect(garbage, Transport::P2P));
  auto unknown = sim::build_unknown_payload(30, 1, 60, rng());
  EXPECT_FALSE(dissect(unknown, Transport::P2P));
}

TEST(Dissect, TooShortServerPayloadRejected) {
  std::vector<std::uint8_t> tiny(4, 0x05);
  EXPECT_FALSE(dissect(tiny, Transport::ServerBased));
}

TEST(Dissect, StunPacket) {
  std::array<std::uint8_t, 12> txn{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  util::ByteWriter w;
  proto::make_binding_request(txn).serialize(w);
  auto zp = dissect_stun(w.view());
  ASSERT_TRUE(zp);
  EXPECT_EQ(zp->category, PacketCategory::Stun);
  ASSERT_TRUE(zp->stun);
  EXPECT_TRUE(zp->stun->is_request());
  std::vector<std::uint8_t> garbage(30, 0);
  EXPECT_FALSE(dissect_stun(garbage));
}

TEST(PayloadTypes, Table3KnownCombinations) {
  EXPECT_TRUE(is_known_payload_type(MediaKind::Video, 98));
  EXPECT_TRUE(is_known_payload_type(MediaKind::Video, 110));
  EXPECT_FALSE(is_known_payload_type(MediaKind::Video, 99));
  EXPECT_TRUE(is_known_payload_type(MediaKind::Audio, 112));
  EXPECT_TRUE(is_known_payload_type(MediaKind::Audio, 99));
  EXPECT_TRUE(is_known_payload_type(MediaKind::Audio, 113));
  EXPECT_TRUE(is_known_payload_type(MediaKind::Audio, 110));
  EXPECT_TRUE(is_known_payload_type(MediaKind::ScreenShare, 99));
  EXPECT_FALSE(is_known_payload_type(MediaKind::ScreenShare, 98));
}

TEST(PayloadTypes, Descriptions) {
  EXPECT_EQ(payload_type_description(MediaKind::Audio, 112), "speaking mode");
  EXPECT_EQ(payload_type_description(MediaKind::Audio, 99), "silent mode");
  EXPECT_EQ(payload_type_description(MediaKind::Audio, 113), "mode unknown");
  EXPECT_EQ(payload_type_description(MediaKind::Video, 110), "FEC");
  EXPECT_EQ(payload_type_description(MediaKind::Video, 98), "main stream");
  EXPECT_EQ(payload_type_description(MediaKind::ScreenShare, 42), "unknown");
}

}  // namespace
}  // namespace zpm::zoom
