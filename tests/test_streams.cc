// Stream table and duplicate-stream detection (§4.3 step 1).
#include <gtest/gtest.h>

#include "core/streams.h"

namespace zpm::core {
namespace {

using util::Timestamp;

Timestamp at(double s) { return Timestamp::from_seconds(s); }

net::FiveTuple flow(std::uint8_t host, std::uint16_t port) {
  return net::FiveTuple{net::Ipv4Addr(10, 8, 0, host), net::Ipv4Addr(170, 114, 0, 9),
                        port, 8801, 17};
}

StreamInfo& create(StreamTable& table, const net::FiveTuple& f, std::uint32_t ssrc,
                   std::uint32_t rtp_ts, Timestamp t,
                   zoom::MediaKind kind = zoom::MediaKind::Video) {
  return table.get_or_create(StreamKey{f, ssrc}, kind, zoom::Transport::ServerBased,
                             StreamDirection::ToSfu, f.src_ip, f.src_port, rtp_ts, t);
}

TEST(StreamTable, SameKeyReturnsSameStream) {
  StreamTable table;
  auto& s1 = create(table, flow(1, 40000), 0x42, 1000, at(10));
  auto& s2 = create(table, flow(1, 40000), 0x42, 2000, at(11));
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(table.size(), 1u);
}

TEST(StreamTable, DifferentSsrcSameFlowIsDifferentStream) {
  StreamTable table;
  auto& s1 = create(table, flow(1, 40000), 0x42, 1000, at(10));
  auto& s2 = create(table, flow(1, 40000), 0x43, 1000, at(10));
  EXPECT_NE(&s1, &s2);
  EXPECT_NE(s1.media_id, s2.media_id);
}

TEST(StreamTable, SfuCopyGetsSameMediaId) {
  // The uplink stream and its SFU-forwarded copy: same SSRC, different
  // 5-tuple, aligned timestamps -> one media id.
  StreamTable table;
  auto& uplink = create(table, flow(1, 40000), 0x42, 1000, at(10));
  table.touch(uplink, 90000, at(20));
  net::FiveTuple downlink{net::Ipv4Addr(170, 114, 0, 9), net::Ipv4Addr(10, 8, 0, 2),
                          8801, 41000, 17};
  auto& copy = table.get_or_create(StreamKey{downlink, 0x42}, zoom::MediaKind::Video,
                                   zoom::Transport::ServerBased,
                                   StreamDirection::FromSfu, downlink.dst_ip,
                                   downlink.dst_port, 90040, at(20.05));
  EXPECT_EQ(copy.media_id, uplink.media_id);
  EXPECT_EQ(table.media_count(), 1u);
}

TEST(StreamTable, P2pModeSwitchPreservesMediaId) {
  // After a P2P<->server switch the 5-tuple changes but RTP state
  // continues; the matcher must link old and new streams.
  StreamTable table;
  auto& before = create(table, flow(1, 40000), 0x7, 500'000, at(100));
  table.touch(before, 520'000, at(104));
  net::FiveTuple p2p{net::Ipv4Addr(10, 8, 0, 1), net::Ipv4Addr(98, 0, 0, 7),
                     47000, 52000, 17};
  auto& after = table.get_or_create(StreamKey{p2p, 0x7}, zoom::MediaKind::Video,
                                    zoom::Transport::P2P, StreamDirection::P2p,
                                    p2p.src_ip, p2p.src_port, 521'000, at(104.5));
  EXPECT_EQ(after.media_id, before.media_id);
}

TEST(StreamTable, SsrcCollisionAcrossMeetingsNotMerged) {
  // Same SSRC in an unrelated meeting, but RTP timestamps far apart:
  // must be a fresh media id (the paper's challenge 2, §4.3.1).
  StreamTable table;
  auto& a = create(table, flow(1, 40000), 0x42, 1000, at(10));
  table.touch(a, 10'000, at(12));
  auto& b = create(table, flow(5, 43000), 0x42, 900'000'000, at(12.5));
  EXPECT_NE(a.media_id, b.media_id);
  EXPECT_EQ(table.media_count(), 2u);
}

TEST(StreamTable, StaleStreamNotMatchedByWallClock) {
  StreamTable table;
  auto& a = create(table, flow(1, 40000), 0x42, 1000, at(10));
  table.touch(a, 2000, at(11));
  // Timestamp aligns but the stream has been dead for 5 minutes.
  auto& b = create(table, flow(5, 43000), 0x42, 2500, at(311));
  EXPECT_NE(a.media_id, b.media_id);
}

TEST(StreamTable, DifferentKindNotMatched) {
  StreamTable table;
  auto& a = create(table, flow(1, 40000), 0x42, 1000, at(10), zoom::MediaKind::Video);
  auto& b = create(table, flow(5, 43000), 0x42, 1100, at(10.5), zoom::MediaKind::Audio);
  EXPECT_NE(a.media_id, b.media_id);
}

TEST(StreamTable, SsrcOnlyAblationMergesWhatTimestampsWouldNot) {
  // Disabling the timestamp feature (ablation) wrongly merges the
  // SSRC-collision case above — quantified in bench_ablation_grouping.
  DuplicateMatchConfig config;
  config.require_timestamp_match = false;
  StreamTable table(config);
  auto& a = create(table, flow(1, 40000), 0x42, 1000, at(10));
  table.touch(a, 10'000, at(12));
  auto& b = create(table, flow(5, 43000), 0x42, 900'000'000, at(12.5));
  EXPECT_EQ(a.media_id, b.media_id);  // the failure mode, by design
}

TEST(StreamTable, FindReturnsNullForUnknown) {
  StreamTable table;
  EXPECT_EQ(table.find(StreamKey{flow(1, 2), 3}), nullptr);
}

TEST(StreamTable, TouchAdvancesTimestampMonotonically) {
  StreamTable table;
  auto& s = create(table, flow(1, 40000), 0x42, 1000, at(10));
  table.touch(s, 5000, at(11));
  std::int64_t high = s.last_ext_rtp_ts;
  table.touch(s, 2000, at(11.5));  // reordered packet: no regression
  EXPECT_EQ(s.last_ext_rtp_ts, high);
  EXPECT_EQ(s.last_seen, at(11.5));
}

}  // namespace
}  // namespace zpm::core
