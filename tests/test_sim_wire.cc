// Simulator wire formats re-parsed by the real dissector (generator /
// analyzer independence).
#include <gtest/gtest.h>

#include "sim/wire.h"
#include "util/stats.h"
#include "zoom/classify.h"

namespace zpm::sim {
namespace {

TEST(Wire, MediaPayloadSizesAddUp) {
  util::Rng rng(1);
  MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Audio;
  spec.payload_type = zoom::pt::kAudioSilent;
  spec.payload_bytes = 40;
  auto bytes = build_media_payload(spec, rng);
  // 19-byte audio encap + 12-byte RTP + 40 payload.
  EXPECT_EQ(bytes.size(), 19u + 12u + 40u);
}

TEST(Wire, EncryptedPayloadIsHighEntropy) {
  // §4.2.1: the portion after the headers must look like ciphertext.
  util::Rng rng(2);
  std::vector<std::size_t> histogram(256, 0);
  for (int i = 0; i < 200; ++i) {
    MediaPacketSpec spec;
    spec.encap_type = zoom::MediaEncapType::Audio;
    spec.payload_type = zoom::pt::kAudioSpeaking;
    spec.payload_bytes = 100;
    auto bytes = build_media_payload(spec, rng);
    for (std::size_t b = 31; b < bytes.size(); ++b) ++histogram[bytes[b]];
  }
  EXPECT_GT(util::shannon_entropy(histogram), 7.8);
}

TEST(Wire, SfuWrapPrependsExactlyEightBytes) {
  util::Rng rng(3);
  std::vector<std::uint8_t> inner = {1, 2, 3};
  auto wrapped = wrap_sfu(inner, 0x1234, true);
  ASSERT_EQ(wrapped.size(), 11u);
  EXPECT_EQ(wrapped[0], zoom::kSfuTypeMedia);
  EXPECT_EQ(wrapped[7], zoom::kSfuDirFromSfu);
  EXPECT_EQ(wrapped[8], 1);
}

TEST(Wire, RtcpPayloadDissectsAsSenderReport) {
  util::Rng rng(4);
  proto::SenderReport sr;
  sr.sender_ssrc = 0xabc;
  sr.packet_count = 77;
  auto inner = build_rtcp_payload(0xabc, sr, /*include_sdes=*/true, 5, rng);
  auto wrapped = wrap_sfu(inner, 1, false);
  auto zp = zoom::dissect(wrapped, zoom::Transport::ServerBased);
  ASSERT_TRUE(zp);
  ASSERT_EQ(zp->rtcp.size(), 2u);
  const auto& parsed_sr = std::get<proto::SenderReport>(zp->rtcp[0]);
  EXPECT_EQ(parsed_sr.packet_count, 77u);
}

TEST(Wire, UnknownPayloadHasRequestedSizeAndType) {
  util::Rng rng(5);
  auto bytes = build_unknown_payload(30, 99, 120, rng);
  EXPECT_EQ(bytes.size(), 120u);
  EXPECT_EQ(bytes[0], 30);
  EXPECT_EQ(bytes[1], 0);
  EXPECT_EQ(bytes[2], 99);
}

TEST(Wire, VideoPayloadCarriesFuA) {
  util::Rng rng(6);
  MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Video;
  spec.payload_type = zoom::pt::kVideoMain;
  spec.packets_in_frame = 1;
  spec.payload_bytes = 50;
  auto bytes = build_media_payload(spec, rng);
  auto zp = zoom::dissect(bytes, zoom::Transport::P2P);
  ASSERT_TRUE(zp);
  ASSERT_TRUE(zp->fu_a);
  EXPECT_EQ(zp->fu_a->indicator.type, proto::kNalTypeFuA);
}

}  // namespace
}  // namespace zpm::sim
