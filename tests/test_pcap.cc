// pcap file format: write/read round-trips, byte-order handling,
// malformed-file behaviour.
#include <gtest/gtest.h>
#include <unistd.h>

#include <sstream>

#include "net/build.h"
#include "net/pcap.h"

namespace zpm::net {
namespace {

using util::Timestamp;

RawPacket sample_packet(double t, std::uint8_t fill, std::size_t payload = 20) {
  std::vector<std::uint8_t> data(payload, fill);
  return build_udp(Timestamp::from_seconds(t), Ipv4Addr(10, 0, 0, 1), 1111,
                   Ipv4Addr(20, 0, 0, 2), 2222, data);
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    ASSERT_TRUE(writer.ok());
    writer.write(sample_packet(1.5, 0xaa));
    writer.write(sample_packet(2.25, 0xbb, 300));
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  PcapReader reader(buf);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.link_type(), 1u);
  auto p1 = reader.next();
  ASSERT_TRUE(p1);
  EXPECT_EQ(p1->ts.sec(), 1.5);
  auto p2 = reader.next();
  ASSERT_TRUE(p2);
  EXPECT_EQ(p2->ts.sec(), 2.25);
  EXPECT_GT(p2->data.size(), p1->data.size());
  EXPECT_FALSE(reader.next());
  EXPECT_TRUE(reader.ok());  // clean EOF is not an error
  EXPECT_EQ(reader.packets_read(), 2u);
}

TEST(Pcap, SnaplenTruncates) {
  std::stringstream buf;
  {
    PcapWriter writer(buf, /*snaplen=*/60);
    writer.write(sample_packet(1.0, 0xcc, 500));
  }
  PcapReader reader(buf);
  auto pkt = reader.next();
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->data.size(), 60u);
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream buf;
  buf.write("NOTPCAPNOTPCAPNOTPCAPNOT", 24);
  PcapReader reader(buf);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("magic"), std::string::npos);
}

TEST(Pcap, TruncatedRecordReportsError) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    writer.write(sample_packet(1.0, 0xdd));
  }
  std::string content = buf.str();
  content.resize(content.size() - 5);  // chop the record body
  std::stringstream cut(content);
  PcapReader reader(cut);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.next());
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos);
}

TEST(Pcap, ImplausibleLengthRejected) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
  }
  // Append a record header claiming a 10 MB packet.
  auto put32 = [&buf](std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    buf.write(b, 4);
  };
  put32(1);
  put32(0);
  put32(10 * 1024 * 1024);
  put32(10 * 1024 * 1024);
  PcapReader reader(buf);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.next());
  EXPECT_FALSE(reader.ok());
}

TEST(Pcap, NanosecondMagicRoundsToNearestMicrosecond) {
  // 0xa1b23c4d captures carry nanosecond fractions; truncating to µs
  // would bias every timestamp down by up to 1 µs. The reader rounds to
  // nearest instead.
  std::stringstream buf;
  auto put32 = [&buf](std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    buf.write(b, 4);
  };
  auto put16 = [&buf](std::uint16_t v) {
    char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
    buf.write(b, 2);
  };
  put32(0xa1b23c4d);  // nanosecond magic
  put16(2);
  put16(4);
  put32(0);
  put32(0);
  put32(65535);
  put32(1);  // Ethernet
  auto frame = sample_packet(0.0, 0xee).data;
  auto record = [&](std::uint32_t sec, std::uint32_t nanos) {
    put32(sec);
    put32(nanos);
    put32(static_cast<std::uint32_t>(frame.size()));
    put32(static_cast<std::uint32_t>(frame.size()));
    buf.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  };
  record(10, 123'456'499);  // rounds down → 123456 µs
  record(10, 123'456'500);  // rounds up   → 123457 µs
  record(10, 999);          // sub-µs      → 1 µs, not 0

  PcapReader reader(buf);
  ASSERT_TRUE(reader.ok()) << reader.error();
  auto p1 = reader.next();
  auto p2 = reader.next();
  auto p3 = reader.next();
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(p1->ts.us(), 10'123'456);
  EXPECT_EQ(p2->ts.us(), 10'123'457);
  EXPECT_EQ(p3->ts.us(), 10'000'001);
}

TEST(Pcap, NextIntoReusesBufferAndMatchesNext) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    for (int i = 0; i < 5; ++i)
      writer.write(sample_packet(i * 1.0, static_cast<std::uint8_t>(i), 200));
  }
  std::string content = buf.str();
  std::stringstream a(content), b(content);
  PcapReader ra(a), rb(b);
  RawPacket scratch;
  scratch.data.reserve(512);
  const auto* before = scratch.data.data();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rb.next_into(scratch)) << "packet " << i;
    auto want = ra.next();
    ASSERT_TRUE(want);
    EXPECT_EQ(scratch.ts, want->ts);
    EXPECT_EQ(scratch.data, want->data);
    EXPECT_EQ(scratch.orig_len, want->orig_len);
    // Same allocation throughout: next_into reuses capacity.
    EXPECT_EQ(scratch.data.data(), before) << "packet " << i;
  }
  EXPECT_FALSE(rb.next_into(scratch));
  EXPECT_TRUE(rb.ok());
}

TEST(Pcap, FileRoundTrip) {
  // PID-unique: parallel ctest workers share /tmp.
  std::string path = ::testing::TempDir() + "/zpm_pcap_test." +
                     std::to_string(::getpid()) + ".pcap";
  {
    PcapWriter writer(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i)
      writer.write(sample_packet(i * 0.1, static_cast<std::uint8_t>(i)));
  }
  PcapReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  int count = 0;
  while (reader.next()) ++count;
  EXPECT_EQ(count, 10);
  std::remove(path.c_str());
}

TEST(Pcap, MissingFileReportsError) {
  PcapReader reader(std::string("/nonexistent/zpm.pcap"));
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace zpm::net
