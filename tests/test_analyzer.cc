// The end-to-end analyzer over hand-built packets: detection paths,
// counters, stream/meeting wiring, RTT extraction.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "net/build.h"
#include "sim/wire.h"

namespace zpm::core {
namespace {

using util::Duration;
using util::Timestamp;

const net::Ipv4Addr kSfu(170, 114, 0, 10);     // in ServerDb::official()
const net::Ipv4Addr kZc(170, 114, 0, 200);     // zone controller
const net::Ipv4Addr kClientA(10, 8, 0, 1);
const net::Ipv4Addr kClientB(10, 8, 0, 2);
const net::Ipv4Addr kPeer(98, 0, 0, 9);        // off-campus P2P peer

AnalyzerConfig config() {
  AnalyzerConfig c;
  return c;
}

util::Rng& rng() {
  static util::Rng r(7);
  return r;
}

net::RawPacket media_packet(Timestamp t, net::Ipv4Addr src, std::uint16_t sport,
                            net::Ipv4Addr dst, std::uint16_t dport,
                            const sim::MediaPacketSpec& spec, bool to_sfu) {
  auto inner = sim::build_media_payload(spec, rng());
  auto wrapped = sim::wrap_sfu(inner, 1, !to_sfu);
  return net::build_udp(t, src, sport, dst, dport, wrapped);
}

sim::MediaPacketSpec video_spec(std::uint32_t ssrc, std::uint16_t seq,
                                std::uint32_t ts) {
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Video;
  spec.payload_type = zoom::pt::kVideoMain;
  spec.ssrc = ssrc;
  spec.rtp_seq = seq;
  spec.rtp_timestamp = ts;
  spec.marker = true;
  spec.packets_in_frame = 1;
  spec.frame_sequence = seq;
  spec.payload_bytes = 600;
  return spec;
}

TEST(Analyzer, ServerMediaPacketCountedAndStreamCreated) {
  Analyzer a(config());
  auto pkt = media_packet(Timestamp::from_seconds(10), kClientA, 40000, kSfu, 8801,
                          video_spec(0x42, 1, 90000), /*to_sfu=*/true);
  EXPECT_TRUE(a.offer(pkt));
  a.finish();
  const auto& c = a.counters();
  EXPECT_EQ(c.total_packets, 1u);
  EXPECT_EQ(c.zoom_packets, 1u);
  EXPECT_EQ(c.server_udp_packets, 1u);
  EXPECT_EQ(c.media_packets, 1u);
  EXPECT_EQ(a.streams().size(), 1u);
  EXPECT_EQ(a.zoom_flow_count(), 1u);
  const auto& stream = *a.streams().streams()[0];
  EXPECT_EQ(stream.kind, zoom::MediaKind::Video);
  EXPECT_EQ(stream.direction, StreamDirection::ToSfu);
  EXPECT_EQ(stream.client_ip, kClientA);
  EXPECT_EQ(a.meetings().meeting_count(), 1u);
}

TEST(Analyzer, SfuCopyYieldsRttSampleAndOneMeeting) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(10);
  // A's uplink video packet...
  a.offer(media_packet(t, kClientA, 40000, kSfu, 8801, video_spec(0x42, 5, 90000),
                       true));
  // ...comes back from the SFU 30 ms later addressed to B.
  a.offer(media_packet(t + Duration::millis(30), kSfu, 8801, kClientB, 41000,
                       video_spec(0x42, 5, 90000), false));
  a.finish();
  ASSERT_EQ(a.sfu_rtt_samples().size(), 1u);
  EXPECT_NEAR(a.sfu_rtt_samples()[0].rtt.ms(), 30.0, 0.01);
  // Duplicate-stream detection linked the copies into one meeting with
  // both participants.
  EXPECT_EQ(a.streams().size(), 2u);
  EXPECT_EQ(a.streams().media_count(), 1u);
  auto meetings = a.meetings().meetings();
  ASSERT_EQ(meetings.size(), 1u);
  EXPECT_EQ(meetings[0]->active_participants(), 2u);
  EXPECT_EQ(meetings[0]->rtt_to_sfu.size(), 1u);
}

TEST(Analyzer, StunArmsP2pDetection) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(20);
  // STUN request from A:47000 to the zone controller.
  std::array<std::uint8_t, 12> txn{};
  util::ByteWriter stun;
  proto::make_binding_request(txn).serialize(stun);
  EXPECT_TRUE(a.offer(net::build_udp(t, kClientA, 47000, kZc, 3478, stun.view())));
  EXPECT_EQ(a.counters().stun_packets, 1u);

  // P2P media from the armed endpoint to an unknown peer.
  sim::MediaPacketSpec spec = video_spec(0x7, 1, 1000);
  auto inner = sim::build_media_payload(spec, rng());
  auto p2p = net::build_udp(t + Duration::seconds(2.0), kClientA, 47000, kPeer,
                            52000, inner);
  EXPECT_TRUE(a.offer(p2p));
  a.finish();
  EXPECT_EQ(a.counters().p2p_udp_packets, 1u);
  ASSERT_EQ(a.streams().size(), 1u);
  EXPECT_EQ(a.streams().streams()[0]->transport, zoom::Transport::P2P);
  EXPECT_TRUE(a.meetings().meetings()[0]->saw_p2p);
}

TEST(Analyzer, P2pFalsePositiveRejectedByDissection) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(20);
  std::array<std::uint8_t, 12> txn{};
  util::ByteWriter stun;
  proto::make_binding_request(txn).serialize(stun);
  a.offer(net::build_udp(t, kClientA, 47000, kZc, 3478, stun.view()));
  // Port reuse: same endpoint now talks DNS-ish garbage to someone.
  std::vector<std::uint8_t> garbage(80, 0x00);
  auto fp = net::build_udp(t + Duration::seconds(1.0), kClientA, 47000,
                           net::Ipv4Addr(1, 1, 1, 1), 53, garbage);
  EXPECT_FALSE(a.offer(fp));
  EXPECT_EQ(a.counters().p2p_false_positives, 1u);
  EXPECT_EQ(a.streams().size(), 0u);
}

TEST(Analyzer, UnarmedP2pEndpointIgnored) {
  Analyzer a(config());
  sim::MediaPacketSpec spec = video_spec(0x7, 1, 1000);
  auto inner = sim::build_media_payload(spec, rng());
  // Perfectly valid Zoom P2P bytes, but no STUN was observed: a monitor
  // cannot know this is Zoom (the paper's point about prior work).
  auto pkt = net::build_udp(Timestamp::from_seconds(5), kClientA, 47000, kPeer,
                            52000, inner);
  EXPECT_FALSE(a.offer(pkt));
  EXPECT_EQ(a.counters().zoom_packets, 0u);
}

TEST(Analyzer, TcpControlConnectionRtt) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(30);
  std::vector<std::uint8_t> payload(100, 0x17);
  a.offer(net::build_tcp(t, kClientA, 55000, kSfu, 443, 1000, 1, net::kTcpAck,
                         payload));
  a.offer(net::build_tcp(t + Duration::millis(24), kSfu, 443, kClientA, 55000, 1,
                         1100, net::kTcpAck, {}));
  a.finish();
  EXPECT_EQ(a.counters().tcp_control_packets, 2u);
  ASSERT_EQ(a.tcp_rtt().size(), 1u);
  const auto& est = a.tcp_rtt().begin()->second;
  ASSERT_EQ(est.server_rtt().size(), 1u);
  EXPECT_NEAR(est.server_rtt()[0].rtt.ms(), 24.0, 0.01);
}

TEST(Analyzer, TcpNon443ToZoomIgnored) {
  Analyzer a(config());
  std::vector<std::uint8_t> payload(10, 0);
  EXPECT_FALSE(a.offer(net::build_tcp(Timestamp::from_seconds(1), kClientA, 55000,
                                      kSfu, 8080, 1, 1, net::kTcpAck, payload)));
}

TEST(Analyzer, UnknownSfuAndMediaTypesCounted) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(40);
  // SFU type != 0x05.
  auto inner = sim::build_media_payload(video_spec(0x1, 1, 1), rng());
  auto odd = sim::wrap_sfu(inner, 1, false, 0x02);
  a.offer(net::build_udp(t, kClientA, 40000, kSfu, 8801, odd));
  // Unknown media encap type.
  auto unknown = sim::wrap_sfu(sim::build_unknown_payload(30, 1, 100, rng()), 2, false);
  a.offer(net::build_udp(t, kClientA, 40000, kSfu, 8801, unknown));
  EXPECT_EQ(a.counters().unknown_sfu_packets, 1u);
  EXPECT_EQ(a.counters().unknown_media_packets, 1u);
  EXPECT_EQ(a.counters().zoom_packets, 2u);
  EXPECT_EQ(a.counters().media_packets, 0u);
}

TEST(Analyzer, NonZoomTrafficNotCounted) {
  Analyzer a(config());
  std::vector<std::uint8_t> data(100, 0xaa);
  EXPECT_FALSE(a.offer(net::build_udp(Timestamp::from_seconds(1), kClientA, 1234,
                                      net::Ipv4Addr(23, 4, 5, 6), 443, data)));
  EXPECT_FALSE(a.offer(net::build_tcp(Timestamp::from_seconds(1), kClientA, 1234,
                                      net::Ipv4Addr(23, 4, 5, 6), 443, 1, 1,
                                      net::kTcpAck, data)));
  EXPECT_EQ(a.counters().total_packets, 2u);
  EXPECT_EQ(a.counters().zoom_packets, 0u);
}

TEST(Analyzer, RtcpAttributedToExistingStream) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(50);
  a.offer(media_packet(t, kClientA, 40000, kSfu, 8801, video_spec(0x42, 1, 90000),
                       true));
  proto::SenderReport sr;
  sr.sender_ssrc = 0x42;
  auto rtcp = sim::wrap_sfu(sim::build_rtcp_payload(0x42, sr, true, 2, rng()), 3,
                            false);
  a.offer(net::build_udp(t + Duration::millis(100), kClientA, 40000, kSfu, 8801,
                         rtcp));
  a.finish();
  EXPECT_EQ(a.counters().rtcp_packets, 1u);
  const auto& stream = *a.streams().streams()[0];
  ASSERT_EQ(stream.metrics->seconds().size(), 1u);
  // RTCP bytes count toward the stream's transport bytes.
  EXPECT_GT(stream.metrics->seconds()[0].transport_bytes,
            stream.metrics->seconds()[0].media_bytes);
}

TEST(Analyzer, EncapAndPayloadTypeTalliesFeedTables) {
  Analyzer a(config());
  Timestamp t = Timestamp::from_seconds(60);
  a.offer(media_packet(t, kClientA, 40000, kSfu, 8801, video_spec(0x42, 1, 90000),
                       true));
  sim::MediaPacketSpec audio;
  audio.encap_type = zoom::MediaEncapType::Audio;
  audio.payload_type = zoom::pt::kAudioSpeaking;
  audio.ssrc = 0x43;
  audio.payload_bytes = 90;
  a.offer(media_packet(t, kClientA, 40001, kSfu, 8801, audio, true));
  const auto& c = a.counters();
  EXPECT_EQ(c.encap_types().at(16).packets, 1u);
  EXPECT_EQ(c.encap_types().at(15).packets, 1u);
  EXPECT_EQ(c.payload_types().at({static_cast<std::uint8_t>(zoom::MediaKind::Video),
                                zoom::pt::kVideoMain})
                .packets,
            1u);
}

}  // namespace
}  // namespace zpm::core
