// campus_monitor — the operator's live view: campus traffic through the
// P4-style capture filter into the analyzer, with per-interval status
// lines (active meetings, streams, Zoom share of traffic, media rates).
// This is the "capacity planning / troubleshooting" use case from §1.
//
// Usage: campus_monitor [hours] [meetings_per_peak_hour]
//        campus_monitor --pcap <capture.pcap[ng]> [--no-frontend]
//                       [--frontend-stats] [--flow-memory-budget <bytes>]
//                       [--no-sketch] [--sketch-stats] [--dataplane-offload]
//        campus_monitor --make-trace <out.pcap> [--minutes <m>]
//                       [--meetings <per-peak-hour>] [--seed <n>]
//                       [--burst <period-seconds>] [--burst-flows <n>]
//        campus_monitor --daemon (--replay <trace> | --live <iface>)
//                       [--loops <n>] [--pace-pps <pps>]
//                       [--stall-after <pkts>] [--epoch-packets <n>]
//                       [--epoch-seconds <s>] [--snapshot <file>]
//                       [--report-dir <dir>] [--site <name>] [--no-journal]
//                       [--config <file>]
//                       [--watchdog-seconds <s>] [--threads <n>]
//                       [--halt-after-epochs <n>] [--no-frontend]
//                       [--flow-memory-budget <bytes>] [--quiet]
//                       [--overload | --no-overload]
//                       [--overload-window <pkts>] [--overload-inject <spec>]
//                       [--overload-high <x>] [--overload-low <x>]
//                       [--bounded-push] [--slow-shard <i>] [--slow-us <us>]
//                       [--dataplane-offload]
//
// With --pcap the monitor replays a recorded capture through the
// analyzer using the zero-copy batched ingest path. Each batch is
// screened by the capture front end (capture/batch_filter) first —
// the software stand-in for the paper's Tofino filter — unless
// --no-frontend; results are bit-identical either way.
// --frontend-stats prints the filter's selectivity counters with the
// day summary. The front end's sketch tier summarizes the rejected
// background flows within --flow-memory-budget bytes (K/M/G suffixes,
// default 1M; --no-sketch disables it); --sketch-stats prints the
// absorbed volume and top background heavy hitters. --dataplane-offload
// enables the data-plane metric offload (capture/offload.h): the front
// end's per-shard histogram registers absorb the jitter/RTT metric work
// for covered server media flows, surfaced via --frontend-stats and the
// epoch records' offload section in daemon mode.
//
// --daemon runs the continuous-operation service loop
// (analysis/daemon.h): epoch rotation, atomic snapshot + per-epoch
// report files, SIGHUP config reload, SIGTERM/SIGINT graceful drain,
// and a watchdog that reopens a stalled source. With --report-dir the
// daemon also appends an indexed metric journal
// (journal-<site>-NNNNNNNNNNNN.zpmj) and maintains a MANIFEST listing
// every segment's path and epoch time span — the inputs zpm_query
// answers time-windowed CDF queries from (--no-journal opts out;
// --site labels the segments for multi-site merges). The overload governor
// (src/overload, docs/ROBUSTNESS.md §5) defaults on for --live and off
// for --replay; --overload / --no-overload override, --overload-inject
// replaces the real pressure signals with a deterministic schedule
// ("begin-end:pressure,..." over the global packet index; implies
// --overload), and --overload-high/--overload-low retune the EWMA
// watermarks. --bounded-push makes the dispatch producer shed instead
// of blocking on a full shard ring (always on under --live);
// --slow-shard/--slow-us inject a deterministic slow consumer for
// stress tests. --replay drives it
// from a recorded trace through net::ReplayLiveSource (deterministic,
// no privileges needed — loop with --loops 0 and pace with
// --pace-pps for soak runs); --live opens a real interface
// (AF_PACKET TPACKET_V3, CAP_NET_RAW required). --make-trace writes a
// simulated campus day to a pcap for the replay modes.
//
// Exit codes: 0 ok, 1 bad input/fatal source error, 2 usage,
// 4 interrupted (SIGINT drain in the non-daemon modes: the partial
// capture is still analyzed and the report flushed before exiting).
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "analysis/daemon.h"
#include "analysis/tables.h"
#include "capture/batch_filter.h"
#include "capture/filter.h"
#include "core/analyzer.h"
#include "net/live_source.h"
#include "net/pcap.h"
#include "net/trace_source.h"
#include "overload/governor.h"
#include "sim/background.h"
#include "sim/campus.h"
#include "util/strings.h"

using namespace zpm;

namespace {

/// SIGINT in the non-daemon modes: drain what's in flight, flush the
/// report, exit 4. The handler only sets the flag.
volatile std::sig_atomic_t g_interrupted = 0;
void on_interrupt(int) { g_interrupted = 1; }

void print_summary(core::Analyzer& analyzer, std::uint64_t processed) {
  const auto& c = analyzer.counters();
  std::printf("\nday summary: %llu packets processed, %llu Zoom (%s), "
              "%zu meetings, %zu streams\n",
              static_cast<unsigned long long>(processed),
              static_cast<unsigned long long>(c.zoom_packets),
              util::human_bytes(c.zoom_bytes).c_str(),
              analyzer.meetings().meeting_count(), analyzer.streams().size());
  // Front-end screening and sketch-tier churn are accounting, not loss:
  // zero them out of the all-clear gate so the summary line is identical
  // with the front end / tier on or off (--frontend-stats and
  // --sketch-stats report the details).
  auto h = analyzer.health();
  h.frontend_rejected = 0;
  h.sketch_evicted = 0;
  if (h.all_clear()) {
    std::printf("analyzer health: all clear\n");
  } else {
    std::printf("analyzer health: %llu records dropped "
                "(%llu L2-L4, %llu Zoom-layer, %llu quarantined)\n",
                static_cast<unsigned long long>(h.dropped_records()),
                static_cast<unsigned long long>(h.truncated_l2 + h.bad_l3 + h.bad_l4),
                static_cast<unsigned long long>(h.bad_sfu_encap + h.bad_media_encap +
                                                h.malformed_rtp + h.malformed_rtcp +
                                                h.malformed_stun),
                static_cast<unsigned long long>(h.quarantined_packets));
  }
}

/// "4M", "256K", "1048576" → bytes (binary suffixes); 0 on a malformed
/// spec, which the caller treats as a usage error.
std::size_t parse_byte_size(const char* spec) {
  char* end = nullptr;
  const auto value = std::strtoull(spec, &end, 10);
  if (end == spec) return 0;
  std::size_t scale = 1;
  switch (*end) {
    case '\0': break;
    case 'k': case 'K': scale = std::size_t{1} << 10; ++end; break;
    case 'm': case 'M': scale = std::size_t{1} << 20; ++end; break;
    case 'g': case 'G': scale = std::size_t{1} << 30; ++end; break;
    default: return 0;
  }
  if (*end != '\0' || value > (std::size_t{1} << 40) / scale) return 0;
  return static_cast<std::size_t>(value) * scale;
}

int monitor_pcap(const char* path, bool frontend, bool frontend_stats,
                 std::size_t sketch_budget, bool sketch_stats,
                 bool dataplane_offload) {
  net::TraceSource source(path);
  if (!source.ok()) {
    std::fprintf(stderr, "error: cannot open %s (%s)\n", path,
                 source.error().c_str());
    return 1;
  }
  core::AnalyzerConfig an_cfg;
  an_cfg.keep_frames = false;
  core::Analyzer analyzer(an_cfg);
  std::optional<capture::BatchFilter> filter;
  if (frontend) {
    capture::BatchFilterConfig fe_cfg;
    fe_cfg.server_db = an_cfg.server_db;
    fe_cfg.shards = 1;
    fe_cfg.flow_memory_budget = sketch_budget;
    fe_cfg.dataplane_offload = dataplane_offload;
    filter.emplace(std::move(fe_cfg));
  }

  std::printf("campus monitor: replaying %s (%s ingest, front end %s)\n", path,
              source.mapped() ? "mapped zero-copy" : "streaming",
              filter ? "on" : "off");
  std::signal(SIGINT, on_interrupt);
  constexpr std::size_t kBatch = 1024;
  std::vector<net::RawPacketView> batch;
  batch.reserve(kBatch);
  capture::BatchVerdicts verdicts;
  while (!g_interrupted && source.next_batch(batch, kBatch) > 0) {
    if (filter) {
      filter->classify(batch, verdicts);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (verdicts.verdicts[i] == capture::Verdict::Reject)
          analyzer.account_frontend_rejected(batch[i]);
        else
          analyzer.offer(batch[i],
                         verdicts.verdicts[i] == capture::Verdict::Admit &&
                             (verdicts.flags[i] & capture::kFlagOffloadCovered) != 0);
      }
    } else {
      for (const auto& view : batch) analyzer.offer(view);
    }
  }
  std::signal(SIGINT, SIG_DFL);
  if (g_interrupted)
    std::fprintf(stderr, "\ninterrupted: flushing report over the %llu "
                 "packets analyzed so far\n",
                 static_cast<unsigned long long>(source.packets_read()));
  if (!source.ok())
    std::fprintf(stderr, "warning: capture ended with error: %s\n",
                 source.error().c_str());
  analyzer.finish();
  print_summary(analyzer, source.packets_read());
  if (frontend_stats && filter) {
    std::printf("capture front end (%s probe, %zu flows, %zu candidates):\n",
                filter->simd_active() ? "SWAR/SSE2" : "scalar",
                filter->flow_count(), filter->candidate_endpoint_count());
    for (const auto& row : analysis::frontend_rows(filter->stats()))
      std::printf("  %-24s %12s  %.*s\n", std::string(row.category).c_str(),
                  util::with_commas(row.count).c_str(),
                  static_cast<int>(row.description.size()), row.description.data());
  }
  if (sketch_stats) {
    if (!filter || !filter->sketch_enabled()) {
      std::printf("sketch flow tier not active (%s)\n",
                  filter ? "--no-sketch" : "--no-frontend");
    } else {
      const auto report = filter->sketch_report(5);
      const auto& ts = report.stats;
      std::printf("sketch flow tier (%s budget): %s background packets (%s), "
                  "%llu promotions, %llu evictions\n",
                  util::human_bytes(sketch_budget).c_str(),
                  util::with_commas(ts.absorbed_packets).c_str(),
                  util::human_bytes(ts.absorbed_bytes).c_str(),
                  static_cast<unsigned long long>(ts.promotions),
                  static_cast<unsigned long long>(ts.evictions));
      for (const auto& h : report.heavy_hitters)
        std::printf("  %-44s %10s %10s pkts\n", h.flow.to_string().c_str(),
                    util::human_bytes(h.bytes).c_str(),
                    util::with_commas(h.packets).c_str());
    }
  }
  return g_interrupted ? 4 : 0;
}

/// Writes a simulated campus monitor stream to a pcap — the input for
/// the --daemon --replay modes and the CI soak run.
int make_trace(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: campus_monitor --make-trace <out.pcap> "
                 "[--minutes <m>] [--meetings <n>] [--background <ratio>] "
                 "[--seed <n>] [--burst <period-s>] [--burst-flows <n>]\n");
    return 2;
  }
  const char* out_path = argv[2];
  double minutes = 10.0;
  double meetings = 6.0;
  double background = 1.0;
  std::uint64_t seed = 42;
  double burst_period_s = 0.0;
  std::size_t burst_flows = 20'000;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--minutes") && i + 1 < argc) {
      minutes = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--meetings") && i + 1 < argc) {
      meetings = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--background") && i + 1 < argc) {
      background = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--burst") && i + 1 < argc) {
      burst_period_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--burst-flows") && i + 1 < argc) {
      burst_flows = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (minutes <= 0) {
    std::fprintf(stderr, "--minutes wants a positive duration\n");
    return 2;
  }

  sim::CampusConfig campus_cfg;
  campus_cfg.seed = seed;
  campus_cfg.day_start = util::Timestamp::from_seconds(10 * 3600);
  campus_cfg.duration = util::Duration::seconds(minutes * 60.0);
  campus_cfg.meetings_per_peak_hour = meetings;
  campus_cfg.background_ratio = background;
  sim::CampusSimulation campus(campus_cfg);

  // --burst overlays a square-wave background load (sim::BackgroundTraffic
  // duty-cycle mode) on the campus day: when a paced replay of the trace
  // hits a high phase, the daemon's rings actually fill — the overload
  // governor's exercise input.
  std::optional<sim::BackgroundTraffic> burst;
  if (burst_period_s > 0) {
    sim::BackgroundConfig bg;
    bg.seed = seed + 1;
    bg.flows = burst_flows > 0 ? burst_flows : 1;
    bg.start = campus_cfg.day_start;
    bg.burst_period = util::Duration::seconds(burst_period_s);
    bg.burst_high_pps = 20'000;
    bg.burst_low_pps = 2'000;
    const double avg_pps = bg.burst_duty * bg.burst_high_pps +
                           (1.0 - bg.burst_duty) * bg.burst_low_pps;
    bg.packets = static_cast<std::size_t>(avg_pps * minutes * 60.0);
    if (bg.packets < bg.flows) bg.packets = bg.flows;
    if (bg.packets > 5'000'000) bg.packets = 5'000'000;  // keep traces sane
    burst.emplace(bg);
  }

  net::PcapWriter writer(out_path);
  if (!writer.ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path);
    return 1;
  }
  if (!burst) {
    while (auto pkt = campus.next_packet()) writer.write(*pkt);
  } else {
    // Two-pointer timestamp merge: both generators emit in timestamp
    // order, so the merged trace stays monotonic.
    std::vector<net::RawPacket> bg_batch;
    std::size_t bg_i = 0;
    const auto bg_refill = [&]() {
      if (bg_i < bg_batch.size()) return true;
      bg_batch.clear();
      bg_i = 0;
      return burst->next_batch(4096, bg_batch) > 0;
    };
    auto cam = campus.next_packet();
    bool bg_ok = bg_refill();
    while (cam || bg_ok) {
      if (!bg_ok || (cam && cam->ts.us() <= bg_batch[bg_i].ts.us())) {
        writer.write(*cam);
        cam = campus.next_packet();
      } else {
        writer.write(bg_batch[bg_i++]);
        bg_ok = bg_refill();
      }
    }
  }
  if (!writer.ok()) {
    std::fprintf(stderr, "error: write to %s failed\n", out_path);
    return 1;
  }
  std::printf("wrote %llu packets (%.1f simulated minutes%s) to %s\n",
              static_cast<unsigned long long>(writer.packets_written()),
              minutes,
              burst ? ", bursty background overlay" : "", out_path);
  return 0;
}

/// The continuous daemon: parses its flag block, builds the source,
/// and hands the loop to analysis::MonitorDaemon.
int run_daemon(int argc, char** argv) {
  std::string replay_path;
  std::string live_interface;
  analysis::DaemonConfig cfg;
  cfg.engine.analyzer.keep_frames = false;
  cfg.engine.limits.max_packets = 1'000'000;
  cfg.engine.limits.max_span = util::Duration::seconds(60.0);
  net::ReplayLiveSourceConfig replay_cfg;
  std::optional<bool> overload_flag;  // unset = mode default
  bool journal_flag_set = false;      // --no-journal given

  for (int i = 2; i < argc; ++i) {
    const auto want_value = [&](const char* flag) {
      if (i + 1 < argc) return true;
      std::fprintf(stderr, "%s wants a value\n", flag);
      return false;
    };
    if (!std::strcmp(argv[i], "--replay")) {
      if (!want_value("--replay")) return 2;
      replay_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--live")) {
      if (!want_value("--live")) return 2;
      live_interface = argv[++i];
    } else if (!std::strcmp(argv[i], "--loops")) {
      if (!want_value("--loops")) return 2;
      replay_cfg.loops = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--pace-pps")) {
      if (!want_value("--pace-pps")) return 2;
      replay_cfg.pace_pps = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--stall-after")) {
      if (!want_value("--stall-after")) return 2;
      replay_cfg.stall_after_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--epoch-packets")) {
      if (!want_value("--epoch-packets")) return 2;
      cfg.engine.limits.max_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--epoch-seconds")) {
      if (!want_value("--epoch-seconds")) return 2;
      cfg.engine.limits.max_span = util::Duration::seconds(std::atof(argv[++i]));
    } else if (!std::strcmp(argv[i], "--snapshot")) {
      if (!want_value("--snapshot")) return 2;
      cfg.snapshot_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--report-dir")) {
      if (!want_value("--report-dir")) return 2;
      cfg.report_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--site")) {
      if (!want_value("--site")) return 2;
      cfg.site = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-journal")) {
      cfg.engine.collect_journal = false;
      journal_flag_set = true;
    } else if (!std::strcmp(argv[i], "--config")) {
      if (!want_value("--config")) return 2;
      cfg.config_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--watchdog-seconds")) {
      if (!want_value("--watchdog-seconds")) return 2;
      cfg.watchdog = util::Duration::seconds(std::atof(argv[++i]));
    } else if (!std::strcmp(argv[i], "--threads")) {
      if (!want_value("--threads")) return 2;
      cfg.engine.shards = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (cfg.engine.shards == 0) cfg.engine.shards = 1;
    } else if (!std::strcmp(argv[i], "--halt-after-epochs")) {
      if (!want_value("--halt-after-epochs")) return 2;
      cfg.halt_after_epochs = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--no-frontend")) {
      cfg.engine.frontend = false;
    } else if (!std::strcmp(argv[i], "--flow-memory-budget")) {
      if (!want_value("--flow-memory-budget")) return 2;
      cfg.engine.flow_memory_budget = parse_byte_size(argv[++i]);
      if (cfg.engine.flow_memory_budget == 0) {
        std::fprintf(stderr, "--flow-memory-budget wants a byte count like "
                     "4M or 262144\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--quiet")) {
      cfg.verbose = false;
    } else if (!std::strcmp(argv[i], "--overload")) {
      overload_flag = true;
    } else if (!std::strcmp(argv[i], "--no-overload")) {
      overload_flag = false;
    } else if (!std::strcmp(argv[i], "--overload-window")) {
      if (!want_value("--overload-window")) return 2;
      cfg.engine.overload.window_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--overload-inject")) {
      if (!want_value("--overload-inject")) return 2;
      cfg.engine.overload.inject = argv[++i];
      overload_flag = true;  // an injection schedule implies the governor
    } else if (!std::strcmp(argv[i], "--overload-high")) {
      if (!want_value("--overload-high")) return 2;
      cfg.engine.overload.governor.high_watermark = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--overload-low")) {
      if (!want_value("--overload-low")) return 2;
      cfg.engine.overload.governor.low_watermark = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--bounded-push")) {
      cfg.engine.bounded_dispatch = true;
    } else if (!std::strcmp(argv[i], "--slow-shard")) {
      if (!want_value("--slow-shard")) return 2;
      cfg.engine.fault_slow_shard =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--slow-us")) {
      if (!want_value("--slow-us")) return 2;
      cfg.engine.fault_slow_us =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--dataplane-offload")) {
      cfg.engine.dataplane_offload = true;
    } else {
      std::fprintf(stderr, "unknown daemon option %s\n", argv[i]);
      return 2;
    }
  }
  if (replay_path.empty() == live_interface.empty()) {
    std::fprintf(stderr,
                 "--daemon wants exactly one of --replay <trace> or "
                 "--live <iface>\n");
    return 2;
  }
  if (!cfg.engine.limits.any_enabled()) {
    std::fprintf(stderr, "daemon needs at least one epoch limit "
                 "(--epoch-packets or --epoch-seconds)\n");
    return 2;
  }
  if (!cfg.engine.overload.inject.empty()) {
    overload::PressureSchedule probe;
    if (!probe.parse(cfg.engine.overload.inject)) {
      std::fprintf(stderr, "--overload-inject wants "
                   "\"begin-end:pressure[,...]\" over packet indices\n");
      return 2;
    }
  }
  // Overload default: on for live capture (the mode that can actually
  // fall behind the kernel), off for lossless replay. Live mode also
  // switches the dispatch producer from blocking push to bounded
  // try_push with shed-on-timeout — a stalled shard must never wedge
  // the poll loop that keeps the kernel ring drained.
  cfg.engine.overload.enabled = overload_flag.value_or(!live_interface.empty());
  if (!live_interface.empty()) cfg.engine.bounded_dispatch = true;
  // Journal default: on whenever a report directory exists — the
  // directory then carries epoch files, journal segments and a MANIFEST
  // for zpm_query. --no-journal opts out.
  if (!journal_flag_set) cfg.engine.collect_journal = !cfg.report_dir.empty();
  if (cfg.engine.fault_slow_shard != SIZE_MAX && cfg.engine.fault_slow_us == 0)
    cfg.engine.fault_slow_us = 100;

  analysis::MonitorDaemon daemon(cfg);
  analysis::MonitorDaemon::install_signal_handlers(&daemon);
  int rc;
  if (!replay_path.empty()) {
    replay_cfg.path = replay_path;
    net::ReplayLiveSource source(replay_cfg);
    if (!source.ok()) {
      std::fprintf(stderr, "error: cannot load %s (%s)\n",
                   replay_path.c_str(), source.error().c_str());
      analysis::MonitorDaemon::install_signal_handlers(nullptr);
      return 1;
    }
    std::fprintf(stderr, "zpm-daemon: replaying %s (%llu packets/loop, "
                 "loops %llu, %.0f pps)\n",
                 replay_path.c_str(),
                 static_cast<unsigned long long>(source.trace_packets()),
                 static_cast<unsigned long long>(replay_cfg.loops),
                 replay_cfg.pace_pps);
    rc = daemon.run(source);
  } else {
    net::LiveSourceConfig live_cfg;
    live_cfg.interface = live_interface;
    net::LiveSource source(live_cfg);
    if (!source.ok()) {
      std::fprintf(stderr, "error: cannot open %s (%s)\n",
                   live_interface.c_str(), source.error().c_str());
      analysis::MonitorDaemon::install_signal_handlers(nullptr);
      return 1;
    }
    std::fprintf(stderr, "zpm-daemon: capturing on %s (%.*s backend)\n",
                 live_interface.c_str(),
                 static_cast<int>(source.backend().size()),
                 source.backend().data());
    rc = daemon.run(source);
    const auto stats = source.stats();
    std::fprintf(stderr,
                 "zpm-daemon: kernel capture: %llu packets seen, %llu "
                 "dropped\n",
                 static_cast<unsigned long long>(stats.kernel_packets),
                 static_cast<unsigned long long>(stats.kernel_drops));
  }
  analysis::MonitorDaemon::install_signal_handlers(nullptr);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--make-trace"))
    return make_trace(argc, argv);
  if (argc > 1 && !std::strcmp(argv[1], "--daemon"))
    return run_daemon(argc, argv);

  if (argc > 2 && !std::strcmp(argv[1], "--pcap")) {
    bool frontend = true;
    bool frontend_stats = false;
    std::size_t sketch_budget = std::size_t{1} << 20;
    bool sketch = true;
    bool sketch_stats = false;
    bool dataplane_offload = false;
    for (int i = 3; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--no-frontend")) {
        frontend = false;
      } else if (!std::strcmp(argv[i], "--frontend-stats")) {
        frontend_stats = true;
      } else if (!std::strcmp(argv[i], "--flow-memory-budget") && i + 1 < argc) {
        sketch_budget = parse_byte_size(argv[++i]);
        if (sketch_budget == 0) {
          std::fprintf(stderr, "--flow-memory-budget wants a byte count like "
                       "4M or 262144 (use --no-sketch to disable)\n");
          return 2;
        }
      } else if (!std::strcmp(argv[i], "--no-sketch")) {
        sketch = false;
      } else if (!std::strcmp(argv[i], "--sketch-stats")) {
        sketch_stats = true;
      } else if (!std::strcmp(argv[i], "--dataplane-offload")) {
        dataplane_offload = true;
      } else {
        std::fprintf(stderr, "unknown option %s\n", argv[i]);
        return 2;
      }
    }
    return monitor_pcap(argv[2], frontend, frontend_stats,
                        sketch ? sketch_budget : 0, sketch_stats,
                        dataplane_offload);
  }

  double hours = argc > 1 ? std::atof(argv[1]) : 1.0;
  double meetings = argc > 2 ? std::atof(argv[2]) : 6.0;

  sim::CampusConfig campus_cfg;
  campus_cfg.seed = 42;
  campus_cfg.day_start = util::Timestamp::from_seconds(10 * 3600);
  campus_cfg.duration = util::Duration::seconds(hours * 3600.0);
  campus_cfg.meetings_per_peak_hour = meetings;
  campus_cfg.background_ratio = 1.0;
  sim::CampusSimulation campus(campus_cfg);

  capture::CaptureConfig cap_cfg;
  cap_cfg.campus_subnets = {campus_cfg.campus_subnet};
  cap_cfg.anonymize = false;  // live monitoring keeps addresses
  capture::CaptureFilter filter(cap_cfg);

  core::AnalyzerConfig an_cfg;
  an_cfg.keep_frames = false;
  core::Analyzer analyzer(an_cfg);

  std::printf("campus monitor: %.1f h, ~%.0f meetings/peak hour\n\n", hours, meetings);
  std::printf("%-6s %10s %10s %9s %9s %9s %8s\n", "time", "pkts/min", "zoom/min",
              "meetings", "streams", "media", "rtt[ms]");
  std::printf("----------------------------------------------------------------------\n");

  std::signal(SIGINT, on_interrupt);
  std::int64_t interval_us = 5 * 60 * 1'000'000ll;  // 5-minute lines
  std::int64_t next_report = 0;
  std::uint64_t interval_pkts = 0, interval_zoom = 0;
  std::size_t last_rtt_count = 0;
  while (auto pkt = campus.next_packet()) {
    if (g_interrupted) break;
    if (next_report == 0) next_report = pkt->ts.us() + interval_us;
    ++interval_pkts;
    auto kept = filter.process(*pkt);
    if (kept) {
      ++interval_zoom;
      analyzer.offer(*kept);
    }
    if (pkt->ts.us() >= next_report) {
      // RTT over the samples that arrived this interval.
      const auto& rtts = analyzer.sfu_rtt_samples();
      double rtt_sum = 0;
      std::size_t rtt_n = rtts.size() - last_rtt_count;
      for (std::size_t i = last_rtt_count; i < rtts.size(); ++i)
        rtt_sum += rtts[i].rtt.ms();
      last_rtt_count = rtts.size();

      std::size_t active_meetings = 0;
      for (const auto* m : analyzer.meetings().meetings())
        if (pkt->ts - m->last_seen < util::Duration::seconds(30.0)) ++active_meetings;

      std::printf("%-6s %10llu %10llu %9zu %9zu %9llu %8s\n",
                  util::clock_label(static_cast<std::int64_t>(pkt->ts.sec())).c_str(),
                  static_cast<unsigned long long>(interval_pkts / 5),
                  static_cast<unsigned long long>(interval_zoom / 5), active_meetings,
                  analyzer.streams().size(),
                  static_cast<unsigned long long>(analyzer.streams().media_count()),
                  rtt_n ? util::fixed(rtt_sum / static_cast<double>(rtt_n), 1).c_str()
                        : "-");
      interval_pkts = interval_zoom = 0;
      next_report += interval_us;
    }
  }
  std::signal(SIGINT, SIG_DFL);
  if (g_interrupted)
    std::fprintf(stderr, "\ninterrupted: flushing report over the simulated "
                 "day so far\n");
  analyzer.finish();
  print_summary(analyzer, filter.counters().processed);
  return g_interrupted ? 4 : 0;
}
