// zpm_query — sub-linear time-windowed CDF/summary queries over the
// metric journals a campus_monitor daemon leaves in its report
// directory (the query half of the CoMo-style export/query split; see
// docs/DESIGN.md "Query/export architecture" and docs/WIRE_FORMAT.md
// for the journal layout).
//
// Usage: zpm_query --dir <report-dir> [query flags]      (MANIFEST mode)
//        zpm_query <journal.zpmj>... [query flags]       (explicit files)
//
// Query flags:
//   --from <us>       window start, µs since epoch (default: everything)
//   --to <us>         window end, inclusive
//   --metric rtt|jitter|bitrate|sfu-rtt   (default rtt)
//   --group all|meeting|site              (default all)
//   --meeting <key>   restrict to one stable meeting key
//   --query "<spec>"  full request in canonical text form
//                     (from=..;to=..;metric=..;group=..[;meeting=..])
//   --stats           per-journal index/scan accounting on stderr
//
// The window selects whole epochs by span overlap — the epoch is the
// aggregation quantum. Journals are mmap'd and their footer indexes
// binary-searched, so a narrow window over a long journal only decodes
// the overlapping records; journals that lost their index (crash)
// are scanned with per-record CRC resync, and anything skipped is
// accounted, never silently dropped. Results merge exactly across
// shards and sites (additive histograms/counters, stable meeting keys).
//
// Exit codes: 0 ok, 1 no readable input, 2 usage.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "query/query.h"

namespace {

using namespace zpm;

int usage() {
  std::fprintf(stderr,
               "usage: zpm_query (--dir <report-dir> | <journal.zpmj>...)\n"
               "                 [--from <us>] [--to <us>]\n"
               "                 [--metric rtt|jitter|bitrate|sfu-rtt]\n"
               "                 [--group all|meeting|site]\n"
               "                 [--meeting <key>] [--query \"<spec>\"]\n"
               "                 [--stats]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::vector<std::string> paths;
  query::QueryRequest request;
  bool show_stats = false;

  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) {
      if (i + 1 < argc) return true;
      std::fprintf(stderr, "%s wants a value\n", flag);
      return false;
    };
    if (!std::strcmp(argv[i], "--dir")) {
      if (!want_value("--dir")) return 2;
      dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--from")) {
      if (!want_value("--from")) return 2;
      request.from_us = std::strtoll(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--to")) {
      if (!want_value("--to")) return 2;
      request.to_us = std::strtoll(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--metric")) {
      if (!want_value("--metric")) return 2;
      const std::string v = argv[++i];
      if (v == "rtt") request.metric = query::QueryMetric::Rtt;
      else if (v == "jitter") request.metric = query::QueryMetric::Jitter;
      else if (v == "bitrate") request.metric = query::QueryMetric::Bitrate;
      else if (v == "sfu-rtt") request.metric = query::QueryMetric::SfuRtt;
      else return usage();
    } else if (!std::strcmp(argv[i], "--group")) {
      if (!want_value("--group")) return 2;
      const std::string v = argv[++i];
      if (v == "all") request.group = query::QueryGroupBy::All;
      else if (v == "meeting") request.group = query::QueryGroupBy::Meeting;
      else if (v == "site") request.group = query::QueryGroupBy::Site;
      else return usage();
    } else if (!std::strcmp(argv[i], "--meeting")) {
      if (!want_value("--meeting")) return 2;
      request.meeting_key = std::strtoull(argv[++i], nullptr, 10);
      request.has_meeting = true;
    } else if (!std::strcmp(argv[i], "--query")) {
      if (!want_value("--query")) return 2;
      if (!query::parse_query_request(argv[++i], request)) {
        std::fprintf(stderr, "bad --query spec (canonical form: %s)\n",
                     query::format_query_request(query::QueryRequest{}).c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--stats")) {
      show_stats = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (dir.empty() == paths.empty()) return usage();
  if (request.from_us > request.to_us) {
    std::fprintf(stderr, "empty window: --from is after --to\n");
    return 2;
  }

  query::QueryResult result;
  std::string error;
  if (!dir.empty()) {
    query::Manifest manifest;
    if (!query::load_manifest(dir, manifest, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::size_t skipped = 0;
    if (!query::run_query_on_manifest(request, manifest, dir, result, &skipped,
                                      &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (skipped > 0)
      std::fprintf(stderr, "warning: %zu unreadable journal(s) skipped\n",
                   skipped);
  } else {
    std::vector<std::unique_ptr<query::JournalReader>> owned;
    std::vector<query::JournalReader*> readers;
    std::vector<std::uint32_t> site_of;
    std::vector<std::string> site_names;
    for (const auto& path : paths) {
      auto reader = std::make_unique<query::JournalReader>();
      if (!reader->open(path, &error)) {
        std::fprintf(stderr, "warning: %s: %s\n", path.c_str(), error.c_str());
        continue;
      }
      if (show_stats) {
        const auto& stats = reader->scan_stats();
        std::fprintf(stderr,
                     "%s: site=%s shards=%u records=%zu %s corrupt=%llu "
                     "skipped_bytes=%llu\n",
                     path.c_str(), reader->site().c_str(),
                     reader->shard_count(), reader->records().size(),
                     stats.used_index ? "indexed" : "scanned",
                     static_cast<unsigned long long>(stats.corrupt_records),
                     static_cast<unsigned long long>(stats.skipped_bytes));
      }
      std::uint32_t site_idx = 0;
      for (; site_idx < site_names.size(); ++site_idx)
        if (site_names[site_idx] == reader->site()) break;
      if (site_idx == site_names.size()) site_names.push_back(reader->site());
      site_of.push_back(site_idx);
      readers.push_back(reader.get());
      owned.push_back(std::move(reader));
    }
    if (readers.empty()) {
      std::fprintf(stderr, "error: no readable journals\n");
      return 1;
    }
    if (!query::run_query(request, readers, site_of, site_names, result,
                          &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    // Match manifest mode: scan-time corruption is accounted in the
    // result, never silently dropped.
    for (const auto& r : owned)
      result.records_corrupt += r->scan_stats().corrupt_records;
  }

  std::fputs(query::render_query_result(result).c_str(), stdout);
  return 0;
}
