// Quickstart: the complete zpm loop in ~80 lines.
//
//   1. Simulate a two-party Zoom meeting and write it to a pcap file.
//   2. Read the pcap back (as you would a real capture).
//   3. Run the passive analyzer over it.
//   4. Print what a network operator could learn without any help from
//      the clients: meetings, streams, bit rates, frame rates, RTT.
//
// Usage: quickstart [output.pcap]
#include <cstdio>

#include "core/analyzer.h"
#include "net/pcap.h"
#include "sim/meeting.h"
#include "util/strings.h"

using namespace zpm;

int main(int argc, char** argv) {
  const std::string pcap_path =
      argc > 1 ? argv[1] : std::string("/tmp/zpm_quickstart.pcap");

  // --- 1. Simulate a meeting and record it. -------------------------------
  sim::MeetingConfig mc;
  mc.seed = 7;
  mc.start = util::Timestamp::from_seconds(1'700'000'000);  // some afternoon
  mc.duration = util::Duration::seconds(60);
  sim::ParticipantConfig alice, bob;
  alice.ip = net::Ipv4Addr(10, 8, 1, 20);
  bob.ip = net::Ipv4Addr(10, 8, 2, 31);
  mc.participants = {alice, bob};

  {
    sim::MeetingSim sim(mc);
    net::PcapWriter writer(pcap_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot write %s\n", pcap_path.c_str());
      return 1;
    }
    while (auto pkt = sim.next_packet()) writer.write(*pkt);
    std::printf("wrote %llu packets to %s\n",
                static_cast<unsigned long long>(writer.packets_written()),
                pcap_path.c_str());
  }

  // --- 2+3. Read the capture and analyze it passively. --------------------
  net::PcapReader reader(pcap_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", pcap_path.c_str(),
                 reader.error().c_str());
    return 1;
  }
  core::AnalyzerConfig cfg;  // default Zoom server list
  core::Analyzer analyzer(cfg);
  while (auto pkt = reader.next()) analyzer.offer(*pkt);
  analyzer.finish();

  // --- 4. Report. ----------------------------------------------------------
  const auto& c = analyzer.counters();
  std::printf("\nZoom packets: %llu of %llu (%s)\n",
              static_cast<unsigned long long>(c.zoom_packets),
              static_cast<unsigned long long>(c.total_packets),
              util::human_bytes(c.zoom_bytes).c_str());
  std::printf("media %llu | rtcp %llu | stun %llu | tcp-control %llu\n\n",
              static_cast<unsigned long long>(c.media_packets),
              static_cast<unsigned long long>(c.rtcp_packets),
              static_cast<unsigned long long>(c.stun_packets),
              static_cast<unsigned long long>(c.tcp_control_packets));

  for (const auto* meeting : analyzer.meetings().meetings()) {
    std::printf("meeting #%u: %zu active participants, %zu media streams, "
                "%zu RTT samples\n",
                meeting->id, meeting->active_participants(),
                meeting->media_ids.size(), meeting->rtt_to_sfu.size());
  }
  std::printf("\nper-stream summary:\n");
  for (const auto& s : analyzer.streams().streams()) {
    double secs = std::max(1.0, (s->last_seen - s->first_seen).sec());
    double bitrate = static_cast<double>(s->metrics->media_payload_bytes()) * 8 / secs;
    std::printf("  ssrc %-6u %-12s %-8s %9s  jitter %s  latency %s\n",
                s->key.ssrc, std::string(zoom::media_kind_name(s->kind)).c_str(),
                s->direction == core::StreamDirection::ToSfu     ? "uplink"
                : s->direction == core::StreamDirection::FromSfu ? "downlink"
                                                                 : "p2p",
                util::human_bitrate(bitrate).c_str(),
                s->metrics->jitter_ms()
                    ? (util::fixed(*s->metrics->jitter_ms(), 1) + " ms").c_str()
                    : "-",
                s->metrics->mean_latency_ms()
                    ? (util::fixed(*s->metrics->mean_latency_ms(), 1) + " ms").c_str()
                    : "-");
  }
  return 0;
}
