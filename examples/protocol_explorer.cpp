// protocol_explorer — the §4.2 blueprint for demystifying ANY black-box
// UDP protocol, applied end to end: feed it a pcap (or a generated
// Zoom-like flow) and it reports, with zero protocol knowledge,
//   - which byte ranges look encrypted / like identifiers / like counters,
//   - where RTP headers hide (if anywhere) per first-byte group,
//   - where RTCP-style SSRC cross-references appear.
//
// Usage: protocol_explorer <capture.pcap>
//        protocol_explorer --demo
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "entropy/analysis.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "sim/meeting.h"
#include "util/strings.h"
#include "util/table.h"

using namespace zpm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <capture.pcap>|--demo\n", argv[0]);
    return 2;
  }

  // Collect UDP payloads per flow; analyze the busiest flow.
  std::map<net::FiveTuple, std::vector<std::vector<std::uint8_t>>> flows;
  auto add_packet = [&flows](const net::RawPacket& raw) {
    auto view = net::decode_packet(raw);
    if (!view || view->l4 != net::L4Proto::Udp) return;
    flows[view->five_tuple().canonical()].emplace_back(view->l4_payload.begin(),
                                                       view->l4_payload.end());
  };

  if (std::string(argv[1]) == "--demo") {
    sim::MeetingConfig mc;
    mc.seed = 11;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(45);
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(98, 0, 0, 2);
    b.on_campus = false;
    mc.participants = {a, b};
    mc.p2p_switch_after = util::Duration::seconds(3);
    sim::MeetingSim sim(mc);
    while (auto pkt = sim.next_packet()) add_packet(*pkt);
  } else {
    net::PcapReader reader{std::string(argv[1])};
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    while (auto pkt = reader.next()) add_packet(*pkt);
  }
  if (flows.empty()) {
    std::printf("no UDP flows found\n");
    return 0;
  }
  auto busiest = flows.begin();
  for (auto it = flows.begin(); it != flows.end(); ++it)
    if (it->second.size() > busiest->second.size()) busiest = it;
  const auto& payloads = busiest->second;
  std::printf("analyzing busiest flow: %s (%zu packets)\n\n",
              busiest->first.to_string().c_str(), payloads.size());

  // Step 1+2: classify every 1/2/4-byte range across the flow.
  std::printf("field classification (first 32 bytes):\n");
  util::TextTable table;
  table.header({"offset", "w", "class", "entropy", "distinct", "monotone"},
               {util::Align::Right, util::Align::Right, util::Align::Left,
                util::Align::Right, util::Align::Right, util::Align::Right});
  for (const auto& seq : entropy::extract_sequences(payloads, 32)) {
    auto c = entropy::classify_sequence(seq);
    if (c.cls == entropy::FieldClass::Unknown) continue;
    if (seq.width == 1 && seq.offset % 4 != 0 && c.cls == entropy::FieldClass::Random)
      continue;  // keep the table readable
    table.row({std::to_string(seq.offset), std::to_string(seq.width),
               entropy::field_class_name(c.cls), util::fixed(c.normalized_entropy, 2),
               util::fixed(c.distinct_ratio, 3), util::fixed(c.monotone_ratio, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Step 3: per-type-byte RTP localization.
  auto offsets = entropy::discover_type_offsets(payloads);
  if (offsets.empty()) {
    std::printf("no RTP structure found — not an RTP-based protocol?\n");
    return 0;
  }
  std::printf("RTP found, by first-byte group (the protocol's type field):\n");
  for (const auto& [type, offset] : offsets)
    std::printf("  type 0x%02x -> RTP header at payload offset +%zu\n", type, offset);

  // Step 4: SSRC cross-reference over the remaining packets.
  std::set<std::uint32_t> ssrcs;
  for (const auto& [type, offset] : offsets) {
    std::vector<std::vector<std::uint8_t>> group;
    for (const auto& p : payloads)
      if (!p.empty() && p[0] == type) group.push_back(p);
    auto s = entropy::collect_ssrcs(group, offset);
    ssrcs.insert(s.begin(), s.end());
  }
  std::vector<std::vector<std::uint8_t>> residual;
  for (const auto& p : payloads)
    if (!p.empty() && !offsets.contains(p[0])) residual.push_back(p);
  std::printf("\nmedia SSRCs discovered: %zu; searching %zu residual packets\n",
              ssrcs.size(), residual.size());
  for (const auto& [off, hits] : entropy::find_ssrc_references(residual, ssrcs))
    if (hits >= 5)
      std::printf("  SSRC echoed at offset +%zu in %zu packets -> RTCP-style "
                  "control channel\n",
                  off, hits);
  std::printf("\nblueprint complete — repeat against any proprietary protocol.\n");
  return 0;
}
