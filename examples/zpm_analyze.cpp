// zpm_analyze — the release CLI: full passive analysis of a capture
// file (pcap or pcapng), printing the operator-facing report and
// optionally exporting machine-readable CSVs.
//
// Usage:
//   zpm_analyze <capture.pcap[ng]> [options]
//   zpm_analyze --demo [options]
//
// Options:
//   --threads <n>     shard the analyzer across n worker threads
//                     (default 1 = serial; results are identical)
//   --csv <prefix>    write <prefix>_streams.csv / _seconds.csv / _meetings.csv
//   --p2p-timeout <s> STUN candidate lifetime (default 60)
//   --anon-key <hex>  the capture was anonymized with this key
//                     (zpm_pcap_filter default 5eedcafef00dd00d); the
//                     server subnets are mapped through the same
//                     prefix-preserving function so detection still works
//   --strict          record the first malformed record and exit 3 once
//                     analysis completes (the record still shows up in
//                     the health section)
//   --corrupt <seed>  run the input through the hostile fault-injection
//                     mix (sim/corruptor.h) before analysis — robustness
//                     demos and health-accounting checks
//   --no-frontend     disable the capture front end (capture/batch_filter):
//                     every packet takes the full decode path. Results are
//                     bit-identical either way; this exists for A/B and
//                     debugging. The front end only applies to the batched
//                     file path (not --demo / --corrupt, which are
//                     per-packet).
//   --frontend-stats  print the front end's admit/reject/full-parse
//                     selectivity counters (the software analogue of the
//                     paper's Table 5 filter report)
//   --flow-memory-budget <bytes>
//                     byte budget for the front end's sketch tier, which
//                     summarizes rejected background flows (count-min +
//                     heavy-hitter table) at O(1) memory instead of
//                     per-flow state. Accepts K/M/G suffixes (KiB etc.);
//                     default 1M. The standard report is bit-identical
//                     with the tier on or off.
//   --no-sketch       disable the sketch tier (budget 0)
//   --sketch-stats    print the sketch tier's report: absorbed
//                     background volume, promotions / demotions /
//                     evictions, and the top background heavy hitters
//   --overload        run the batched file path under the overload
//                     governor (src/overload). With no injection the
//                     governor observes zero pressure, stays at L0, and
//                     the report is byte-identical to an ungoverned run
//                     (the enabled-under-zero-pressure identity check)
//   --overload-inject <spec>
//                     deterministic pressure schedule
//                     "begin-end:pressure[,...]" over global packet
//                     indices; replaces the real signals so identical
//                     replays shed identically (implies --overload)
//   --overload-window <pkts>
//                     governor observation window (default 2048)
//   --dataplane-offload
//                     enable the data-plane metric offload
//                     (capture/offload.h): the front end keeps bucketed
//                     RTT/jitter histogram registers plus a spin-bit
//                     style RTT probe for the server media flows it can
//                     classify at fixed offsets, and the host skips its
//                     per-packet jitter/latency estimator work for those
//                     covered packets. Requires the front end (batched
//                     file path). Reports are byte-identical with the
//                     offload off for uncovered flows; covered streams'
//                     jitter/latency columns vacate into the offload
//                     histograms (--offload-stats)
//   --offload-stats   print the offload's merged histogram registers and
//                     coverage/collision accounting
//
// Exit codes: 0 analyzed, 1 unreadable/empty/garbage input, 2 usage,
// 3 strict-mode violation, 4 interrupted (SIGINT: ingestion stops at
// the next batch boundary, the packets analyzed so far are drained
// and the full report still prints — a partial pass is a usable pass).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/tables.h"
#include "capture/anonymizer.h"
#include "capture/batch_filter.h"
#include "core/analyzer.h"
#include "net/trace_source.h"
#include "overload/overload.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/corruptor.h"
#include "sim/meeting.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

using namespace zpm;

namespace {

/// SIGINT: stop ingesting at the next batch boundary, drain, report,
/// exit 4. The handler only sets the flag.
volatile std::sig_atomic_t g_interrupted = 0;
void on_interrupt(int) { g_interrupted = 1; }

/// The report's view of an analysis run, identical for the serial and
/// sharded paths. Stream/meeting pointers stay owned by the analyzer.
struct AnalysisOutput {
  core::AnalyzerCounters counters;
  core::AnalyzerHealth health;
  std::vector<const core::StreamInfo*> streams;
  const core::MeetingGrouper* meetings = nullptr;
};

void export_csvs(const AnalysisOutput& out, const std::string& prefix) {
  {
    util::CsvWriter streams(prefix + "_streams.csv");
    streams.row({"stream", "ssrc", "media_id", "meeting", "kind", "direction",
                 "client_ip", "first_s", "last_s", "packets", "media_bytes",
                 "jitter_ms", "latency_ms", "duplicates", "reordered", "gaps",
                 "clock_hz", "stalls"});
    for (const auto* s : out.streams) {
      auto loss = s->metrics->total_loss();
      streams.row(
          {std::to_string(s->index), std::to_string(s->key.ssrc),
           std::to_string(s->media_id), std::to_string(s->meeting_id),
           std::string(zoom::media_kind_name(s->kind)),
           s->direction == core::StreamDirection::ToSfu     ? "to_sfu"
           : s->direction == core::StreamDirection::FromSfu ? "from_sfu"
                                                            : "p2p",
           s->client_ip.to_string(), util::fixed(s->first_seen.sec(), 6),
           util::fixed(s->last_seen.sec(), 6),
           std::to_string(s->metrics->media_packets()),
           std::to_string(s->metrics->media_payload_bytes()),
           s->metrics->jitter_ms() ? util::fixed(*s->metrics->jitter_ms(), 3) : "",
           s->metrics->mean_latency_ms()
               ? util::fixed(*s->metrics->mean_latency_ms(), 3)
               : "",
           std::to_string(loss.duplicates), std::to_string(loss.reordered),
           std::to_string(loss.gap_packets),
           s->metrics->clock_estimate().snapped_hz()
               ? util::fixed(*s->metrics->clock_estimate().snapped_hz(), 0)
               : "",
           std::to_string(s->metrics->stall().stall_events())});
    }
  }
  {
    util::CsvWriter seconds(prefix + "_seconds.csv");
    seconds.row({"stream", "t_s", "packets", "media_bytes", "frame_rate",
                 "encoder_fps", "avg_frame_bytes", "jitter_ms", "latency_ms",
                 "duplicates", "reordered"});
    for (const auto* s : out.streams) {
      for (const auto& sec : s->metrics->seconds()) {
        seconds.row({std::to_string(s->index),
                     util::fixed(sec.bin_start.sec(), 0),
                     std::to_string(sec.packets), std::to_string(sec.media_bytes),
                     util::fixed(sec.frame_rate_fps, 1),
                     sec.encoder_fps ? util::fixed(*sec.encoder_fps, 2) : "",
                     sec.avg_frame_bytes ? util::fixed(*sec.avg_frame_bytes, 0) : "",
                     sec.jitter_ms ? util::fixed(*sec.jitter_ms, 3) : "",
                     sec.latency_ms ? util::fixed(*sec.latency_ms, 3) : "",
                     std::to_string(sec.duplicates), std::to_string(sec.reordered)});
      }
    }
  }
  {
    util::CsvWriter meetings(prefix + "_meetings.csv");
    meetings.row({"meeting", "participants", "media", "streams", "first_s",
                  "last_s", "p2p", "rtt_samples", "mean_rtt_ms"});
    for (const auto* m : out.meetings->meetings()) {
      double rtt_sum = 0;
      for (const auto& s : m->rtt_to_sfu) rtt_sum += s.rtt.ms();
      meetings.row({std::to_string(m->id), std::to_string(m->active_participants()),
                    std::to_string(m->media_ids.size()),
                    std::to_string(m->stream_count),
                    util::fixed(m->first_seen.sec(), 1),
                    util::fixed(m->last_seen.sec(), 1), m->saw_p2p ? "yes" : "no",
                    std::to_string(m->rtt_to_sfu.size()),
                    m->rtt_to_sfu.empty()
                        ? ""
                        : util::fixed(rtt_sum / static_cast<double>(
                                                    m->rtt_to_sfu.size()),
                                      2)});
    }
  }
  std::printf("\nCSV exports written to %s_{streams,seconds,meetings}.csv\n",
              prefix.c_str());
}

void print_report(const AnalysisOutput& out) {
  const auto& c = out.counters;
  std::printf("== traffic =====================================================\n");
  std::printf("packets: %s total, %s Zoom (%s)\n",
              util::with_commas(c.total_packets).c_str(),
              util::with_commas(c.zoom_packets).c_str(),
              util::human_bytes(c.zoom_bytes).c_str());
  std::printf("media %s | rtcp %s | stun %s | tcp %s | p2p %s | undecoded %s\n",
              util::with_commas(c.media_packets).c_str(),
              util::with_commas(c.rtcp_packets).c_str(),
              util::with_commas(c.stun_packets).c_str(),
              util::with_commas(c.tcp_control_packets).c_str(),
              util::with_commas(c.p2p_udp_packets).c_str(),
              util::with_commas(c.unknown_sfu_packets + c.unknown_media_packets)
                  .c_str());

  std::printf("\n== media mix (Table 2/3 style) =================================\n");
  util::TextTable mix;
  mix.header({"Type", "Offset", "% Pkts", "% Bytes"},
             {util::Align::Left, util::Align::Right, util::Align::Right,
              util::Align::Right});
  for (const auto& row : analysis::table2_rows(c))
    mix.row({row.packet_type, std::to_string(row.offset),
             util::percent(row.pct_packets), util::percent(row.pct_bytes)});
  std::printf("%s", mix.render().c_str());

  std::printf("\n== meetings ====================================================\n");
  for (const auto* m : out.meetings->meetings()) {
    double rtt_sum = 0;
    for (const auto& s : m->rtt_to_sfu) rtt_sum += s.rtt.ms();
    std::printf("meeting %u: %zu participants, %zu media, %.0f s%s", m->id,
                m->active_participants(), m->media_ids.size(),
                (m->last_seen - m->first_seen).sec(), m->saw_p2p ? ", P2P" : "");
    if (!m->rtt_to_sfu.empty())
      std::printf(", RTT %.1f ms (%zu probes)",
                  rtt_sum / static_cast<double>(m->rtt_to_sfu.size()),
                  m->rtt_to_sfu.size());
    std::printf("\n");
  }

  std::printf("\n== streams ====================================================\n");
  util::TextTable t;
  t.header({"ssrc", "kind", "dir", "rate", "fps", "jitter", "clock", "stalls"},
           {util::Align::Right});
  for (const auto* s : out.streams) {
    double secs = std::max(1.0, (s->last_seen - s->first_seen).sec());
    double rate = static_cast<double>(s->metrics->media_payload_bytes()) * 8 / secs;
    double fps_sum = 0;
    std::size_t fps_n = 0;
    for (const auto& sec : s->metrics->seconds()) {
      fps_sum += sec.frame_rate_fps;
      ++fps_n;
    }
    auto clock = s->metrics->clock_estimate().snapped_hz();
    t.row({std::to_string(s->key.ssrc), std::string(zoom::media_kind_name(s->kind)),
           s->direction == core::StreamDirection::ToSfu     ? "up"
           : s->direction == core::StreamDirection::FromSfu ? "down"
                                                            : "p2p",
           util::human_bitrate(rate),
           fps_n ? util::fixed(fps_sum / static_cast<double>(fps_n), 1) : "-",
           s->metrics->jitter_ms() ? util::fixed(*s->metrics->jitter_ms(), 1) + "ms"
                                   : "-",
           clock ? util::fixed(*clock / 1000.0, 0) + "kHz" : "-",
           std::to_string(s->metrics->stall().stall_events())});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\n== analyzer health =============================================\n");
  // Front-end screening and sketch-tier churn are accounting, not loss:
  // a trace whose only nonzero counters are frontend-rejected or
  // sketch-evicted is still all clear, keeping this section identical
  // with the front end / tier on or off (--frontend-stats and
  // --sketch-stats report the details).
  auto health_gate = out.health;
  health_gate.frontend_rejected = 0;
  health_gate.sketch_evicted = 0;
  health_gate.overload_shed_l1 = 0;
  health_gate.overload_shed_l2 = 0;
  health_gate.overload_shed_l3 = 0;
  health_gate.overload_shed_l4 = 0;
  health_gate.offload_covered_packets = 0;
  health_gate.offload_collisions = 0;
  health_gate.offload_evictions = 0;
  if (health_gate.all_clear()) {
    std::printf("all clear: every record was fully analyzed\n");
  } else {
    util::TextTable health;
    health.header({"Counter", "Records", "Dropped?"},
                  {util::Align::Left, util::Align::Right, util::Align::Left});
    for (const auto& row : analysis::health_rows(out.health))
      health.row({std::string(row.category), util::with_commas(row.count),
                  row.dropped ? "yes" : "no"});
    std::printf("%s", health.render().c_str());
    std::printf("%s records dropped or quarantined; see docs/ROBUSTNESS.md\n",
                util::with_commas(out.health.dropped_records()).c_str());
  }
}

/// One bucket's range label: power-of-two boundaries in µs, promoted to
/// ms for readability above 1000 µs.
std::string offload_bucket_label(std::size_t b) {
  auto human_us = [](std::uint64_t us) {
    if (us >= 1000) return util::fixed(static_cast<double>(us) / 1000.0, 0) + "ms";
    return std::to_string(us) + "us";
  };
  const std::uint64_t lo = b == 0 ? 0 : std::uint64_t{1} << b;
  if (b + 1 >= capture::kOffloadBuckets) return ">=" + human_us(lo);
  return human_us(lo) + "-" + human_us(std::uint64_t{1} << (b + 1));
}

/// Side-by-side histogram table for the two offload register groups.
void print_offload_histograms(const capture::OffloadReport& rep) {
  util::TextTable t;
  t.header({"Bucket", "Jitter dev", "RTT"},
           {util::Align::Left, util::Align::Right, util::Align::Right});
  for (std::size_t b = 0; b < capture::kOffloadBuckets; ++b) {
    if (rep.jitter.buckets[b] == 0 && rep.rtt.buckets[b] == 0) continue;
    t.row({offload_bucket_label(b), util::with_commas(rep.jitter.buckets[b]),
           util::with_commas(rep.rtt.buckets[b])});
  }
  std::printf("%s", t.render().c_str());
}

/// "4M", "256K", "1048576" → bytes (binary suffixes). Returns 0 on a
/// malformed spec; the caller treats that as a usage error.
std::size_t parse_byte_size(const char* spec) {
  char* end = nullptr;
  const auto value = std::strtoull(spec, &end, 10);
  if (end == spec) return 0;
  std::size_t scale = 1;
  switch (*end) {
    case '\0': break;
    case 'k': case 'K': scale = std::size_t{1} << 10; ++end; break;
    case 'm': case 'M': scale = std::size_t{1} << 20; ++end; break;
    case 'g': case 'G': scale = std::size_t{1} << 30; ++end; break;
    default: return 0;
  }
  if (*end != '\0' || value > (std::size_t{1} << 40) / scale) return 0;
  return static_cast<std::size_t>(value) * scale;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <capture.pcap[ng]>|--demo [--threads <n>]\n"
                 "          [--csv <prefix>] [--p2p-timeout <s>] [--anon-key <hex>]\n"
                 "          [--strict] [--corrupt <seed>] [--no-frontend]\n"
                 "          [--frontend-stats] [--flow-memory-budget <bytes>]\n"
                 "          [--no-sketch] [--sketch-stats] [--overload]\n"
                 "          [--overload-inject <spec>] [--overload-window <n>]\n"
                 "          [--dataplane-offload] [--offload-stats]\n",
                 argv[0]);
    return 2;
  }
  std::string input = argv[1];
  std::string csv_prefix;
  double p2p_timeout_s = 60.0;
  std::size_t threads = 1;
  std::optional<std::uint64_t> anon_key;
  bool strict = false;
  std::optional<std::uint64_t> corrupt_seed;
  bool frontend = true;
  bool frontend_stats = false;
  std::size_t flow_memory_budget = std::size_t{1} << 20;
  bool sketch = true;
  bool sketch_stats = false;
  bool overload_enabled = false;
  std::string overload_inject;
  std::uint64_t overload_window = 2048;
  bool dataplane_offload = false;
  bool offload_stats = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (threads == 0) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) {
      csv_prefix = argv[++i];
    } else if (!std::strcmp(argv[i], "--p2p-timeout") && i + 1 < argc) {
      p2p_timeout_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--anon-key") && i + 1 < argc) {
      anon_key = std::strtoull(argv[++i], nullptr, 16);
    } else if (!std::strcmp(argv[i], "--strict")) {
      strict = true;
    } else if (!std::strcmp(argv[i], "--corrupt") && i + 1 < argc) {
      corrupt_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--no-frontend")) {
      frontend = false;
    } else if (!std::strcmp(argv[i], "--frontend-stats")) {
      frontend_stats = true;
    } else if (!std::strcmp(argv[i], "--flow-memory-budget") && i + 1 < argc) {
      flow_memory_budget = parse_byte_size(argv[++i]);
      if (flow_memory_budget == 0) {
        std::fprintf(stderr,
                     "--flow-memory-budget wants a byte count like 4M or "
                     "262144 (use --no-sketch to disable the tier)\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--no-sketch")) {
      sketch = false;
    } else if (!std::strcmp(argv[i], "--sketch-stats")) {
      sketch_stats = true;
    } else if (!std::strcmp(argv[i], "--overload")) {
      overload_enabled = true;
    } else if (!std::strcmp(argv[i], "--overload-inject") && i + 1 < argc) {
      overload_inject = argv[++i];
      overload_enabled = true;  // a schedule implies the governor
    } else if (!std::strcmp(argv[i], "--overload-window") && i + 1 < argc) {
      overload_window = std::strtoull(argv[++i], nullptr, 10);
      if (overload_window == 0) overload_window = 2048;
    } else if (!std::strcmp(argv[i], "--dataplane-offload")) {
      dataplane_offload = true;
    } else if (!std::strcmp(argv[i], "--offload-stats")) {
      offload_stats = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  overload::PressureSchedule overload_schedule;
  if (!overload_inject.empty() && !overload_schedule.parse(overload_inject)) {
    std::fprintf(stderr, "--overload-inject wants "
                 "\"begin-end:pressure[,...]\" over packet indices\n");
    return 2;
  }

  core::AnalyzerConfig cfg;
  cfg.p2p_timeout = util::Duration::seconds(p2p_timeout_s);
  cfg.strict = strict;
  if (anon_key) {
    // The capture's addresses were rewritten prefix-preservingly; map
    // our subnet knowledge through the same function.
    capture::PrefixPreservingAnonymizer anon(*anon_key);
    std::vector<net::Ipv4Subnet> mapped;
    for (const auto& subnet : cfg.server_db.subnets())
      mapped.emplace_back(anon.anonymize(subnet.base()), subnet.prefix_len());
    cfg.server_db = zoom::ServerDb(mapped);
  }

  // Either engine may be active; both own the streams the report reads,
  // so they live until exit.
  std::optional<core::Analyzer> serial;
  std::optional<pipeline::ParallelAnalyzer> parallel;
  if (threads > 1) {
    pipeline::ParallelAnalyzerConfig par_cfg;
    par_cfg.analyzer = cfg;
    par_cfg.shards = threads;
    parallel.emplace(std::move(par_cfg));
  } else {
    serial.emplace(cfg);
  }
  auto offer = [&](const net::RawPacket& pkt) {
    if (parallel)
      parallel->offer(pkt);
    else
      serial->offer(pkt);
  };

  // Copied by value: the simulator / corruption queue producing the
  // tallies dies with its branch scope, but the report prints later.
  std::optional<sim::CorruptionStats> corruption;
  // Declared outside the input branch: Pinned batches alias the mapped
  // file, so the mapping must outlive ParallelAnalyzer::finish() below.
  std::unique_ptr<net::TraceSource> source;
  // Engaged on the batched file path when the front end is enabled;
  // outlives the loop so --frontend-stats can read its counters.
  std::optional<capture::BatchFilter> filter;
  // Sketch-tier promotions in arrival order (--sketch-stats); side-band
  // context only, never folded into the standard report.
  std::vector<capture::BatchVerdicts::Promotion> promotions;
  // Overload-governor state for the batched path (--overload): this CLI
  // runs its own small governed loop (the daemon's lives inside
  // analysis::EpochEngine); the shed tallies and peak level join the
  // report after finish().
  std::optional<overload::OverloadGovernor> governor;
  overload::LoadShedder shedder;
  int overload_max_level = 0;
  if (input == "--demo") {
    sim::MeetingConfig mc;
    mc.seed = 21;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(90);
    sim::ParticipantConfig a, b, c;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    c.ip = net::Ipv4Addr(98, 0, 0, 3);
    c.on_campus = false;
    b.send_screen_share = true;
    mc.participants = {a, b, c};
    if (corrupt_seed) mc.corruption = sim::CorruptorConfig::hostile(*corrupt_seed);
    sim::MeetingSim sim(mc);
    std::signal(SIGINT, on_interrupt);
    while (auto pkt = sim.next_packet()) {
      if (g_interrupted) break;
      offer(*pkt);
    }
    std::signal(SIGINT, SIG_DFL);
    if (const auto* cs = sim.corruption_stats()) corruption = *cs;
  } else {
    source = std::make_unique<net::TraceSource>(input);
    if (!source->ok()) {
      std::fprintf(stderr, "error: cannot open %s (unreadable, empty, or not "
                   "pcap/pcapng)\n", input.c_str());
      return 1;
    }
    std::uint64_t records = 0;
    if (corrupt_seed) {
      // Capture cuts need a trace extent the file does not announce;
      // the other hostile impairments all apply record-by-record, so
      // the corruption queue keeps the owned per-packet pull.
      sim::CorruptionQueue corruptor(sim::CorruptorConfig::hostile(*corrupt_seed));
      auto pull = [&]() -> std::optional<net::RawPacket> {
        auto view = source->next();
        if (!view) return std::nullopt;
        return view->to_owned();
      };
      std::signal(SIGINT, on_interrupt);
      while (auto pkt = corruptor.next(pull)) {
        if (g_interrupted) break;
        ++records;
        offer(*pkt);
      }
      std::signal(SIGINT, SIG_DFL);
      corruption = corruptor.corruptor().stats();
    } else {
      // Zero-copy batched fast path: mapped traces are analyzed in
      // place; unmappable inputs stream through a reused buffer. The
      // capture front end screens each batch first (unless
      // --no-frontend): rejects never reach full header decode.
      constexpr std::size_t kBatch = 1024;
      const auto lifetime = source->mapped() ? pipeline::BatchLifetime::Pinned
                                            : pipeline::BatchLifetime::Transient;
      if (frontend) {
        capture::BatchFilterConfig fe_cfg;
        fe_cfg.server_db = cfg.server_db;
        fe_cfg.shards = threads;
        fe_cfg.flow_memory_budget = sketch ? flow_memory_budget : 0;
        fe_cfg.dataplane_offload = dataplane_offload;
        filter.emplace(std::move(fe_cfg));
      }
      std::vector<net::RawPacketView> batch;
      batch.reserve(kBatch);
      capture::BatchVerdicts verdicts;
      if (overload_enabled) governor.emplace(overload::GovernorConfig{});
      std::vector<net::RawPacketView> shed_run;
      capture::BatchVerdicts shed_verdicts;
      std::uint64_t offered = 0;
      std::uint64_t next_observe = overload_window;
      std::signal(SIGINT, on_interrupt);
      while (!g_interrupted && source->next_batch(batch, kBatch) > 0) {
        records += batch.size();
        const int level = governor ? governor->level() : 0;
        if (level > 0) overload_max_level = std::max(overload_max_level, level);
        if (level >= overload::kMaxLevel) {
          // L4: whole-batch head-drop, fully accounted, nothing decoded.
          shedder.apply(level, batch, nullptr, shed_run, shed_verdicts);
        } else if (filter) {
          filter->classify(batch, verdicts);
          promotions.insert(promotions.end(), verdicts.promotions.begin(),
                            verdicts.promotions.end());
          std::span<const net::RawPacketView> dispatch(batch);
          const capture::BatchVerdicts* v = &verdicts;
          if (level > 0 &&
              shedder.apply(level, batch, &verdicts, shed_run, shed_verdicts)) {
            dispatch = shed_run;
            v = &shed_verdicts;
          }
          if (parallel) {
            parallel->offer_batch(dispatch, lifetime, *v);
          } else {
            for (std::size_t i = 0; i < dispatch.size(); ++i) {
              if (v->verdicts[i] == capture::Verdict::Reject)
                serial->account_frontend_rejected(dispatch[i]);
              else
                serial->offer(dispatch[i],
                              v->verdicts[i] == capture::Verdict::Admit &&
                                  (v->flags[i] & capture::kFlagOffloadCovered) != 0);
            }
          }
        } else if (parallel) {
          parallel->offer_batch(batch, lifetime);
        } else {
          for (const auto& view : batch) serial->offer(view);
        }
        if (governor) {
          // Observe at window boundaries over the offered-packet index.
          // A file replay has no ring/kernel signals; pressure is the
          // injection schedule, or zero (governed-but-calm: L0 forever,
          // byte-identical to an ungoverned run by construction).
          offered += batch.size();
          while (offered >= next_observe) {
            governor->observe_pressure(
                overload_schedule.empty()
                    ? 0.0
                    : overload_schedule.pressure_at(next_observe));
            next_observe += overload_window;
          }
        }
      }
      std::signal(SIGINT, SIG_DFL);
    }
    if (records == 0) {
      std::fprintf(stderr, "error: %s: %s\n", input.c_str(),
                   source->ok() ? "capture contains no records"
                               : source->error().c_str());
      return 1;
    }
    if (!source->ok()) {
      std::fprintf(stderr, "warning: capture ended with error: %s\n",
                   source->error().c_str());
    }
  }

  if (g_interrupted)
    std::fprintf(stderr, "\ninterrupted: draining and reporting over the "
                 "packets analyzed so far\n");
  AnalysisOutput out;
  std::optional<core::StrictViolation> violation;
  if (parallel) {
    parallel->finish();
    out.counters = parallel->counters();
    out.health = parallel->health();
    violation = parallel->strict_violation();
    out.streams.assign(parallel->streams().begin(), parallel->streams().end());
    out.meetings = &parallel->meetings();
  } else {
    serial->finish();
    out.counters = serial->counters();
    out.health = serial->health();
    violation = serial->strict_violation();
    out.streams.reserve(serial->streams().streams().size());
    for (const auto& s : serial->streams().streams()) out.streams.push_back(s.get());
    out.meetings = &serial->meetings();
  }
  // The sketch tier lives in the capture front end, not the analyzer;
  // its eviction churn joins the health report here.
  if (filter) out.health.sketch_evicted = filter->sketch_evicted();
  // So does the data-plane offload's coverage/churn accounting.
  if (filter && filter->offload_enabled()) {
    const auto orep = filter->offload_report();
    out.health.offload_covered_packets = orep.covered_packets;
    out.health.offload_collisions = orep.collisions();
    out.health.offload_evictions = orep.flow_evictions;
  }
  // Same for the overload shedder: every shed packet is accounted by
  // the level that shed it (the conservation check's right-hand side).
  const auto& shed = shedder.stats();
  out.health.overload_shed_l1 = shed.l1_packets;
  out.health.overload_shed_l2 = shed.l2_packets;
  out.health.overload_shed_l3 = shed.l3_packets;
  out.health.overload_shed_l4 = shed.l4_packets;
  if (overload_max_level >= 3)
    std::printf("NOTE: report degraded — overload reached L%d "
                "(media-flow sampling%s); metrics cover the sampled "
                "subset\n",
                overload_max_level,
                overload_max_level >= 4 ? " + batch head-drop" : "");
  if (overload_max_level > 0)
    std::printf("overload: max level L%d, shed l1=%llu l2=%llu l3=%llu "
                "l4=%llu\n\n",
                overload_max_level,
                static_cast<unsigned long long>(shed.l1_packets),
                static_cast<unsigned long long>(shed.l2_packets),
                static_cast<unsigned long long>(shed.l3_packets),
                static_cast<unsigned long long>(shed.l4_packets));

  if (violation) {
    std::fprintf(stderr,
                 "strict: malformed record (%.*s) at packet %llu, t=%.6f s\n",
                 static_cast<int>(violation->category.size()),
                 violation->category.data(),
                 static_cast<unsigned long long>(violation->sequence),
                 violation->ts.sec());
    return 3;
  }

  if (corruption) {
    const auto& cs = *corruption;
    std::printf("== fault injection (seed %llu) =================================\n",
                static_cast<unsigned long long>(*corrupt_seed));
    std::printf("offered %llu -> emitted %llu | truncated %llu | header flips %llu\n"
                "payload flips %llu | dropped %llu | cut %llu | duplicated %llu\n"
                "ts regressions %llu | look-alikes %llu\n\n",
                static_cast<unsigned long long>(cs.offered),
                static_cast<unsigned long long>(cs.emitted),
                static_cast<unsigned long long>(cs.truncated),
                static_cast<unsigned long long>(cs.header_flips),
                static_cast<unsigned long long>(cs.payload_flips),
                static_cast<unsigned long long>(cs.dropped),
                static_cast<unsigned long long>(cs.cut_dropped),
                static_cast<unsigned long long>(cs.duplicated),
                static_cast<unsigned long long>(cs.ts_regressions),
                static_cast<unsigned long long>(cs.lookalikes_injected));
  }

  print_report(out);

  if (frontend_stats) {
    std::printf("\n== capture front end ===========================================\n");
    if (!filter) {
      std::printf("front end not active on this path (%s)\n",
                  frontend ? "per-packet input path" : "--no-frontend");
    } else {
      util::TextTable fe;
      fe.header({"Counter", "Packets", "Description"},
                {util::Align::Left, util::Align::Right, util::Align::Left});
      for (const auto& row : analysis::frontend_rows(filter->stats()))
        fe.row({std::string(row.category), util::with_commas(row.count),
                std::string(row.description)});
      std::printf("%s", fe.render().c_str());
      std::printf("%zu admitted flows, %zu armed candidate endpoints, %s probe\n",
                  filter->flow_count(), filter->candidate_endpoint_count(),
                  filter->simd_active() ? "SWAR/SSE2" : "scalar");
    }
  }

  if (sketch_stats) {
    std::printf("\n== sketch flow tier ============================================\n");
    if (!filter || !filter->sketch_enabled()) {
      std::printf("sketch tier not active (%s)\n",
                  !sketch ? "--no-sketch"
                  : filter ? "zero budget"
                           : "front end not on this path");
    } else {
      const auto report = filter->sketch_report(10);
      const auto& ts = report.stats;
      std::printf("budget %s | absorbed %s background packets (%s)\n",
                  util::human_bytes(flow_memory_budget).c_str(),
                  util::with_commas(ts.absorbed_packets).c_str(),
                  util::human_bytes(ts.absorbed_bytes).c_str());
      std::printf("promotions %s | demotions %s | evictions %s\n",
                  util::with_commas(ts.promotions).c_str(),
                  util::with_commas(ts.demotions).c_str(),
                  util::with_commas(ts.evictions).c_str());
      if (!promotions.empty()) {
        std::uint64_t carried_pkts = 0, carried_bytes = 0;
        for (const auto& p : promotions) {
          carried_pkts += p.carried.packets;
          carried_bytes += p.carried.bytes;
        }
        std::printf("promoted flows carried %s pre-admission packets (%s)\n",
                    util::with_commas(carried_pkts).c_str(),
                    util::human_bytes(carried_bytes).c_str());
      }
      if (!report.heavy_hitters.empty()) {
        util::TextTable hh;
        hh.header({"Background flow", "Bytes", "Packets", "Err bytes"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right});
        for (const auto& h : report.heavy_hitters)
          hh.row({h.flow.to_string(), util::human_bytes(h.bytes),
                  util::with_commas(h.packets), util::with_commas(h.error_bytes)});
        std::printf("%s", hh.render().c_str());
      }
    }
  }

  if (offload_stats) {
    std::printf("\n== data-plane metric offload ===================================\n");
    if (!filter || !filter->offload_enabled()) {
      std::printf("offload not active (%s)\n",
                  filter ? "pass --dataplane-offload to enable"
                         : "front end not on this path");
    } else {
      const auto orep = filter->offload_report();
      std::printf("covered %s media packets | probe arms %s | rtt samples %s\n",
                  util::with_commas(orep.covered_packets).c_str(),
                  util::with_commas(orep.probe_arms).c_str(),
                  util::with_commas(orep.rtt.samples).c_str());
      std::printf("jitter samples %s | collisions %s | scratch evictions %s\n",
                  util::with_commas(orep.jitter.samples).c_str(),
                  util::with_commas(orep.collisions()).c_str(),
                  util::with_commas(orep.flow_evictions).c_str());
      if (orep.jitter.samples > 0 || orep.rtt.samples > 0)
        print_offload_histograms(orep);
    }
  }

  if (!csv_prefix.empty()) export_csvs(out, csv_prefix);
  return g_interrupted ? 4 : 0;
}
