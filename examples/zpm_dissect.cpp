// zpm_dissect — the Wireshark-plugin analog (Appendix C): prints a
// packet-details tree for Zoom packets in a pcap file.
//
// Usage: zpm_dissect <capture.pcap> [max_packets]
//        zpm_dissect --demo [max_packets]   (generate a demo meeting)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/packet.h"
#include "net/pcap.h"
#include "proto/rtcp.h"
#include "sim/meeting.h"
#include "util/bytes.h"
#include "zoom/classify.h"
#include "zoom/server_db.h"

using namespace zpm;

namespace {

void print_rtp(const proto::RtpHeader& rtp) {
  std::printf("    Real-Time Transport Protocol\n");
  std::printf("        Version: %u, Padding: %d, Extension: %d, CSRC count: %u\n",
              rtp.version, rtp.padding, rtp.extension, rtp.csrc_count);
  std::printf("        Marker: %d, Payload type: %u\n", rtp.marker, rtp.payload_type);
  std::printf("        Sequence number: %u\n", rtp.sequence);
  std::printf("        Timestamp: %u\n", rtp.timestamp);
  std::printf("        SSRC: 0x%08x\n", rtp.ssrc);
}

void print_zoom(const zoom::ZoomPacket& zp) {
  if (zp.sfu) {
    std::printf("    Zoom SFU Encapsulation\n");
    std::printf("        Type: 0x%02x%s\n", zp.sfu->type,
                zp.sfu->carries_media_encap() ? " (media encapsulation follows)" : "");
    std::printf("        Sequence: %u\n", zp.sfu->sequence);
    std::printf("        Direction: 0x%02x (%s SFU)\n", zp.sfu->direction,
                zp.sfu->is_from_sfu() ? "from" : "to");
  }
  if (zp.media) {
    std::printf("    Zoom Media Encapsulation\n");
    std::printf("        Type: %u", zp.media->type);
    if (auto kind = zp.media->media_kind())
      std::printf(" (%s)", std::string(zoom::media_kind_name(*kind)).c_str());
    else if (zp.media->is_rtcp())
      std::printf(" (RTCP)");
    std::printf("\n        Sequence: %u\n", zp.media->sequence);
    std::printf("        Timestamp: %u\n", zp.media->timestamp);
    if (zp.media->is_video()) {
      std::printf("        Frame sequence: %u\n", zp.media->frame_sequence);
      std::printf("        Packets in frame: %u\n", zp.media->packets_in_frame);
    }
  }
  if (zp.rtp) {
    print_rtp(*zp.rtp);
    if (zp.fu_a) {
      std::printf("    H.264 FU-A (NRI %u, %s%s, NAL type %u)\n", zp.fu_a->indicator.nri,
                  zp.fu_a->fu.start ? "S" : "-", zp.fu_a->fu.end ? "E" : "-",
                  zp.fu_a->fu.nal_type);
    }
    std::printf("    Encrypted media payload: %zu bytes\n", zp.rtp_payload.size());
  }
  for (const auto& pkt : zp.rtcp) {
    if (const auto* sr = std::get_if<proto::SenderReport>(&pkt)) {
      std::printf("    RTCP Sender Report: SSRC 0x%08x, packets %u, octets %u\n",
                  sr->sender_ssrc, sr->packet_count, sr->octet_count);
      std::printf("        NTP timestamp: %.6f (unix)\n", sr->ntp.to_unix().sec());
      std::printf("        RTP timestamp: %u\n", sr->rtp_timestamp);
    } else if (std::holds_alternative<proto::Sdes>(pkt)) {
      std::printf("    RTCP Source Description (empty — as Zoom sends it)\n");
    }
  }
  if (zp.stun) {
    std::printf("    STUN %s (transaction %s)\n",
                zp.stun->is_request() ? "Binding Request" : "Binding Response",
                util::to_hex(zp.stun->transaction_id).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <capture.pcap>|--demo [max_packets]\n", argv[0]);
    return 2;
  }
  std::size_t max_packets = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20;

  std::vector<net::RawPacket> packets;
  if (std::string(argv[1]) == "--demo") {
    sim::MeetingConfig mc;
    mc.seed = 3;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(3);
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    mc.participants = {a, b};
    packets = sim::run_meeting(mc);
  } else {
    net::PcapReader reader{std::string(argv[1])};
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    while (auto pkt = reader.next()) packets.push_back(std::move(*pkt));
  }

  const auto& db = zoom::ServerDb::official();
  std::size_t shown = 0;
  for (const auto& raw : packets) {
    if (shown >= max_packets) break;
    auto view = net::decode_packet(raw);
    if (!view || view->l4 != net::L4Proto::Udp) continue;

    bool server = db.contains(view->ip.src) || db.contains(view->ip.dst);
    std::optional<zoom::ZoomPacket> zp;
    if (server && (view->udp.dst_port == proto::kStunPort ||
                   view->udp.src_port == proto::kStunPort)) {
      zp = zoom::dissect_stun(view->l4_payload);
    } else {
      zp = zoom::dissect(view->l4_payload,
                         server ? zoom::Transport::ServerBased : zoom::Transport::P2P);
    }
    if (!zp) continue;

    std::printf("Frame %zu: %zu bytes, %.6f s\n", ++shown, raw.data.size(),
                view->ts.sec());
    std::printf("    UDP %s\n", view->five_tuple().to_string().c_str());
    print_zoom(*zp);
    std::printf("\n");
  }
  if (shown == 0) std::printf("no Zoom packets recognized\n");
  return 0;
}
