// meeting_report — deep-dive troubleshooting for one meeting: was the
// low quality caused by the network or by user behaviour? Exercises the
// §5 metric suite plus §5.5's retransmission heuristics, on a meeting
// that suffers a mid-call congestion episode.
//
// Usage: meeting_report [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/analyzer.h"
#include "sim/meeting.h"
#include "util/strings.h"
#include "util/table.h"

using namespace zpm;

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;

  sim::MeetingConfig mc;
  mc.seed = seed;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(180);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 0, 10);
  b.ip = net::Ipv4Addr(10, 8, 0, 20);
  c.ip = net::Ipv4Addr(98, 0, 0, 30);
  c.on_campus = false;
  b.send_screen_share = true;
  // Participant A suffers congestion mid-call.
  sim::CongestionEpisode ep;
  ep.start = util::Timestamp::from_seconds(80);
  ep.end = util::Timestamp::from_seconds(110);
  ep.extra_delay_ms = 50;
  ep.extra_loss = 0.03;
  a.congestion.push_back(ep);
  mc.participants = {a, b, c};

  sim::MeetingSim sim(mc);
  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();

  for (const auto* m : analyzer.meetings().meetings()) {
    std::printf("meeting #%u  (%.0f s, %zu active participants%s)\n", m->id,
                (m->last_seen - m->first_seen).sec(), m->active_participants(),
                m->saw_p2p ? ", used P2P" : "");
    if (!m->rtt_to_sfu.empty()) {
      double sum = 0, worst = 0;
      for (const auto& s : m->rtt_to_sfu) {
        sum += s.rtt.ms();
        worst = std::max(worst, s.rtt.ms());
      }
      std::printf("RTT to SFU: mean %.1f ms, worst %.1f ms over %zu samples\n",
                  sum / static_cast<double>(m->rtt_to_sfu.size()), worst,
                  m->rtt_to_sfu.size());
    }
  }

  std::printf("\nper-stream diagnosis:\n");
  util::TextTable table;
  table.header({"ssrc", "kind", "dir", "rate", "fps", "jitter", "dups", "reord",
                "rtx?", "verdict"},
               {util::Align::Right});
  for (const auto& s : analyzer.streams().streams()) {
    double secs = std::max(1.0, (s->last_seen - s->first_seen).sec());
    double rate = static_cast<double>(s->metrics->media_payload_bytes()) * 8 / secs;
    double fps_sum = 0;
    std::size_t fps_n = 0;
    for (const auto& sec : s->metrics->seconds()) {
      fps_sum += sec.frame_rate_fps;
      ++fps_n;
    }
    auto loss = s->metrics->total_loss();
    // Worst per-second jitter over the stream's lifetime: a transient
    // congestion episode must not be averaged away.
    double jitter = 0;
    for (const auto& sec : s->metrics->seconds())
      if (sec.jitter_ms) jitter = std::max(jitter, *sec.jitter_ms);
    // The paper's core point (§6.2): decide network vs. user-side.
    const char* verdict = jitter > 15.0 ? "network degraded"
                          : (fps_n && fps_sum / static_cast<double>(fps_n) < 18 &&
                             s->kind == zoom::MediaKind::Video)
                              ? "user/display mode"
                              : "healthy";
    table.row({std::to_string(s->key.ssrc),
               std::string(zoom::media_kind_name(s->kind)),
               s->direction == core::StreamDirection::ToSfu ? "up" : "down",
               util::human_bitrate(rate),
               fps_n ? util::fixed(fps_sum / static_cast<double>(fps_n), 1) : "-",
               util::fixed(jitter, 1) + "ms", std::to_string(loss.duplicates),
               std::to_string(loss.reordered),
               std::to_string(loss.suspected_retransmissions), verdict});
  }
  std::printf("%s", table.render().c_str());

  // §4.2.3: talk-time quantification from the audio payload types.
  std::printf("\ntalk activity (speaking-mode seconds per audio uplink):\n");
  for (const auto& s : analyzer.streams().streams()) {
    if (s->kind != zoom::MediaKind::Audio) continue;
    if (s->direction != core::StreamDirection::ToSfu) continue;
    double total = std::max(1.0, (s->last_seen - s->first_seen).sec());
    std::printf("  %s talked %zu of %.0f s (%.0f%%)\n",
                s->client_ip.to_string().c_str(), s->metrics->talk_seconds(),
                total, 100.0 * static_cast<double>(s->metrics->talk_seconds()) / total);
  }
  std::printf("\n(participant 10.8.0.10 had a congestion episode 80-110 s:\n");
  std::printf("expect elevated jitter/duplicates on its streams, while low\n");
  std::printf("frame rates elsewhere are display-mode artifacts — §6.2.)\n");
  return 0;
}
