// zpm_pcap_filter — the offline counterpart of the P4 capture program
// (Fig. 13): read a large mixed capture, keep only Zoom traffic
// (stateless IP match + stateful STUN-armed P2P match), optionally
// anonymize prefix-preservingly, and write the filtered pcap the
// analysis tools consume. This is what the paper's pipeline does before
// any analysis ("takes all campus packets as input and only allows Zoom
// packets to pass through to tcpdump").
//
// Usage: zpm_pcap_filter <in.pcap[ng]> <out.pcap>
//            [--campus <cidr>]... [--no-anonymize] [--key <hex>]
//        zpm_pcap_filter --demo <out.pcap>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "capture/filter.h"
#include "net/pcapng.h"
#include "sim/campus.h"
#include "util/strings.h"

using namespace zpm;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <in.pcap[ng]>|--demo <out.pcap>\n"
                 "          [--campus <cidr>]... [--no-anonymize] [--key <hex>]\n",
                 argv[0]);
    return 2;
  }
  std::string input = argv[1];
  std::string output = argv[2];

  capture::CaptureConfig cfg;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--campus") && i + 1 < argc) {
      auto subnet = net::Ipv4Subnet::parse(argv[++i]);
      if (!subnet) {
        std::fprintf(stderr, "bad subnet: %s\n", argv[i]);
        return 2;
      }
      cfg.campus_subnets.push_back(*subnet);
    } else if (!std::strcmp(argv[i], "--no-anonymize")) {
      cfg.anonymize = false;
    } else if (!std::strcmp(argv[i], "--key") && i + 1 < argc) {
      cfg.anonymization_key = std::strtoull(argv[++i], nullptr, 16);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (cfg.campus_subnets.empty())
    cfg.campus_subnets.push_back(net::Ipv4Subnet(net::Ipv4Addr(10, 0, 0, 0), 8));

  capture::CaptureFilter filter(cfg);
  net::PcapWriter writer(output);
  if (!writer.ok()) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }

  auto feed = [&](const net::RawPacket& pkt) {
    if (auto kept = filter.process(pkt)) writer.write(*kept);
  };

  if (input == "--demo") {
    sim::CampusConfig campus_cfg;
    campus_cfg.seed = 31;
    campus_cfg.duration = util::Duration::seconds(900);
    campus_cfg.meetings_per_peak_hour = 8;
    campus_cfg.background_ratio = 2.0;
    sim::CampusSimulation campus(campus_cfg);
    while (auto pkt = campus.next_packet()) feed(*pkt);
  } else {
    auto source = net::open_capture(input);
    if (!source) {
      std::fprintf(stderr, "cannot open %s (not pcap/pcapng?)\n", input.c_str());
      return 1;
    }
    while (auto pkt = source->next()) feed(*pkt);
    if (!source->ok())
      std::fprintf(stderr, "warning: capture ended with error: %s\n",
                   source->error().c_str());
  }

  const auto& c = filter.counters();
  std::printf("processed %s packets -> kept %s Zoom packets (%.1f%%)\n",
              util::with_commas(c.processed).c_str(),
              util::with_commas(c.passed).c_str(),
              c.processed ? 100.0 * static_cast<double>(c.passed) /
                                static_cast<double>(c.processed)
                          : 0.0);
  std::printf("  stateless IP matches: %s | stateful P2P matches: %s | STUN: %s\n",
              util::with_commas(c.zoom_ip_matched).c_str(),
              util::with_commas(c.p2p_matched).c_str(),
              util::with_commas(c.stun_observed).c_str());
  std::printf("wrote %s (%s)\n", output.c_str(),
              cfg.anonymize ? "anonymized" : "NOT anonymized");
  return 0;
}
