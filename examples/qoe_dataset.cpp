// qoe_dataset — the §8 "Labeled Datasets for ML-based QoE Inference"
// extension: generate a labeled per-second dataset by joining the
// passive estimator's features (what an operator can measure) with the
// client-side ground truth (the label source the paper proposes
// collecting from viewers).
//
// Usage: qoe_dataset [output.csv] [num_meetings]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/analyzer.h"
#include "sim/meeting.h"
#include "util/csv.h"

using namespace zpm;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "/tmp/zpm_qoe_dataset.csv";
  int meetings = argc > 2 ? std::atoi(argv[2]) : 4;

  util::CsvWriter csv(out_path);
  if (!csv.ok()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  // Features from passive measurement; labels from the client.
  csv.row({"meeting", "t_s", "media_bitrate_bps", "frame_rate", "encoder_fps",
           "avg_frame_bytes", "jitter_ms", "latency_ms", "duplicates", "reordered",
           "label_client_fps", "label_client_latency_ms"});

  std::size_t rows = 0;
  for (int m = 0; m < meetings; ++m) {
    sim::MeetingConfig mc;
    mc.seed = 1000 + static_cast<std::uint64_t>(m);
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(120);
    mc.collect_qos = true;
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    // Half the meetings suffer a congestion episode -> varied labels.
    if (m % 2 == 0) {
      sim::CongestionEpisode ep;
      ep.start = util::Timestamp::from_seconds(40);
      ep.end = util::Timestamp::from_seconds(70);
      ep.extra_delay_ms = 20.0 + 15.0 * m;
      ep.extra_loss = 0.01 + 0.01 * m;
      b.congestion.push_back(ep);
    }
    mc.participants = {a, b};

    sim::MeetingSim sim(mc);
    core::AnalyzerConfig cfg;
    core::Analyzer analyzer(cfg);
    while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
    analyzer.finish();

    // Labels: the receiving client's per-second reports.
    std::map<int, const sim::QosSample*> labels;
    for (const auto& q : sim.qos_samples())
      if (q.receiver == 1) labels[static_cast<int>(q.t.sec())] = &q;

    // Features: the downlink video stream B receives.
    for (const auto& s : analyzer.streams().streams()) {
      if (s->kind != zoom::MediaKind::Video) continue;
      if (s->direction != core::StreamDirection::FromSfu) continue;
      if (!(s->client_ip == b.ip)) continue;
      for (const auto& sec : s->metrics->seconds()) {
        auto it = labels.find(static_cast<int>(sec.bin_start.sec()));
        if (it == labels.end()) continue;
        csv.row_numeric(
            {static_cast<double>(m), sec.bin_start.sec(), sec.media_bitrate_bps(),
             sec.frame_rate_fps, sec.encoder_fps.value_or(-1),
             sec.avg_frame_bytes.value_or(-1), sec.jitter_ms.value_or(-1),
             sec.latency_ms.value_or(-1), static_cast<double>(sec.duplicates),
             static_cast<double>(sec.reordered), it->second->frame_rate,
             it->second->latency_ms},
            3);
        ++rows;
      }
    }
  }
  std::printf("wrote %zu labeled stream-seconds over %d meetings to %s\n", rows,
              meetings, out_path.c_str());
  std::printf("features = passive in-network estimates; labels = client truth.\n");
  return 0;
}
