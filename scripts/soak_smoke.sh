#!/usr/bin/env bash
# Daemon soak smoke: builds nothing itself — expects an existing build
# directory (default ./build, override with $1) containing
# examples/campus_monitor.
#
# Runs the continuous-operation daemon for ~30 s on an endlessly looped
# replay of a simulated campus trace (paced so epochs rotate on packet
# count several times), sends one SIGHUP mid-run with a config change,
# then SIGTERM, and asserts:
#   * the daemon exits 0 on SIGTERM (graceful drain),
#   * at least 3 epochs rotated (report files on disk, all parseable
#     framing: non-empty, "ZPME" magic),
#   * the SIGHUP reload was acknowledged,
#   * the final health line reports zero dropped records,
#   * a snapshot exists and no write/source errors were logged.
set -euo pipefail

BUILD_DIR="${1:-build}"
MONITOR="$BUILD_DIR/examples/campus_monitor"
if [[ ! -x "$MONITOR" ]]; then
  echo "error: $MONITOR not built" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "=== generating soak trace ==="
"$MONITOR" --make-trace "$WORK/soak.pcap" \
  --minutes 5 --meetings 50 --background 0.05 --seed 42

mkdir -p "$WORK/reports"
cat > "$WORK/daemon.conf" <<'EOF'
# applied on SIGHUP: shrink epochs so the reload is visible in rotation
epoch_packets = 60000
EOF

echo "=== starting daemon (30s soak) ==="
"$MONITOR" --daemon --replay "$WORK/soak.pcap" --loops 0 \
  --pace-pps 20000 --epoch-packets 100000 \
  --snapshot "$WORK/snapshot.bin" --report-dir "$WORK/reports" \
  --config "$WORK/daemon.conf" --watchdog-seconds 5 \
  2> "$WORK/daemon.log" &
PID=$!

sleep 12
echo "--- SIGHUP (config reload) ---"
kill -HUP "$PID"
sleep 18
echo "--- SIGTERM (graceful drain) ---"
kill -TERM "$PID"

EXIT=0
wait "$PID" || EXIT=$?
echo "=== daemon log ==="
cat "$WORK/daemon.log"

fail() { echo "SOAK FAIL: $1" >&2; exit 1; }

[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT, expected 0"

EPOCHS=$(ls "$WORK/reports"/epoch-*.bin 2>/dev/null | wc -l)
[[ "$EPOCHS" -ge 3 ]] || fail "only $EPOCHS epochs rotated, expected >= 3"
for f in "$WORK/reports"/epoch-*.bin; do
  [[ -s "$f" ]] || fail "empty epoch report $f"
  [[ "$(head -c 4 "$f")" == "ZPME" ]] || fail "bad magic in $f"
done

grep -q "config reloaded from" "$WORK/daemon.log" \
  || fail "SIGHUP reload not acknowledged"
grep -q "health: 0 dropped records (all clear)" "$WORK/daemon.log" \
  || fail "unexpected health drops"
grep -q "graceful shutdown" "$WORK/daemon.log" \
  || fail "no graceful-shutdown line"
[[ -s "$WORK/snapshot.bin" ]] || fail "no snapshot written"
[[ "$(head -c 4 "$WORK/snapshot.bin")" == "ZPMS" ]] \
  || fail "bad snapshot magic"
! grep -qE "write failed|source error|cannot read config" "$WORK/daemon.log" \
  || fail "daemon logged I/O or source errors"

echo "SOAK OK: $EPOCHS epochs, clean reload, clean drain"
