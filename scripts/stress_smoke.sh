#!/usr/bin/env bash
# Overload stress smoke: builds nothing itself — expects an existing
# build directory (default ./build, override with $1) containing
# examples/campus_monitor and bench/bench_overload.
#
# Drives the continuous-operation daemon well past its paced capacity:
# a bursty campus trace (square-wave background, --burst) looped
# endlessly, a deterministic pressure schedule that rides the ladder up
# and back down twice, bounded dispatch with a deliberately slowed
# shard, and a mid-run SIGHUP watermark retune. Asserts:
#   * at least one overload escalation AND one recovery were logged,
#   * the final conservation ledger balances: every offered packet is
#     admitted or shed ("unaccounted=0 ... OK"),
#   * the ladder reached at least L1 in an epoch record ("max level L"),
#   * the SIGHUP retune was acknowledged,
#   * zero dropped records outside the accounted overload sheds,
#   * SIGTERM drains cleanly (exit 0, graceful-shutdown line),
#   * peak RSS stays bounded (ZPM_STRESS_RSS_MAX_KB, default 3 GB —
#     the looped replay source holds the ~1 GB trace in memory; the
#     bound catches unbounded growth across loops/epochs, which would
#     blow well past it),
#   * bench_overload --check passes (calm byte-identity, forced-
#     overload determinism, conservation) and leaves its
#     BENCH_overload.json artifact in the CWD.
set -euo pipefail

BUILD_DIR="${1:-build}"
: "${ZPM_STRESS_RSS_MAX_KB:=3000000}"

MONITOR="$BUILD_DIR/examples/campus_monitor"
BENCH="$BUILD_DIR/bench/bench_overload"
for bin in "$MONITOR" "$BENCH"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 2
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "=== generating bursty stress trace ==="
# 3 simulated minutes so the campus meeting arrivals ramp up (shorter
# windows can carry zero Zoom media); 150 meetings/peak-hour puts real
# media flows under the ladder, and the --burst overlay square-waves
# the background between 20k and 2k pps.
"$MONITOR" --make-trace "$WORK/stress.pcap" \
  --minutes 3 --meetings 150 --background 0.05 --seed 7 \
  --burst 2 --burst-flows 20000

mkdir -p "$WORK/reports"
cat > "$WORK/daemon.conf" <<'EOF'
# applied on SIGHUP: a live watermark retune mid-overload
overload_high_watermark = 0.80
overload_low_watermark = 0.30
EOF

# Two saturated index ranges with calm gaps: the ladder must escalate,
# recover fully, and do it again — every decision a pure function of
# the packet sequence.
INJECT="100000-400000:1.0,700000-1000000:1.0"

echo "=== starting daemon (paced overload replay) ==="
"$MONITOR" --daemon --replay "$WORK/stress.pcap" --loops 0 \
  --pace-pps 60000 --epoch-packets 150000 --threads 2 \
  --overload --overload-inject "$INJECT" \
  --bounded-push --slow-shard 0 --slow-us 200 \
  --snapshot "$WORK/snapshot.bin" --report-dir "$WORK/reports" \
  --config "$WORK/daemon.conf" --watchdog-seconds 5 \
  2> "$WORK/daemon.log" &
PID=$!

sleep 10
echo "--- SIGHUP (watermark retune) ---"
kill -HUP "$PID"
sleep 14

RSS_KB=$(awk '/^VmHWM:/ {print $2}' "/proc/$PID/status" 2>/dev/null || echo 0)

echo "--- SIGTERM (graceful drain) ---"
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
echo "=== daemon log ==="
cat "$WORK/daemon.log"

fail() { echo "STRESS FAIL: $1" >&2; exit 1; }

[[ "$EXIT" -eq 0 ]] || fail "daemon exited $EXIT, expected 0"

ESCALATIONS=$(grep -c "overload escalation" "$WORK/daemon.log" || true)
RECOVERIES=$(grep -c "overload recovery" "$WORK/daemon.log" || true)
[[ "$ESCALATIONS" -ge 1 ]] || fail "no overload escalation logged"
[[ "$RECOVERIES" -ge 1 ]] || fail "no overload recovery logged"

grep -q "epoch .* overload: max level L" "$WORK/daemon.log" \
  || fail "no epoch record carried an overload level"
grep -qE "conservation: offered=[0-9]+ admitted=[0-9]+ shed=[0-9]+ .*unaccounted=0 OK" \
  "$WORK/daemon.log" || fail "conservation ledger did not balance"
grep -q "config reloaded from" "$WORK/daemon.log" \
  || fail "SIGHUP retune not acknowledged"
grep -q "health: 0 dropped records (all clear)" "$WORK/daemon.log" \
  || fail "unexpected health drops (outside accounted sheds)"
grep -q "graceful shutdown" "$WORK/daemon.log" \
  || fail "no graceful-shutdown line"

[[ "$RSS_KB" -gt 0 ]] || fail "could not read daemon VmHWM"
[[ "$RSS_KB" -le "$ZPM_STRESS_RSS_MAX_KB" ]] \
  || fail "peak RSS ${RSS_KB} kB exceeds bound ${ZPM_STRESS_RSS_MAX_KB} kB"

echo "=== bench_overload --check ==="
"$BENCH" --check BENCH_overload.json

echo "STRESS OK: $ESCALATIONS escalations, $RECOVERIES recoveries," \
  "peak RSS ${RSS_KB} kB, ledger balanced, clean drain"
