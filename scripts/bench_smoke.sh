#!/usr/bin/env bash
# Ingest/pipeline benchmark smoke run: builds nothing itself — expects
# an existing build directory (default ./build, override with $1).
#
# Runs bench_ingest and bench_filter in --check mode (each fails when
# its fast path is slower than the configured multiple of its per-packet
# baseline — ZPM_INGEST_SPEEDUP_MIN / ZPM_FILTER_SPEEDUP_MIN, default
# 3.0 — or when a steady-state path allocates), runs bench_sketch
# --check (sketch-tier footprint within 1.25x of the byte budget on a
# ZPM_SKETCH_FLOWS-flow Zipf background trace, heavy-hitter recall >=
# ZPM_SKETCH_RECALL_MIN at 4 MiB, Zoom report bit-identical tier
# on/off), runs bench_offload --check (host metric-path speedup >=
# ZPM_OFFLOAD_SPEEDUP_MIN with the data-plane offload on, default 1.3,
# plus report byte-identity and histogram/CDF agreement), runs
# bench_query --check (1-epoch-window journal query >=
# ZPM_QUERY_SPEEDUP_MIN faster than full recompute, default 10, plus
# journal-vs-recompute bit-identity serial/4-shard/multi-site and a
# zero-allocation aggregation loop), runs
# bench_table5_resources --check (extended switch program within the
# stage/SRAM budget), and captures the google-benchmark pipeline
# numbers. Artifacts: BENCH_ingest.json, BENCH_filter.json,
# BENCH_sketch.json, BENCH_offload.json, BENCH_query.json and
# BENCH_pipeline.json in the CWD.
set -euo pipefail

BUILD_DIR="${1:-build}"
: "${ZPM_INGEST_SPEEDUP_MIN:=3.0}"
: "${ZPM_FILTER_SPEEDUP_MIN:=3.0}"
export ZPM_INGEST_SPEEDUP_MIN ZPM_FILTER_SPEEDUP_MIN

for bin in bench_ingest bench_filter bench_sketch bench_offload bench_query bench_table5_resources; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "error: $BUILD_DIR/bench/$bin not built" >&2
    exit 2
  fi
done

echo "=== bench_ingest (speedup threshold ${ZPM_INGEST_SPEEDUP_MIN}x) ==="
"$BUILD_DIR/bench/bench_ingest" --check BENCH_ingest.json

echo "=== bench_filter (speedup threshold ${ZPM_FILTER_SPEEDUP_MIN}x) ==="
"$BUILD_DIR/bench/bench_filter" --check BENCH_filter.json

echo "=== bench_sketch (${ZPM_SKETCH_FLOWS:-1000000} background flows) ==="
"$BUILD_DIR/bench/bench_sketch" --check BENCH_sketch.json

echo "=== bench_offload (speedup threshold ${ZPM_OFFLOAD_SPEEDUP_MIN:-1.3}x) ==="
"$BUILD_DIR/bench/bench_offload" --check BENCH_offload.json

echo "=== bench_query (speedup threshold ${ZPM_QUERY_SPEEDUP_MIN:-10}x) ==="
"$BUILD_DIR/bench/bench_query" --check BENCH_query.json

echo "=== bench_table5_resources (extended program budget) ==="
"$BUILD_DIR/bench/bench_table5_resources" --check

echo "=== bench_parallel_pipeline ==="
# google-benchmark >= 1.8 wants a "0.05s" suffix on min_time; older
# versions only accept a bare double. Try new syntax first.
run_pipeline() {
  "$BUILD_DIR/bench/bench_parallel_pipeline" \
    --benchmark_out=BENCH_pipeline.json --benchmark_out_format=json \
    "--benchmark_min_time=$1"
}
run_pipeline 0.05s || run_pipeline 0.05

echo "artifacts: BENCH_ingest.json BENCH_filter.json BENCH_sketch.json BENCH_offload.json BENCH_query.json BENCH_pipeline.json"
