#!/usr/bin/env bash
# Runs every bench binary in order (tables, figures, ablations, micro),
# exactly what EXPERIMENTS.md and bench_output.txt are generated from.
set -u
BUILD=${1:-build}
for b in \
  bench_table1_headers bench_table2_types bench_table3_payload_types \
  bench_table4_metrics bench_table5_resources bench_table6_capture_summary \
  bench_table7_servers bench_fig2_stun_p2p bench_fig5_entropy \
  bench_fig8_grouping bench_fig10_validation bench_fig11_latency_methods \
  bench_fig12_packetization bench_fig14_bitrate_timeseries \
  bench_fig15_metric_cdfs bench_fig16_correlation bench_fig17_packet_rate \
  bench_ablation_serial bench_ablation_grouping bench_ablation_p2p_timeout \
  bench_ablation_jitter bench_ablation_sfu_rewrite bench_micro_parsers bench_micro_pipeline; do
  echo "================================================================"
  echo ">>> $b"
  echo "================================================================"
  "$BUILD/bench/$b" || echo "!!! $b exited with $?"
  echo
done
